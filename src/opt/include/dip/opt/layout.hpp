// OPT locations-block layout (§3 "OPT").
//
// The paper pins the OPT FN triples as:
//   F_parm : (loc 128, len 128, key 6)   — the session-ID field
//   F_MAC  : (loc 0,   len 416, key 7)   — everything up to and incl. PVF
//   F_mark : (loc 288, len 128, key 8)   — the PVF field
//   F_ver  : (loc 0,   len 544, key 9)   — the whole block (host-tagged)
//
// which fixes the 544-bit (68-byte) block layout:
//
//   bits [  0,128)  DataHash   — CMAC over the payload, keyed by session ID
//   bits [128,256)  SessionID  — the OPT flow tag (footnote 3)
//   bits [256,288)  Timestamp  — coarse freshness (seconds)
//   bits [288,416)  PVF        — path verification field (chained MAC)
//   bits [416,544)  OPV        — accumulated per-hop verification (XOR of
//                                every hop's MAC)
#pragma once

#include <cstdint>

#include "dip/bytes/bitfield.hpp"

namespace dip::opt {

inline constexpr std::size_t kBlockBytes = 68;  // 544 bits

inline constexpr bytes::BitRange kDataHash{0, 128};
inline constexpr bytes::BitRange kSessionId{128, 128};
inline constexpr bytes::BitRange kTimestamp{256, 32};
inline constexpr bytes::BitRange kPvf{288, 128};
inline constexpr bytes::BitRange kOpv{416, 128};

/// F_MAC coverage: DataHash | SessionID | Timestamp | PVF (52 bytes).
inline constexpr bytes::BitRange kMacCoverage{0, 416};
/// F_ver coverage: the whole block.
inline constexpr bytes::BitRange kVerCoverage{0, 544};

/// Byte offsets (everything is byte-aligned by construction).
inline constexpr std::size_t kDataHashOffset = 0;
inline constexpr std::size_t kSessionIdOffset = 16;
inline constexpr std::size_t kTimestampOffset = 32;
inline constexpr std::size_t kPvfOffset = 36;
inline constexpr std::size_t kOpvOffset = 52;

}  // namespace dip::opt
