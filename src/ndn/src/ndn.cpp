#include "dip/ndn/ndn.hpp"

namespace dip::ndn {

using core::DipHeader;
using core::DropReason;
using core::NextHeader;
using core::OpContext;
using core::OpKey;

bytes::Status FibOp::execute(OpContext& ctx) {
  if (ctx.field.bit_length != 32) return bytes::Unexpected{bytes::Error::kMalformed};
  const auto code = ctx.target_uint();
  if (!code) return bytes::Unexpected{code.error()};
  const auto name_code = static_cast<std::uint32_t>(*code);

  // Footnote 2: "first match the local content store and then match the
  // FIB". A cache hit answers the interest outright — no PIT state is
  // created (there is nothing in flight to wait for).
  if (ctx.env->content_store && ctx.env->content_store->contains(name_code)) {
    ctx.result->respond_from_cache = true;
    ctx.result->egress.assign(1, ctx.ingress);
    return {};
  }

  // Record the receiving port in the PIT (§3). A duplicate means this exact
  // interest already came in on this face: likely a loop — drop.
  const auto recorded = ctx.env->pit.record_interest(name_code, ctx.ingress, ctx.now);
  if (!recorded) {
    ctx.result->drop(DropReason::kBudgetExhausted);  // PIT full (§2.4 limit)
    return {};
  }
  if (*recorded == pit::InterestResult::kDuplicate) {
    ctx.result->drop(DropReason::kDuplicate);
    return {};
  }
  if (*recorded == pit::InterestResult::kAggregated) {
    // Another request for the same content is already in flight upstream;
    // suppress this one (its face is now recorded for the data fan-out).
    ctx.result->drop(DropReason::kAggregated);
    return {};
  }

  const fib::Ipv4Lpm* fib = ctx.env->fib32_view();
  if (fib == nullptr) {
    ctx.result->drop(DropReason::kNoRoute);
    return {};
  }
  const auto nh = fib->lookup(fib::ipv4_from_u32(name_code));
  if (!nh) {
    ctx.result->drop(DropReason::kNoRoute);
    return {};
  }
  ctx.result->egress.assign(1, *nh);
  return {};
}

bytes::Status PitOp::execute(OpContext& ctx) {
  if (ctx.field.bit_length != 32) return bytes::Unexpected{bytes::Error::kMalformed};
  const auto code = ctx.target_uint();
  if (!code) return bytes::Unexpected{code.error()};
  const auto name_code = static_cast<std::uint32_t>(*code);

  auto faces = ctx.env->pit.match_data(name_code, ctx.now);
  if (faces.empty()) {
    // "or discards the packet (match miss)" — unsolicited data.
    ctx.result->drop(DropReason::kPitMiss);
    return {};
  }

  if (ctx.env->content_store) {
    ctx.env->content_store->insert(name_code, ctx.payload);
  }
  ctx.result->egress.assign(faces.begin(), faces.end());
  return {};
}

namespace {

bytes::Result<DipHeader> make_name_header(std::uint32_t name_code, OpKey op,
                                          NextHeader next, std::uint8_t hop_limit) {
  const auto code_addr = fib::ipv4_from_u32(name_code);
  core::HeaderBuilder b;
  b.next_header(next).hop_limit(hop_limit);
  b.add_router_fn(op, code_addr.bytes);  // (loc 0, len 32, key 4/5)
  return b.build();
}

}  // namespace

bytes::Result<DipHeader> make_interest_header(const fib::Name& name, NextHeader next,
                                              std::uint8_t hop_limit) {
  return make_name_header(encode_name32(name), OpKey::kFib, next, hop_limit);
}

bytes::Result<DipHeader> make_data_header(const fib::Name& name, NextHeader next,
                                          std::uint8_t hop_limit) {
  return make_name_header(encode_name32(name), OpKey::kPit, next, hop_limit);
}

bytes::Result<DipHeader> make_interest_header32(std::uint32_t name_code, NextHeader next,
                                                std::uint8_t hop_limit) {
  return make_name_header(name_code, OpKey::kFib, next, hop_limit);
}

bytes::Result<DipHeader> make_data_header32(std::uint32_t name_code, NextHeader next,
                                            std::uint8_t hop_limit) {
  return make_name_header(name_code, OpKey::kPit, next, hop_limit);
}

std::optional<std::uint32_t> extract_name_code(const DipHeader& header) noexcept {
  for (const core::FnTriple& fn : header.fns) {
    if (fn.key() == OpKey::kFib || fn.key() == OpKey::kPit) {
      const auto v = bytes::extract_uint(header.locations, fn.range());
      if (v) return static_cast<std::uint32_t>(*v);
    }
  }
  return std::nullopt;
}

}  // namespace dip::ndn
