#include "dip/ndn/gateway.hpp"

namespace dip::ndn {

bytes::Result<std::vector<std::uint8_t>> Gateway::interest_to_dip(
    const tlv::Interest& interest) {
  const std::uint32_t code = encode_name32(interest.name);

  const auto it = names_.find(code);
  if (it != names_.end() && !(it->second == interest.name)) {
    // Two live names squeezed into one 32-bit code: refuse rather than
    // mis-deliver (the documented prototype compromise made explicit).
    ++collisions_;
    return bytes::Err(bytes::Error::kState);
  }
  names_.emplace(code, interest.name);

  const auto header = make_interest_header32(code);
  if (!header) return bytes::Err(bytes::Error::kMalformed);
  return header->serialize();
}

bytes::Result<tlv::Data> Gateway::dip_to_data(
    std::span<const std::uint8_t> dip_packet) {
  const auto header = core::DipHeader::parse(dip_packet);
  if (!header) return bytes::Err(header.error());
  const auto code = extract_name_code(*header);
  if (!code || header->fns.empty() ||
      header->fns[0].key() != core::OpKey::kPit) {
    return bytes::Err(bytes::Error::kMalformed);
  }

  const auto it = names_.find(static_cast<std::uint32_t>(*code));
  if (it == names_.end()) return bytes::Err(bytes::Error::kState);

  tlv::Data data;
  data.name = it->second;
  const auto payload = dip_packet.subspan(header->wire_size());
  data.content.assign(payload.begin(), payload.end());
  data.digest = data.compute_digest();
  names_.erase(it);  // consumed, like the PIT entry it shadowed
  return data;
}

std::vector<std::uint8_t> Gateway::data_to_dip(const tlv::Data& data) const {
  auto wire = make_data_header(data.name)->serialize();
  wire.insert(wire.end(), data.content.begin(), data.content.end());
  return wire;
}

bytes::Result<tlv::Interest> Gateway::dip_to_interest(
    std::span<const std::uint8_t> dip_packet) const {
  const auto header = core::DipHeader::parse(dip_packet);
  if (!header) return bytes::Err(header.error());
  const auto code = extract_name_code(*header);
  if (!code || header->fns.empty() ||
      header->fns[0].key() != core::OpKey::kFib) {
    return bytes::Err(bytes::Error::kMalformed);
  }
  const auto it = names_.find(static_cast<std::uint32_t>(*code));
  if (it == names_.end()) return bytes::Err(bytes::Error::kState);

  tlv::Interest interest;
  interest.name = it->second;
  interest.nonce = static_cast<std::uint32_t>(*code);  // deterministic stand-in
  return interest;
}

}  // namespace dip::ndn
