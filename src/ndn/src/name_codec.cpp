#include "dip/ndn/name_codec.hpp"

#include <algorithm>

#include "dip/crypto/siphash.hpp"

namespace dip::ndn {

namespace {

std::uint8_t component_byte(const std::string& component) {
  const std::span<const std::uint8_t> view{
      reinterpret_cast<const std::uint8_t*>(component.data()), component.size()};
  return static_cast<std::uint8_t>(
      crypto::siphash24(crypto::process_sip_key(), view) & 0xff);
}

}  // namespace

std::uint32_t encode_name32(const fib::Name& name) {
  std::uint32_t code = 0;
  const std::size_t n = std::min(name.component_count(), kMaxCodedComponents);
  for (std::size_t i = 0; i < kMaxCodedComponents; ++i) {
    const std::uint8_t byte = i < n ? component_byte(name.component(i)) : 0;
    code = (code << 8) | byte;
  }
  return code;
}

fib::Ipv4Prefix encode_prefix32(const fib::Name& name, std::size_t components) {
  const std::size_t n =
      std::min({components, name.component_count(), kMaxCodedComponents});
  fib::Ipv4Prefix prefix;
  prefix.addr = fib::ipv4_from_u32(encode_name32(name.prefix(n)));
  prefix.length = static_cast<std::uint8_t>(n * 8);
  prefix.normalize();
  return prefix;
}

void install_name_route(fib::Ipv4Lpm& fib, const fib::Name& prefix, fib::NextHop nh) {
  fib.insert(encode_prefix32(prefix, prefix.component_count()), nh);
}

}  // namespace dip::ndn
