#include "dip/ndn/tlv.hpp"

#include "dip/crypto/siphash.hpp"

namespace dip::ndn::tlv {

void write_varnum(std::vector<std::uint8_t>& out, std::uint64_t value) {
  if (value < 253) {
    out.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xffff) {
    out.push_back(253);
    out.push_back(static_cast<std::uint8_t>(value >> 8));
    out.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xffffffff) {
    out.push_back(254);
    for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  } else {
    out.push_back(255);
    for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

bytes::Result<std::uint64_t> read_varnum(std::span<const std::uint8_t> data,
                                         std::size_t& pos) {
  if (pos >= data.size()) return bytes::Err(bytes::Error::kTruncated);
  const std::uint8_t first = data[pos++];
  std::size_t extra = 0;
  if (first < 253) return static_cast<std::uint64_t>(first);
  if (first == 253) extra = 2;
  else if (first == 254) extra = 4;
  else extra = 8;

  if (pos + extra > data.size()) return bytes::Err(bytes::Error::kTruncated);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < extra; ++i) value = (value << 8) | data[pos++];
  return value;
}

void write_tlv(std::vector<std::uint8_t>& out, std::uint64_t type,
               std::span<const std::uint8_t> value) {
  write_varnum(out, type);
  write_varnum(out, value.size());
  out.insert(out.end(), value.begin(), value.end());
}

bytes::Result<Element> read_tlv(std::span<const std::uint8_t> data, std::size_t& pos) {
  Element element;
  const auto type = read_varnum(data, pos);
  if (!type) return bytes::Err(type.error());
  const auto length = read_varnum(data, pos);
  if (!length) return bytes::Err(length.error());
  if (pos + *length > data.size()) return bytes::Err(bytes::Error::kTruncated);
  element.type = *type;
  element.value = data.subspan(pos, *length);
  pos += *length;
  return element;
}

void write_name(std::vector<std::uint8_t>& out, const fib::Name& name) {
  std::vector<std::uint8_t> body;
  for (std::size_t i = 0; i < name.component_count(); ++i) {
    const std::string& c = name.component(i);
    write_tlv(body, kGenericComponent,
              {reinterpret_cast<const std::uint8_t*>(c.data()), c.size()});
  }
  write_tlv(out, kName, body);
}

bytes::Result<fib::Name> parse_name(std::span<const std::uint8_t> value) {
  fib::Name name;
  std::size_t pos = 0;
  while (pos < value.size()) {
    const auto component = read_tlv(value, pos);
    if (!component) return bytes::Err(component.error());
    if (component->type != kGenericComponent) {
      return bytes::Err(bytes::Error::kUnsupported);
    }
    if (component->value.empty()) return bytes::Err(bytes::Error::kMalformed);
    name.append(std::string(component->value.begin(), component->value.end()));
  }
  return name;
}

namespace {

void write_nonneg(std::vector<std::uint8_t>& out, std::uint64_t type,
                  std::uint64_t value) {
  std::vector<std::uint8_t> body;
  // Shortest big-endian encoding of 1/2/4/8 bytes (NDN NonNegativeInteger).
  int bytes_needed = value <= 0xff ? 1 : value <= 0xffff ? 2 : value <= 0xffffffff ? 4 : 8;
  for (int i = bytes_needed - 1; i >= 0; --i) {
    body.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  write_tlv(out, type, body);
}

std::uint64_t read_nonneg(std::span<const std::uint8_t> value) {
  std::uint64_t v = 0;
  for (const std::uint8_t b : value) v = (v << 8) | b;
  return v;
}

}  // namespace

std::vector<std::uint8_t> Interest::encode() const {
  std::vector<std::uint8_t> body;
  write_name(body, name);
  if (can_be_prefix) write_tlv(body, kCanBePrefix, {});
  if (must_be_fresh) write_tlv(body, kMustBeFresh, {});
  const std::array<std::uint8_t, 4> nonce_bytes = {
      static_cast<std::uint8_t>(nonce >> 24), static_cast<std::uint8_t>(nonce >> 16),
      static_cast<std::uint8_t>(nonce >> 8), static_cast<std::uint8_t>(nonce)};
  write_tlv(body, kNonce, nonce_bytes);
  if (lifetime_ms) write_nonneg(body, kInterestLifetime, *lifetime_ms);

  std::vector<std::uint8_t> out;
  write_tlv(out, kInterest, body);
  return out;
}

bytes::Result<Interest> Interest::decode(std::span<const std::uint8_t> wire) {
  std::size_t pos = 0;
  const auto outer = read_tlv(wire, pos);
  if (!outer) return bytes::Err(outer.error());
  if (outer->type != kInterest) return bytes::Err(bytes::Error::kMalformed);

  Interest interest;
  bool saw_name = false;
  std::size_t inner = 0;
  while (inner < outer->value.size()) {
    const auto element = read_tlv(outer->value, inner);
    if (!element) return bytes::Err(element.error());
    switch (element->type) {
      case kName: {
        auto name = parse_name(element->value);
        if (!name) return bytes::Err(name.error());
        interest.name = std::move(*name);
        saw_name = true;
        break;
      }
      case kCanBePrefix: interest.can_be_prefix = true; break;
      case kMustBeFresh: interest.must_be_fresh = true; break;
      case kNonce:
        if (element->value.size() != 4) return bytes::Err(bytes::Error::kMalformed);
        interest.nonce = static_cast<std::uint32_t>(read_nonneg(element->value));
        break;
      case kInterestLifetime:
        interest.lifetime_ms = read_nonneg(element->value);
        break;
      default:
        break;  // unknown non-critical elements are skipped
    }
  }
  if (!saw_name || interest.name.empty()) return bytes::Err(bytes::Error::kMalformed);
  return interest;
}

std::uint64_t Data::compute_digest() const {
  std::vector<std::uint8_t> input;
  write_name(input, name);
  input.insert(input.end(), content.begin(), content.end());
  return crypto::siphash24(crypto::process_sip_key(), input);
}

std::vector<std::uint8_t> Data::encode() const {
  std::vector<std::uint8_t> body;
  write_name(body, name);
  if (freshness_ms) {
    std::vector<std::uint8_t> meta;
    write_nonneg(meta, kFreshnessPeriod, *freshness_ms);
    write_tlv(body, kMetaInfo, meta);
  }
  write_tlv(body, kContent, content);

  std::vector<std::uint8_t> siginfo;
  write_nonneg(siginfo, kSignatureType, 0);  // 0 = DigestSha256 (stand-in)
  write_tlv(body, kSignatureInfo, siginfo);

  std::array<std::uint8_t, 8> digest_bytes{};
  const std::uint64_t d = digest != 0 ? digest : compute_digest();
  for (int i = 0; i < 8; ++i) {
    digest_bytes[i] = static_cast<std::uint8_t>(d >> (8 * (7 - i)));
  }
  write_tlv(body, kSignatureValue, digest_bytes);

  std::vector<std::uint8_t> out;
  write_tlv(out, kData, body);
  return out;
}

bytes::Result<Data> Data::decode(std::span<const std::uint8_t> wire) {
  std::size_t pos = 0;
  const auto outer = read_tlv(wire, pos);
  if (!outer) return bytes::Err(outer.error());
  if (outer->type != kData) return bytes::Err(bytes::Error::kMalformed);

  Data data;
  bool saw_name = false;
  std::size_t inner = 0;
  while (inner < outer->value.size()) {
    const auto element = read_tlv(outer->value, inner);
    if (!element) return bytes::Err(element.error());
    switch (element->type) {
      case kName: {
        auto name = parse_name(element->value);
        if (!name) return bytes::Err(name.error());
        data.name = std::move(*name);
        saw_name = true;
        break;
      }
      case kMetaInfo: {
        std::size_t meta_pos = 0;
        while (meta_pos < element->value.size()) {
          const auto meta = read_tlv(element->value, meta_pos);
          if (!meta) return bytes::Err(meta.error());
          if (meta->type == kFreshnessPeriod) data.freshness_ms = read_nonneg(meta->value);
        }
        break;
      }
      case kContent:
        data.content.assign(element->value.begin(), element->value.end());
        break;
      case kSignatureValue:
        if (element->value.size() != 8) return bytes::Err(bytes::Error::kMalformed);
        data.digest = read_nonneg(element->value);
        break;
      default:
        break;
    }
  }
  if (!saw_name || data.name.empty()) return bytes::Err(bytes::Error::kMalformed);
  return data;
}

}  // namespace dip::ndn::tlv
