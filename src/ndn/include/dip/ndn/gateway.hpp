// NDN ↔ DIP gateway.
//
// Translates native NDN TLV packets onto the DIP realization (§3) and
// back — the NDN analogue of the §2.4 border router for legacy IP. Inbound
// interests become 16-byte DIP interest packets (name → 32-bit code);
// outbound DIP data packets are re-expanded to full TLV Data using the
// name the gateway remembered for that code.
#pragma once

#include <unordered_map>

#include "dip/ndn/ndn.hpp"
#include "dip/ndn/tlv.hpp"

namespace dip::ndn {

class Gateway {
 public:
  /// Native interest -> DIP interest packet. Remembers code -> name so the
  /// returning data can be expanded again. Rejects interests whose code
  /// collides with a *different* pending name (the 32-bit prototype cannot
  /// disambiguate them, §4.1).
  [[nodiscard]] bytes::Result<std::vector<std::uint8_t>> interest_to_dip(
      const tlv::Interest& interest);

  /// DIP data packet (header + payload) -> native Data. Consumes the
  /// remembered name mapping. kState if the gateway never saw an interest
  /// for this code.
  [[nodiscard]] bytes::Result<tlv::Data> dip_to_data(
      std::span<const std::uint8_t> dip_packet);

  /// Native Data -> DIP data packet (producer side of the gateway).
  [[nodiscard]] std::vector<std::uint8_t> data_to_dip(const tlv::Data& data) const;

  /// DIP interest packet -> native interest (producer side). Needs the
  /// reverse mapping, so it only works for codes this gateway issued —
  /// standalone producers behind a gateway register their prefixes instead.
  [[nodiscard]] bytes::Result<tlv::Interest> dip_to_interest(
      std::span<const std::uint8_t> dip_packet) const;

  [[nodiscard]] std::size_t pending() const noexcept { return names_.size(); }
  [[nodiscard]] std::uint64_t collisions() const noexcept { return collisions_; }

 private:
  std::unordered_map<std::uint32_t, fib::Name> names_;
  std::uint64_t collisions_ = 0;
};

}  // namespace dip::ndn
