// Hierarchical-name ↔ 32-bit code mapping for the DIP data plane.
//
// The paper's prototype carries "the 32-bit content name for the packet
// forwarding with F_FIB and F_PIT" (§4.1). To keep LPM semantics, each name
// component is hashed to one byte and the bytes are concatenated MSB-first,
// so a k-component name prefix maps onto a (k*8)-bit code prefix and routers
// can reuse the generic 32-bit LPM engines.
//
// This is deliberately lossy (the prototype compromise): two names can
// collide in code space. The control plane keeps full Names (fib::NameFib);
// collisions only matter on the 32-bit fast path and are quantified in
// tests/ndn_test.
#pragma once

#include <cstdint>

#include "dip/fib/address.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/fib/name_fib.hpp"

namespace dip::ndn {

/// Maximum components representable in a 32-bit code.
inline constexpr std::size_t kMaxCodedComponents = 4;

/// 32-bit code of (up to 4 components of) `name`.
[[nodiscard]] std::uint32_t encode_name32(const fib::Name& name);

/// Code prefix of the first `components` components, as an LPM prefix
/// (length = components * 8 bits).
[[nodiscard]] fib::Ipv4Prefix encode_prefix32(const fib::Name& name,
                                              std::size_t components);

/// Register a name-prefix route in a 32-bit LPM FIB (router-side F_FIB
/// table population).
void install_name_route(fib::Ipv4Lpm& fib, const fib::Name& prefix, fib::NextHop nh);

}  // namespace dip::ndn
