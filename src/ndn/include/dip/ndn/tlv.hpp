// NDN TLV wire format (NDN Packet Format v0.3 subset).
//
// The paper realizes NDN's *forwarding* on DIP with 32-bit name codes
// (§4.1); real NDN endpoints speak TLV. This codec implements the TLV
// subset needed to interoperate — Interest and Data packets with names,
// nonces, lifetimes, content, and a DigestSha256-style signature stub — so
// the gateway (ndn::Gateway) can translate native NDN traffic onto a DIP
// domain and back, the same role legacy/border.hpp plays for IP.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/fib/name_fib.hpp"

namespace dip::ndn::tlv {

// Assigned TLV type numbers (NDN packet spec v0.3).
inline constexpr std::uint64_t kInterest = 0x05;
inline constexpr std::uint64_t kData = 0x06;
inline constexpr std::uint64_t kName = 0x07;
inline constexpr std::uint64_t kGenericComponent = 0x08;
inline constexpr std::uint64_t kCanBePrefix = 0x21;
inline constexpr std::uint64_t kMustBeFresh = 0x12;
inline constexpr std::uint64_t kNonce = 0x0a;
inline constexpr std::uint64_t kInterestLifetime = 0x0c;
inline constexpr std::uint64_t kMetaInfo = 0x14;
inline constexpr std::uint64_t kFreshnessPeriod = 0x19;
inline constexpr std::uint64_t kContent = 0x15;
inline constexpr std::uint64_t kSignatureInfo = 0x16;
inline constexpr std::uint64_t kSignatureValue = 0x17;
inline constexpr std::uint64_t kSignatureType = 0x1b;

/// Write a TLV variable-length number (1/3/5/9-byte encodings).
void write_varnum(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Read a varnum; advances `pos`.
[[nodiscard]] bytes::Result<std::uint64_t> read_varnum(
    std::span<const std::uint8_t> data, std::size_t& pos);

/// Append a full TLV (type, length, value).
void write_tlv(std::vector<std::uint8_t>& out, std::uint64_t type,
               std::span<const std::uint8_t> value);

/// One parsed TLV element (value aliases the input buffer).
struct Element {
  std::uint64_t type = 0;
  std::span<const std::uint8_t> value;
};

/// Read the next TLV element; advances `pos`.
[[nodiscard]] bytes::Result<Element> read_tlv(std::span<const std::uint8_t> data,
                                              std::size_t& pos);

/// Encode/decode a Name TLV (generic components only).
void write_name(std::vector<std::uint8_t>& out, const fib::Name& name);
[[nodiscard]] bytes::Result<fib::Name> parse_name(std::span<const std::uint8_t> value);

/// NDN Interest (the subset the gateway needs).
struct Interest {
  fib::Name name;
  bool can_be_prefix = false;
  bool must_be_fresh = false;
  std::uint32_t nonce = 0;
  std::optional<std::uint64_t> lifetime_ms;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static bytes::Result<Interest> decode(
      std::span<const std::uint8_t> wire);
};

/// NDN Data.
struct Data {
  fib::Name name;
  std::optional<std::uint64_t> freshness_ms;
  std::vector<std::uint8_t> content;
  /// DigestSha256 stand-in: SipHash over name+content (the real release
  /// would plug a proper signer; the gateway only needs integrity framing).
  std::uint64_t digest = 0;

  /// Compute the digest for the current name/content.
  [[nodiscard]] std::uint64_t compute_digest() const;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static bytes::Result<Data> decode(std::span<const std::uint8_t> wire);
};

}  // namespace dip::ndn::tlv
