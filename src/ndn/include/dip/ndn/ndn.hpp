// NDN realized with DIP (§3 "NDN").
//
// Two packet types, one FN each (which is what makes Table 2's 16-byte NDN
// header come out):
//   interest: (loc 0, len 32, F_FIB) — "the router records its receiving
//             port in the PIT and matches it in the FIB with the content
//             name to determine the forwarding port";
//   data:     (loc 0, len 32, F_PIT) — "the router looks up the content name
//             in the PIT and forwards it to the recorded request port (match
//             hit) or discards the packet (match miss)".
//
// The 32-bit content name code comes from ndn::encode_name32.
#pragma once

#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/fib/name_fib.hpp"
#include "dip/ndn/name_codec.hpp"

namespace dip::ndn {

/// F_FIB (key 4): PIT-record the ingress, probe the content store (footnote
/// 2), then LPM the content name in the name FIB.
class FibOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kFib; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 2; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// F_PIT (key 5): consume the pending-interest entry and fan the data out to
/// every recorded request port; cache into the content store when enabled.
class PitOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kPit; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 2; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// Compose an interest header for `name`. Wire size: 6 + 6 + 4 = 16 bytes.
[[nodiscard]] bytes::Result<core::DipHeader> make_interest_header(
    const fib::Name& name, core::NextHeader next = core::NextHeader::kNone,
    std::uint8_t hop_limit = 64);

/// Compose a data header for `name`. Wire size: 16 bytes.
[[nodiscard]] bytes::Result<core::DipHeader> make_data_header(
    const fib::Name& name, core::NextHeader next = core::NextHeader::kNone,
    std::uint8_t hop_limit = 64);

/// Variants taking a pre-encoded 32-bit name code (fast path, benches).
[[nodiscard]] bytes::Result<core::DipHeader> make_interest_header32(
    std::uint32_t name_code, core::NextHeader next = core::NextHeader::kNone,
    std::uint8_t hop_limit = 64);
[[nodiscard]] bytes::Result<core::DipHeader> make_data_header32(
    std::uint32_t name_code, core::NextHeader next = core::NextHeader::kNone,
    std::uint8_t hop_limit = 64);

/// The name code carried by a parsed NDN-over-DIP header (the first
/// F_FIB/F_PIT target field), if any.
[[nodiscard]] std::optional<std::uint32_t> extract_name_code(
    const core::DipHeader& header) noexcept;

}  // namespace dip::ndn
