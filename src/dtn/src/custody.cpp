#include "dip/dtn/custody.hpp"

#include <algorithm>

namespace dip::dtn {

namespace {

void put_be32(std::span<std::uint8_t> out, std::size_t at, std::uint32_t v) noexcept {
  out[at] = static_cast<std::uint8_t>(v >> 24);
  out[at + 1] = static_cast<std::uint8_t>(v >> 16);
  out[at + 2] = static_cast<std::uint8_t>(v >> 8);
  out[at + 3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_be32(std::span<const std::uint8_t> in, std::size_t at) noexcept {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) | in[at + 3];
}

}  // namespace

CustodyTag CustodyTag::read(std::span<const std::uint8_t> field) noexcept {
  CustodyTag tag;
  if (field.size() < kCustodyTagBytes) return tag;
  tag.flags = field[0];
  tag.chain_len = field[1];
  tag.prev_custodian = static_cast<std::uint16_t>((field[2] << 8) | field[3]);
  tag.bundle_id = get_be32(field, 4);
  tag.custodian = get_be32(field, 8);
  tag.chain_digest = get_be32(field, 12);
  tag.mac = crypto::block_from(field.subspan(16, 16));
  return tag;
}

void CustodyTag::write(std::span<std::uint8_t> field) const noexcept {
  if (field.size() < kCustodyTagBytes) return;
  field[0] = flags;
  field[1] = chain_len;
  field[2] = static_cast<std::uint8_t>(prev_custodian >> 8);
  field[3] = static_cast<std::uint8_t>(prev_custodian);
  put_be32(field, 4, bundle_id);
  put_be32(field, 8, custodian);
  put_be32(field, 12, chain_digest);
  crypto::block_to(mac, field.subspan(16, 16));
}

crypto::Block CustodyTag::compute_mac(std::span<const std::uint8_t> field,
                                      const crypto::Block& key, crypto::MacKind kind) {
  return crypto::make_mac(kind, key)->compute(field.subspan(0, 16));
}

FragInfo FragInfo::read(std::span<const std::uint8_t> field) noexcept {
  FragInfo f;
  if (field.size() < kFragBytes) return f;
  f.index = static_cast<std::uint16_t>((field[0] << 8) | field[1]);
  f.total = static_cast<std::uint16_t>((field[2] << 8) | field[3]);
  f.bundle_id = get_be32(field, 4);
  return f;
}

void FragInfo::write(std::span<std::uint8_t> field) const noexcept {
  if (field.size() < kFragBytes) return;
  field[0] = static_cast<std::uint8_t>(index >> 8);
  field[1] = static_cast<std::uint8_t>(index);
  field[2] = static_cast<std::uint8_t>(total >> 8);
  field[3] = static_cast<std::uint8_t>(total);
  put_be32(field, 4, bundle_id);
}

bytes::Status CustodyOp::execute(core::OpContext& ctx) {
  auto field = ctx.target_bytes();
  if (field.size() < kCustodyTagBytes) {
    return bytes::Unexpected{bytes::Error::kMalformed};
  }
  // A non-custodial node carries the tag untouched — the overlay half of
  // the §2.4 heterogeneous-deployment rule; the module being registered at
  // all mirrors the other half.
  if (!ctx.env->accept_custody) return {};

  CustodyTag tag = CustodyTag::read(field);
  const crypto::Block expected =
      CustodyTag::compute_mac(field, ctx.env->custody_key, ctx.env->mac_kind);
  if (!crypto::block_equal_ct(expected, tag.mac)) {
    // A forged/corrupted custody chain is an authentication failure, not a
    // structural one: same taxonomy as a bad OPT tag.
    ctx.result->drop(core::DropReason::kAuthFailed);
    return {};
  }
  if (tag.is_ack() || !tag.requested()) return {};  // nothing to accept

  // Accept custody: stamp ourselves as custodian and extend the chain. The
  // node wrapper observes the rewrite (custodian == node_id) and commits
  // the forwarded bytes into its CustodyStore + ACKs the previous holder,
  // whose identity survives in the prev field of the rewritten tag.
  tag.prev_custodian = static_cast<std::uint16_t>(tag.custodian);
  tag.custodian = ctx.env->node_id;
  tag.chain_len = static_cast<std::uint8_t>(tag.chain_len + 1);
  tag.chain_digest = chain_mix(tag.chain_digest, ctx.env->node_id);
  tag.write(field);
  tag.mac = CustodyTag::compute_mac(field, ctx.env->custody_key, ctx.env->mac_kind);
  tag.write(field);
  return {};
}

bytes::Status BundleFragOp::execute(core::OpContext& ctx) {
  auto field = ctx.target_bytes();
  if (field.size() < kFragBytes) return bytes::Unexpected{bytes::Error::kMalformed};
  const FragInfo frag = FragInfo::read(field);
  if (frag.total == 0 || frag.index >= frag.total) {
    return bytes::Unexpected{bytes::Error::kMalformed};
  }
  return {};
}

void add_custody_modules(core::OpRegistry& registry) {
  registry.add(std::make_unique<CustodyOp>());
  registry.add(std::make_unique<BundleFragOp>());
}

void add_custody_fn(core::HeaderBuilder& builder, const CustodyTag& tag,
                    const crypto::Block& key, crypto::MacKind kind) {
  std::array<std::uint8_t, kCustodyTagBytes> field{};
  tag.write(field);
  CustodyTag stamped = tag;
  stamped.mac = CustodyTag::compute_mac(field, key, kind);
  stamped.write(field);
  builder.add_router_fn(core::OpKey::kCustody, field);
}

void add_frag_fn(core::HeaderBuilder& builder, const FragInfo& frag) {
  std::array<std::uint8_t, kFragBytes> field{};
  frag.write(field);
  builder.add_router_fn(core::OpKey::kBundleFrag, field);
}

bytes::Result<core::DipHeader> make_dip32_custody_header(
    const fib::Ipv4Addr& dst, const fib::Ipv4Addr& src, const CustodyTag& tag,
    const FragInfo& frag, const crypto::Block& key, crypto::MacKind kind,
    std::uint8_t hop_limit) {
  core::HeaderBuilder b;
  b.next_header(core::NextHeader::kNone).hop_limit(hop_limit);
  b.add_router_fn(core::OpKey::kMatch32, dst.bytes);  // first: the flow key
  b.add_router_fn(core::OpKey::kSource, src.bytes);
  add_custody_fn(b, tag, key, kind);
  add_frag_fn(b, frag);
  return b.build();
}

bytes::Result<core::DipHeader> make_custody_ack_header(
    const fib::Ipv4Addr& dst, const fib::Ipv4Addr& src, const CustodyTag& accepted,
    const FragInfo& frag, const crypto::Block& key, crypto::MacKind kind) {
  CustodyTag ack = accepted;
  ack.flags = kCustodyAck;
  return make_dip32_custody_header(dst, src, ack, frag, key, kind);
}

namespace {

std::optional<bytes::BitRange> find_field(std::span<const core::FnTriple> fns,
                                          core::OpKey key,
                                          std::uint16_t min_bits) noexcept {
  for (const core::FnTriple& fn : fns) {
    if (fn.key() == key && fn.range().byte_aligned() && fn.field_len >= min_bits) {
      return fn.range();
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<bytes::BitRange> find_custody_field(
    std::span<const core::FnTriple> fns) noexcept {
  return find_field(fns, core::OpKey::kCustody, kCustodyTagBytes * 8);
}

std::optional<bytes::BitRange> find_frag_field(
    std::span<const core::FnTriple> fns) noexcept {
  return find_field(fns, core::OpKey::kBundleFrag, kFragBytes * 8);
}

std::optional<CustodyTag> verify_custody_tag(std::span<const std::uint8_t> field,
                                             const crypto::Block& key,
                                             crypto::MacKind kind) {
  if (field.size() < kCustodyTagBytes) return std::nullopt;
  const CustodyTag tag = CustodyTag::read(field);
  const crypto::Block expected = CustodyTag::compute_mac(field, key, kind);
  if (!crypto::block_equal_ct(expected, tag.mac)) return std::nullopt;
  return tag;
}

std::optional<fib::Ipv4Addr> dip32_destination(const core::DipHeader& header) noexcept {
  const auto range = find_field(header.fns, core::OpKey::kMatch32, 32);
  if (!range) return std::nullopt;
  const std::size_t at = range->bit_offset / 8;
  if (header.locations.size() < at + 4) return std::nullopt;
  return fib::ipv4_from_u32(get_be32(header.locations, at));
}

}  // namespace dip::dtn
