#include "dip/dtn/node.hpp"

#include "dip/security/error_message.hpp"
#include "dip/telemetry/telemetry.hpp"

namespace dip::dtn {

namespace {

core::RouterEnv with_store(core::RouterEnv env, std::shared_ptr<CustodyStore> store) {
  env.custody_store = std::move(store);
  return env;
}

}  // namespace

fib::Ipv4Addr custody_addr(std::uint32_t node) noexcept {
  return fib::ipv4_from_u32((10u << 24) | ((node & 0xFFFFu) << 8) | 1u);
}

fib::Prefix<32> custody_prefix(std::uint32_t node) noexcept {
  return {fib::ipv4_from_u32((10u << 24) | ((node & 0xFFFFu) << 8)), 24};
}

CustodyRouterNode::CustodyRouterNode(core::RouterEnv env,
                                     std::shared_ptr<const core::OpRegistry> registry,
                                     Config config)
    : registry_(std::move(registry)),
      config_(config),
      store_(std::make_shared<CustodyStore>(config.limits)),
      retx_(config.retx),
      router_(with_store(std::move(env), store_), registry_.get()) {}

void CustodyRouterNode::on_packet(netsim::FaceId face, netsim::PacketBytes packet, SimTime now) {
  // The custody plane wraps the engine: read the tag before processing (who
  // held custody), let the op rewrite it, then compare afterwards. The
  // engine itself stays custody-store-free.
  std::optional<CustodyTag> pre_tag;
  FragInfo frag{};
  std::size_t tag_at = 0;  // tag field offset within the packet bytes
  if (const auto header = core::DipHeader::parse(packet)) {
    const std::size_t loc_start = core::BasicHeader::kWireSize +
                                  header->fns.size() * core::FnTriple::kWireSize;
    if (const auto ff = find_frag_field(header->fns)) {
      const std::size_t at = ff->bit_offset / 8;
      if (header->locations.size() >= at + kFragBytes) {
        frag = FragInfo::read(std::span<const std::uint8_t>(header->locations)
                                  .subspan(at, kFragBytes));
      }
    }
    if (const auto cf = find_custody_field(header->fns)) {
      const std::size_t at = cf->bit_offset / 8;
      if (header->locations.size() >= at + kCustodyTagBytes) {
        const auto field = std::span<const std::uint8_t>(header->locations)
                               .subspan(at, kCustodyTagBytes);
        pre_tag = CustodyTag::read(field);
        tag_at = loc_start + at;
        if (pre_tag->is_ack()) {
          const auto dst = dip32_destination(*header);
          if (dst && *dst == address()) {
            // Terminal ACK: only a MAC-valid tag releases custody — a
            // forged release would strand the bundle as surely as a drop.
            if (const auto tag =
                    verify_custody_tag(field, env().custody_key, env().mac_kind)) {
              handle_ack(*tag, frag);
            } else {
              ++drop_counts_[static_cast<std::size_t>(core::DropReason::kAuthFailed) %
                             drop_counts_.size()];
            }
            return;
          }
        }
      }
    }
  }

  const core::ProcessResult result = router_.process(packet, face, now);

  const bool accept_window = pre_tag && pre_tag->requested() && !pre_tag->is_ack() &&
                             env().accept_custody &&
                             result.action == core::Action::kForward &&
                             !result.respond_from_cache && !result.egress.empty();
  if (accept_window) {
    // The op only rewrote the tag if the MAC verified; the custodian field
    // naming this node is the acceptance signal.
    const CustodyTag post = CustodyTag::read(
        std::span<const std::uint8_t>(packet).subspan(tag_at, kCustodyTagBytes));
    if (post.requested() && post.custodian == env().node_id) {
      const std::uint64_t key = frag_key(post.bundle_id, frag.index);
      bool duplicate = false;
      CustodyStore::Entry* entry =
          store_->commit(key, packet, result.egress[0], now, &duplicate);
      if (entry == nullptr) {
        // Caps hit with only live custody inside: refuse. No ACK, no
        // forward — the previous custodian keeps the bundle and retries.
        ++custody_drops_;
        return;
      }
      send_ack(post, frag, pre_tag->custodian, face);
      if (duplicate) {
        // Upstream retransmitted before our ACK landed: re-ACK (above),
        // but never forward a second copy downstream.
        ++custody_drops_;
        return;
      }
      entry->ingress_hint = face;
      retx_.on_primary(packet.size(), now);
      arm_retry(key);
      apply_verdict(face, packet, result);
      return;
    }
  }

  if (result.action == core::Action::kForward && !result.respond_from_cache) {
    retx_.on_primary(packet.size(), now);
  }
  apply_verdict(face, packet, result);
}

void CustodyRouterNode::apply_verdict(netsim::FaceId face, netsim::PacketBytes& packet,
                                      const core::ProcessResult& result) {
  switch (result.action) {
    case core::Action::kForward: {
      for (std::size_t i = 0; i < result.egress.size(); ++i) {
        if (i + 1 == result.egress.size()) {
          network()->send(*this, result.egress[i], std::move(packet));
        } else {
          network()->send(*this, result.egress[i], packet);
        }
      }
      return;
    }
    case core::Action::kDrop: {
      ++drop_counts_[static_cast<std::size_t>(result.reason) % drop_counts_.size()];
      return;
    }
    case core::Action::kError: {
      ++drop_counts_[static_cast<std::size_t>(result.reason) % drop_counts_.size()];
      // §2.4: notify the source back out the ingress face.
      const auto header = core::DipHeader::parse(packet);
      if (!header) return;
      auto notification = security::make_fn_unsupported_packet(
          *header, result.offending_key, env().node_id);
      if (!notification) return;
      network()->send(*this, face, std::move(*notification));
      return;
    }
  }
}

void CustodyRouterNode::handle_ack(const CustodyTag& tag, const FragInfo& frag) {
  // Duplicate ACKs (chaos links duplicate packets; upstream re-ACKs on
  // duplicate commits) find the entry gone and are counted by the store.
  store_->release(frag_key(tag.bundle_id, frag.index));
}

void CustodyRouterNode::send_ack(const CustodyTag& accepted, const FragInfo& frag,
                                 std::uint32_t prev_custodian, netsim::FaceId ingress) {
  auto ack = make_custody_ack_header(custody_addr(prev_custodian), address(),
                                     accepted, frag, env().custody_key,
                                     env().mac_kind);
  if (!ack) return;
  ++acks_sent_;
  network()->send(*this, ingress, ack->serialize());
}

void CustodyRouterNode::arm_retry(std::uint64_t key) {
  CustodyStore::Entry* entry = store_->find(key);
  if (entry == nullptr) return;
  // Backoff per the retry policy, plus the DPS-priced pacing gap: custody
  // retransmissions drain at lower priority than first-transmission traffic.
  const SimDuration delay = config_.retry.timeout_for(entry->attempts) +
                            retx_.gap_for(entry->packet.size());
  const std::uint32_t expected = entry->attempts;
  network()->loop().schedule_in(delay,
                                [this, key, expected] { on_retry(key, expected); });
}

void CustodyRouterNode::on_retry(std::uint64_t key, std::uint32_t expected_attempts) {
  CustodyStore::Entry* entry = store_->find(key);
  // Released (ACK arrived) or superseded by a newer timer generation.
  if (entry == nullptr || entry->attempts != expected_attempts) return;
  if (!store_->charge_retransmission(key)) return;  // exhausted: go quiet
  network()->send(*this, entry->egress, entry->packet);
  arm_retry(key);  // attempts advanced, so this timer's generation is fresh
}

void CustodyRouterNode::write_stats(telemetry::StatsWriter& w) const {
  const std::string node_id = std::to_string(router_.env().node_id);
  const telemetry::Label labels[] = {{"node", node_id}};
  const auto namer = [](std::size_t slot) {
    return core::op_key_name(static_cast<core::OpKey>(slot));
  };
  telemetry::write_counter_snapshot(w, router_.env().counters.snapshot(), labels,
                                    +namer);
  store_->write_stats(w, router_.env().node_id);
  w.counter("dip_dtn_acks_total", labels, acks_sent_);
  w.counter("dip_dtn_custody_drops_total", labels, custody_drops_);
  for (std::size_t r = 0; r < drop_counts_.size(); ++r) {
    if (drop_counts_[r] == 0) continue;
    const telemetry::Label drop_labels[] = {
        {"node", node_id},
        {"reason", core::to_string(static_cast<core::DropReason>(r))}};
    w.counter("dip_node_drops_total", drop_labels, drop_counts_[r]);
  }
}

}  // namespace dip::dtn
