#include "dip/dtn/store.hpp"

#include <algorithm>

namespace dip::dtn {

CustodyStore::Entry* CustodyStore::commit(std::uint64_t key,
                                          std::span<const std::uint8_t> packet,
                                          std::uint32_t egress, std::uint64_t now,
                                          bool* duplicate) {
  if (duplicate != nullptr) *duplicate = false;
  if (auto it = entries_.find(key); it != entries_.end()) {
    ++stats_.duplicate_commits;
    if (duplicate != nullptr) *duplicate = true;
    return &it->second;
  }

  make_room(packet.size());
  if (entries_.size() >= limits_.max_bundles || bytes_ + packet.size() > limits_.max_bytes) {
    ++stats_.refused_full;
    return nullptr;
  }

  Entry entry;
  entry.key = key;
  entry.packet.assign(packet.begin(), packet.end());
  entry.egress = egress;
  entry.committed_at = now;
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  bytes_ += it->second.packet.size();
  ++stats_.commits;
  stats_.bytes_high_water = std::max(stats_.bytes_high_water, bytes_);
  stats_.bundles_high_water = std::max(stats_.bundles_high_water, entries_.size());
  return &it->second;
}

CustodyStore::Entry* CustodyStore::find(std::uint64_t key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool CustodyStore::release(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.duplicate_acks;
    return false;
  }
  bytes_ -= it->second.packet.size();
  entries_.erase(it);
  ++stats_.released;
  return true;
}

bool CustodyStore::charge_retransmission(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (it->second.attempts >= limits_.max_retries) return false;
  ++it->second.attempts;
  ++stats_.retransmissions;
  return true;
}

bool CustodyStore::abandon(std::uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  bytes_ -= it->second.packet.size();
  entries_.erase(it);
  ++stats_.evicted;
  return true;
}

void CustodyStore::make_room(std::size_t incoming) {
  const auto over_caps = [&] {
    return entries_.size() >= limits_.max_bundles ||
           bytes_ + incoming > limits_.max_bytes;
  };
  while (over_caps()) {
    // Oldest exhausted entry first: deterministic (commit time, then key).
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.attempts < limits_.max_retries) continue;
      if (victim == entries_.end() ||
          it->second.committed_at < victim->second.committed_at) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // only live custody left: refuse
    bytes_ -= victim->second.packet.size();
    entries_.erase(victim);
    ++stats_.evicted;
  }
}

void CustodyStore::write_stats(telemetry::StatsWriter& w, std::uint32_t node) const {
  const std::string node_id = std::to_string(node);
  const telemetry::Label labels[] = {{"node", node_id}};
  w.gauge("dip_dtn_store_bundles", labels, static_cast<double>(entries_.size()));
  w.gauge("dip_dtn_store_bytes", labels, static_cast<double>(bytes_));
  w.gauge("dip_dtn_store_bundles_high_water", labels,
          static_cast<double>(stats_.bundles_high_water));
  w.gauge("dip_dtn_store_bytes_high_water", labels,
          static_cast<double>(stats_.bytes_high_water));
  w.counter("dip_dtn_commits_total", labels, stats_.commits);
  w.counter("dip_dtn_duplicate_commits_total", labels, stats_.duplicate_commits);
  w.counter("dip_dtn_refused_full_total", labels, stats_.refused_full);
  w.counter("dip_dtn_released_total", labels, stats_.released);
  w.counter("dip_dtn_evicted_total", labels, stats_.evicted);
  w.counter("dip_dtn_retransmissions_total", labels, stats_.retransmissions);
  w.counter("dip_dtn_duplicate_acks_total", labels, stats_.duplicate_acks);
}

}  // namespace dip::dtn
