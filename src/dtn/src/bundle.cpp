#include "dip/dtn/bundle.hpp"

#include "dip/dtn/node.hpp"

namespace dip::dtn {

namespace {

/// Parsed custody-plane view of an incoming packet: raw tag field (for MAC
/// verification), fragment metadata, and the dip32 destination.
struct CustodyView {
  core::DipHeader header;
  std::span<const std::uint8_t> tag_field;  ///< aliases header.locations
  FragInfo frag;
  std::optional<fib::Ipv4Addr> dst;
};

std::optional<CustodyView> parse_custody(std::span<const std::uint8_t> packet,
                                         core::DipHeader& storage) {
  auto parsed = core::DipHeader::parse(packet);
  if (!parsed) return std::nullopt;
  storage = std::move(*parsed);
  const auto cf = find_custody_field(storage.fns);
  if (!cf) return std::nullopt;
  const std::size_t at = cf->bit_offset / 8;
  if (storage.locations.size() < at + kCustodyTagBytes) return std::nullopt;
  CustodyView view;
  view.tag_field =
      std::span<const std::uint8_t>(storage.locations).subspan(at, kCustodyTagBytes);
  if (const auto ff = find_frag_field(storage.fns)) {
    const std::size_t fat = ff->bit_offset / 8;
    if (storage.locations.size() >= fat + kFragBytes) {
      view.frag = FragInfo::read(
          std::span<const std::uint8_t>(storage.locations).subspan(fat, kFragBytes));
    }
  }
  view.dst = dip32_destination(storage);
  return view;
}

}  // namespace

std::uint32_t BundleSender::send(std::span<const std::uint8_t> payload) {
  const std::uint32_t bundle = next_bundle_++;
  const std::size_t per = config_.frag_payload == 0 ? 1 : config_.frag_payload;
  const std::size_t total =
      payload.empty() ? 1 : (payload.size() + per - 1) / per;

  for (std::size_t i = 0; i < total; ++i) {
    Flight flight;
    flight.frag.index = static_cast<std::uint16_t>(i);
    flight.frag.total = static_cast<std::uint16_t>(total);
    flight.frag.bundle_id = bundle;
    const std::size_t off = i * per;
    const std::size_t len = std::min(per, payload.size() - std::min(off, payload.size()));
    flight.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                          payload.begin() + static_cast<std::ptrdiff_t>(off + len));
    flight.sender =
        std::make_unique<host::ReliableSender>(node_, face_, config_.retry);

    const std::uint64_t key = frag_key(bundle, flight.frag.index);
    // The factory owns copies of everything it needs: it outlives the
    // Flight map entry (armed timers fire after acknowledge/failure).
    const FragInfo frag = flight.frag;
    std::vector<std::uint8_t> frag_payload = flight.payload;
    flight.epoch = flight.sender->send(
        [this, frag, frag_payload](std::uint32_t) {
          return build_packet(frag, frag_payload);
        },
        [this, key] {
          auto it = in_flight_.find(key);
          if (it == in_flight_.end()) return;
          ++failures_;
          retired_.push_back(std::move(it->second.sender));
          in_flight_.erase(it);
        });
    in_flight_.emplace(key, std::move(flight));
  }
  return bundle;
}

netsim::PacketBytes BundleSender::build_packet(
    const FragInfo& frag, std::span<const std::uint8_t> payload) const {
  CustodyTag tag;
  tag.flags = kCustodyRequest;
  tag.chain_len = 0;
  tag.bundle_id = frag.bundle_id;
  tag.custodian = config_.node_id;  // the sender is the initial custodian
  tag.chain_digest = chain_mix(0, config_.node_id);
  const auto header =
      make_dip32_custody_header(config_.dst, config_.self, tag, frag,
                                config_.custody_key, config_.mac, config_.hop_limit);
  if (!header) return {};
  netsim::PacketBytes packet = header->serialize();
  packet.insert(packet.end(), payload.begin(), payload.end());
  return packet;
}

bool BundleSender::on_packet(std::span<const std::uint8_t> packet) {
  core::DipHeader storage;
  const auto view = parse_custody(packet, storage);
  if (!view) return false;
  const CustodyTag raw = CustodyTag::read(view->tag_field);
  if (!raw.is_ack()) return false;
  if (!view->dst || !(*view->dst == config_.self)) return false;
  const auto tag =
      verify_custody_tag(view->tag_field, config_.custody_key, config_.mac);
  if (!tag) return true;  // forged/corrupt ACK: consumed, ignored

  const std::uint64_t key = frag_key(tag->bundle_id, view->frag.index);
  auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return true;  // duplicate ACK of a retired flight
  if (it->second.sender->acknowledge(it->second.epoch)) {
    ++committed_;
    retired_.push_back(std::move(it->second.sender));
    in_flight_.erase(it);
  }
  return true;
}

std::uint64_t BundleSender::retransmissions() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [key, flight] : in_flight_) sum += flight.sender->retransmissions();
  for (const auto& sender : retired_) sum += sender->retransmissions();
  return sum;
}

bool BundleReceiver::on_packet(std::span<const std::uint8_t> packet) {
  core::DipHeader storage;
  const auto view = parse_custody(packet, storage);
  if (!view) return false;
  const CustodyTag raw = CustodyTag::read(view->tag_field);
  if (raw.is_ack()) return false;  // custody ACKs are sender business
  if (!view->dst || !(*view->dst == config_.self)) return false;

  ++fragments_;
  const auto tag =
      verify_custody_tag(view->tag_field, config_.custody_key, config_.mac);
  if (!tag) {
    // A fragment whose custody chain fails the MAC is never ACKed: the
    // custodian keeps it and retries, eventually with a clean copy.
    ++rejected_;
    return true;
  }
  const FragInfo frag = view->frag;
  if (frag.total == 0 || frag.index >= frag.total) {
    ++rejected_;
    return true;
  }

  if (completed_.count(frag.bundle_id) != 0) {
    // The bundle already assembled; the custodian missed our ACK — re-ACK.
    ++duplicates_;
    send_ack(*tag, frag);
    return true;
  }

  auto [it, created] = pending_.try_emplace(frag.bundle_id);
  Pending& bundle = it->second;
  if (created) bundle.total = frag.total;
  if (bundle.poisoned) {
    ++rejected_;
    return true;
  }
  if (frag.total != bundle.total) {
    // Geometry conflict: this fragment cannot belong to the bundle we have
    // been assembling.
    ++rejected_;
    if (config_.strict) {
      bundle.poisoned = true;
      bundle.frags.clear();
      ++poisoned_;
    }
    return true;  // lenient: first-seen geometry wins, fragment quarantined
  }
  if (bundle.frags.count(frag.index) != 0) {
    ++duplicates_;
    send_ack(*tag, frag);  // the custodian is retrying: it missed the ACK
    return true;
  }

  const std::size_t header_size = storage.wire_size();
  bundle.frags.emplace(frag.index,
                       std::vector<std::uint8_t>(packet.begin() +
                                                     static_cast<std::ptrdiff_t>(
                                                         std::min(header_size,
                                                                  packet.size())),
                                                 packet.end()));
  send_ack(*tag, frag);

  if (bundle.frags.size() == bundle.total) {
    std::vector<std::uint8_t> payload;
    for (auto& [index, piece] : bundle.frags) {
      payload.insert(payload.end(), piece.begin(), piece.end());
    }
    completed_.insert(frag.bundle_id);
    pending_.erase(it);
    if (handler_) handler_(frag.bundle_id, std::move(payload));
  }
  return true;
}

void BundleReceiver::send_ack(const CustodyTag& tag, const FragInfo& frag) {
  const auto ack =
      make_custody_ack_header(custody_addr(tag.custodian), config_.self, tag, frag,
                              config_.custody_key, config_.mac);
  if (!ack) return;
  node_.send(face_, ack->serialize());
}

}  // namespace dip::dtn
