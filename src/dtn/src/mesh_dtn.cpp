#include "dip/dtn/mesh_dtn.hpp"

#include "dip/mesh/control.hpp"
#include "dip/netsim/dip_node.hpp"

namespace dip::dtn {

namespace {

/// Custody-plane view of a packet: tag field span, fragment info.
struct View {
  core::DipHeader header;
  CustodyTag tag;
  FragInfo frag;
  std::span<const std::uint8_t> tag_field;
};

std::optional<View> parse_view(std::span<const std::uint8_t> packet) {
  auto parsed = core::DipHeader::parse(packet);
  if (!parsed) return std::nullopt;
  View v;
  v.header = std::move(*parsed);
  const auto cf = find_custody_field(v.header.fns);
  if (!cf) return std::nullopt;
  const std::size_t at = cf->bit_offset / 8;
  if (v.header.locations.size() < at + kCustodyTagBytes) return std::nullopt;
  v.tag_field = std::span<const std::uint8_t>(v.header.locations)
                    .subspan(at, kCustodyTagBytes);
  v.tag = CustodyTag::read(v.tag_field);
  if (const auto ff = find_frag_field(v.header.fns)) {
    const std::size_t fat = ff->bit_offset / 8;
    if (v.header.locations.size() >= fat + kFragBytes) {
      v.frag = FragInfo::read(
          std::span<const std::uint8_t>(v.header.locations).subspan(fat, kFragBytes));
    }
  }
  return v;
}

}  // namespace

std::shared_ptr<core::OpRegistry> MeshCustodyFleet::make_registry() {
  auto registry = netsim::make_default_registry();
  add_custody_modules(*registry);
  return registry;
}

MeshCustodyFleet::MeshCustodyFleet(mesh::MeshNet& mesh, Config config)
    : mesh_(mesh), config_(config) {
  nodes_.reserve(mesh_.size());
  for (std::size_t i = 0; i < mesh_.size(); ++i) {
    NodeState state;
    state.store = std::make_shared<CustodyStore>(config_.limits);
    state.retx = RetxScheduler(config_.retx);
    mesh::MeshRouter& r = mesh_.router(i);
    r.env().custody_key = config_.custody_key;
    r.env().accept_custody = true;
    r.env().custody_store = state.store;
    r.set_forward_tap([this, i](mesh::FaceId ingress, mesh::FaceId egress,
                                std::span<const std::uint8_t> packet) {
      on_forward(i, ingress, egress, packet);
    });
    nodes_.push_back(std::move(state));
  }
  mesh_.set_delivery([this](std::size_t i, std::span<const std::uint8_t> packet,
                            std::uint64_t now) { on_delivery(i, packet, now); });
}

std::uint32_t MeshCustodyFleet::send(std::size_t src, std::size_t dst,
                                     std::span<const std::uint8_t> payload) {
  const std::uint32_t bundle = next_bundle_++;
  const std::size_t per = config_.frag_payload == 0 ? 1 : config_.frag_payload;
  const std::size_t total = payload.empty() ? 1 : (payload.size() + per - 1) / per;
  bundle_times_[bundle] = {mesh_.loop().now_ns(), 0};

  for (std::size_t f = 0; f < total; ++f) {
    CustodyTag tag;
    tag.flags = kCustodyRequest;
    tag.custodian = node_id(src);  // the source router is the initial custodian
    tag.prev_custodian = static_cast<std::uint16_t>(node_id(src));
    tag.bundle_id = bundle;
    tag.chain_digest = chain_mix(0, node_id(src));
    FragInfo frag;
    frag.index = static_cast<std::uint16_t>(f);
    frag.total = static_cast<std::uint16_t>(total);
    frag.bundle_id = bundle;

    const auto header = make_dip32_custody_header(
        mesh::addr_of(node_id(dst)), mesh::addr_of(node_id(src)), tag, frag,
        config_.custody_key, mesh_.router(src).env().mac_kind);
    if (!header) continue;
    mesh::PacketBytes packet = header->serialize();
    const std::size_t off = f * per;
    const std::size_t len =
        std::min(per, payload.size() - std::min(off, payload.size()));
    packet.insert(packet.end(), payload.begin() + static_cast<std::ptrdiff_t>(off),
                  payload.begin() + static_cast<std::ptrdiff_t>(off + len));
    // The source router accepts custody of its own injection: the forward
    // tap commits the fragment before it ever touches a wire.
    mesh_.router(src).inject(packet, mesh_.local_face_of(src));
  }
  return bundle;
}

void MeshCustodyFleet::on_forward(std::size_t i, mesh::FaceId /*ingress*/,
                                  mesh::FaceId egress,
                                  std::span<const std::uint8_t> packet) {
  const auto view = parse_view(packet);
  const std::uint64_t now = mesh_.loop().now_ns();
  if (!view || view->tag.is_ack() ||
      !(view->tag.requested() && view->tag.custodian == node_id(i))) {
    // Not a custody acceptance of ours: first-transmission band.
    nodes_[i].retx.on_primary(packet.size(), now);
    return;
  }
  if (egress == mesh_.local_face_of(i)) return;  // terminal: delivery ACKs

  const std::uint64_t key = frag_key(view->tag.bundle_id, view->frag.index);
  bool duplicate = false;
  CustodyStore::Entry* entry =
      nodes_[i].store->commit(key, packet, egress, now, &duplicate);
  if (entry == nullptr) {
    // Store full of live custody: the packet still forwards (a tap cannot
    // veto), but this node takes no custody and sends no ACK — the previous
    // custodian keeps retrying until space frees or the next hop commits.
    ++custody_drops_;
    return;
  }
  if (view->tag.prev_custodian != static_cast<std::uint16_t>(node_id(i))) {
    ack_from(i, view->tag, view->frag, view->tag.prev_custodian);
  }
  if (duplicate) return;  // re-offered fragment: re-ACKed above, keep timer
  nodes_[i].retx.on_primary(packet.size(), now);
  arm_retry(i, key);
}

void MeshCustodyFleet::on_delivery(std::size_t i, std::span<const std::uint8_t> packet,
                                   std::uint64_t now) {
  const auto view = parse_view(packet);
  if (!view) return;
  mesh::MeshRouter& r = mesh_.router(i);
  const auto tag =
      verify_custody_tag(view->tag_field, config_.custody_key, r.env().mac_kind);
  if (!tag) return;  // forged/corrupt custody plane: ignore

  const std::uint64_t key = frag_key(tag->bundle_id, view->frag.index);
  if (tag->is_ack()) {
    // Release our copy; cancel its retry timer so the heap stays small.
    if (CustodyStore::Entry* entry = nodes_[i].store->find(key)) {
      if (entry->timer_id != 0) mesh_.loop().cancel_timer(entry->timer_id);
    }
    nodes_[i].store->release(key);
    return;
  }

  // Terminal data fragment. ACK the last custodian (the final custody
  // transfer), dedup, and assemble.
  if (tag->prev_custodian != static_cast<std::uint16_t>(node_id(i))) {
    ack_from(i, *tag, view->frag, tag->prev_custodian);
  }
  if (!rx_frags_.insert(key).second) {
    ++duplicates_;
    return;
  }
  ++fragments_delivered_;
  if (rx_complete_.count(tag->bundle_id) != 0) return;
  RxBundle& rx = rx_pending_[tag->bundle_id];
  if (rx.total == 0) rx.total = view->frag.total;
  rx.got.insert(view->frag.index);
  if (rx.total != 0 && rx.got.size() >= rx.total) {
    rx_complete_.insert(tag->bundle_id);
    rx_pending_.erase(tag->bundle_id);
    if (auto it = bundle_times_.find(tag->bundle_id); it != bundle_times_.end()) {
      it->second.second = now;
    }
  }
}

void MeshCustodyFleet::ack_from(std::size_t i, CustodyTag tag, FragInfo frag,
                                std::uint32_t prev_custodian) {
  const auto ack = make_custody_ack_header(
      mesh::addr_of(prev_custodian), mesh::addr_of(node_id(i)), tag, frag,
      config_.custody_key, mesh_.router(i).env().mac_kind);
  if (!ack) return;
  ++acks_sent_;
  // Deferred: never re-enter a router's process path from inside its own
  // verdict handling. The ACK rides the routed fabric like any packet.
  mesh_.loop().schedule_in(0, [this, i, bytes = ack->serialize()]() mutable {
    mesh_.router(i).inject(bytes, mesh_.local_face_of(i));
  });
}

void MeshCustodyFleet::arm_retry(std::size_t i, std::uint64_t key) {
  CustodyStore::Entry* entry = nodes_[i].store->find(key);
  if (entry == nullptr) return;
  const std::uint64_t delay = config_.retry.timeout_for(entry->attempts) +
                              nodes_[i].retx.gap_for(entry->packet.size());
  const std::uint32_t expected = entry->attempts;
  entry->timer_id = mesh_.loop().schedule_in(
      delay, [this, i, key, expected] { on_retry(i, key, expected); });
}

void MeshCustodyFleet::on_retry(std::size_t i, std::uint64_t key,
                                std::uint32_t expected_attempts) {
  CustodyStore::Entry* entry = nodes_[i].store->find(key);
  if (entry == nullptr || entry->attempts != expected_attempts) return;
  if (!nodes_[i].store->charge_retransmission(key)) {
    entry->timer_id = 0;  // exhausted: go quiet, stay evictable
    return;
  }
  mesh_.router(i).transmit(entry->egress, entry->packet);
  arm_retry(i, key);
}

bool MeshCustodyFleet::stores_empty() const {
  for (const auto& n : nodes_) {
    if (n.store->bundles() != 0) return false;
  }
  return true;
}

CustodyStoreStats MeshCustodyFleet::aggregate_store_stats() const {
  CustodyStoreStats total;
  for (const auto& n : nodes_) {
    const CustodyStoreStats& s = n.store->stats();
    total.commits += s.commits;
    total.duplicate_commits += s.duplicate_commits;
    total.refused_full += s.refused_full;
    total.released += s.released;
    total.evicted += s.evicted;
    total.retransmissions += s.retransmissions;
    total.duplicate_acks += s.duplicate_acks;
    total.bytes_high_water += s.bytes_high_water;
    total.bundles_high_water += s.bundles_high_water;
  }
  return total;
}

std::size_t MeshCustodyFleet::store_bytes_high_water() const {
  std::size_t high = 0;
  for (const auto& n : nodes_) {
    high = std::max(high, n.store->stats().bytes_high_water);
  }
  return high;
}

std::pair<std::uint64_t, std::uint64_t> MeshCustodyFleet::bundle_times(
    std::uint32_t bundle) const {
  const auto it = bundle_times_.find(bundle);
  return it == bundle_times_.end() ? std::pair<std::uint64_t, std::uint64_t>{0, 0}
                                   : it->second;
}

void MeshCustodyFleet::write_stats(telemetry::StatsWriter& w) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].store->write_stats(w, node_id(i));
  }
  w.counter("dip_dtn_fragments_delivered_total", {}, fragments_delivered_);
  w.counter("dip_dtn_duplicate_fragments_total", {}, duplicates_);
  w.counter("dip_dtn_acks_total", {}, acks_sent_);
  w.counter("dip_dtn_custody_drops_total", {}, custody_drops_);
  w.gauge("dip_dtn_bundles_completed", {}, static_cast<double>(rx_complete_.size()));
}

}  // namespace dip::dtn
