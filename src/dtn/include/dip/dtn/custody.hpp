// Disruption tolerance as Field Operations (docs/DTN.md).
//
// §2.1's thesis — new network-layer behaviors compose from shared L3 core
// functions — applied to DTN-style custody transfer: a bundle asks the
// network to *hold* it across outages instead of best-effort dropping it.
// Two FNs realize it:
//
//   F_custody (key 17, 32-byte field, byte-aligned):
//     [0]      flags   : bit0 = custody requested, bit1 = custody ACK
//     [1]      chain   : number of custody accepts so far
//     [2,4)    prev    : low 16 bits of the *previous* custodian's node id —
//                        written on accept, so any observer of the rewritten
//                        tag knows whom to ACK (mesh taps see post-rewrite
//                        bytes only)
//     [4,8)    bundle  : bundle id
//     [8,12)   custodian : node id of the current custodian
//     [12,16)  digest  : running FNV-mix over the custodian chain
//     [16,32)  MAC     : 2EM-CMAC over bytes [0,16) under the overlay key —
//                        a forged custody chain (fake ACKs, hijacked
//                        custodianship) fails verification at every
//                        custody-capable hop
//
//   F_frag (key 18, 8-byte field): fragment index/total + bundle id, carried
//     for the receiving host's store-and-forward reassembly; routers only
//     bounds-check it (index < total, total > 0).
//
// A custody-capable router (RouterEnv::accept_custody) that sees a valid
// requested tag *accepts*: it stamps itself as custodian, extends the chain
// digest, re-MACs, and — at the node-wrapper layer — commits the forwarded
// bytes into its CustodyStore and ACKs the previous custodian through the
// §2.4 error-notify seam (back out the ingress face). Non-DTN routers skip
// the FN untouched (requires_full_path = false): custody is an overlay over
// whichever nodes opt in.
#pragma once

#include <cstdint>
#include <optional>

#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/core/registry.hpp"
#include "dip/crypto/mac.hpp"
#include "dip/fib/address.hpp"

namespace dip::dtn {

inline constexpr std::size_t kCustodyTagBytes = 32;
inline constexpr std::size_t kFragBytes = 8;

inline constexpr std::uint8_t kCustodyRequest = 0x01;  ///< take custody of me
inline constexpr std::uint8_t kCustodyAck = 0x02;      ///< custody-transfer ACK

struct CustodyTag {
  std::uint8_t flags = 0;
  std::uint8_t chain_len = 0;
  std::uint16_t prev_custodian = 0;  ///< low 16 bits; stamped on accept
  std::uint32_t bundle_id = 0;
  std::uint32_t custodian = 0;      ///< node id; the sender host seeds it
  std::uint32_t chain_digest = 0;
  crypto::Block mac{};

  [[nodiscard]] bool requested() const noexcept { return (flags & kCustodyRequest) != 0; }
  [[nodiscard]] bool is_ack() const noexcept { return (flags & kCustodyAck) != 0; }

  [[nodiscard]] static CustodyTag read(std::span<const std::uint8_t> field) noexcept;
  void write(std::span<std::uint8_t> field) const noexcept;

  /// MAC over the flags/chain/bundle/custodian/digest bytes under `key`.
  [[nodiscard]] static crypto::Block compute_mac(std::span<const std::uint8_t> field,
                                                 const crypto::Block& key,
                                                 crypto::MacKind kind);
};

/// One FNV-1a round folding `node` into the custody-chain digest.
[[nodiscard]] constexpr std::uint32_t chain_mix(std::uint32_t digest,
                                                std::uint32_t node) noexcept {
  return (digest ^ node) * 0x01000193u;
}

struct FragInfo {
  std::uint16_t index = 0;
  std::uint16_t total = 1;
  std::uint32_t bundle_id = 0;

  [[nodiscard]] static FragInfo read(std::span<const std::uint8_t> field) noexcept;
  void write(std::span<std::uint8_t> field) const noexcept;
};

/// Store key for one fragment: bundle id in the high half, index low.
[[nodiscard]] constexpr std::uint64_t frag_key(std::uint32_t bundle,
                                               std::uint16_t index) noexcept {
  return (static_cast<std::uint64_t>(bundle) << 32) | index;
}

/// F_custody (key 17): verify the chain MAC and, on a custody-accepting
/// node, accept a requested tag in place. Deterministic (no RNG, no module
/// state) so all engines — including the sharded pool — rewrite identically.
class CustodyOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override {
    return core::OpKey::kCustody;
  }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 5; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// F_frag (key 18): bounds-check the fragment metadata; reassembly is host
/// work.
class BundleFragOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override {
    return core::OpKey::kBundleFrag;
  }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 1; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// Register CustodyOp + BundleFragOp (the DTN half of §4.1's pre-written
/// module table).
void add_custody_modules(core::OpRegistry& registry);

/// Append a MACed F_custody field to a header under construction.
void add_custody_fn(core::HeaderBuilder& builder, const CustodyTag& tag,
                    const crypto::Block& key,
                    crypto::MacKind kind = crypto::MacKind::kEm2);

/// Append an F_frag field.
void add_frag_fn(core::HeaderBuilder& builder, const FragInfo& frag);

/// The dip32+custody composition (docs/DTN.md, PROTOCOLS.md): DIP-32
/// forwarding plus custody + fragment FNs. The match FN leads so the
/// RouterPool's flow key — the first router FN's field — shards a bundle's
/// fragments onto one worker by destination. Wire size: 78 bytes.
[[nodiscard]] bytes::Result<core::DipHeader> make_dip32_custody_header(
    const fib::Ipv4Addr& dst, const fib::Ipv4Addr& src, const CustodyTag& tag,
    const FragInfo& frag, const crypto::Block& key,
    crypto::MacKind kind = crypto::MacKind::kEm2, std::uint8_t hop_limit = 64);

/// Build a custody-ACK packet for fragment `frag` of `tag`'s bundle,
/// addressed to `dst` (the previous custodian) from `acker`.
[[nodiscard]] bytes::Result<core::DipHeader> make_custody_ack_header(
    const fib::Ipv4Addr& dst, const fib::Ipv4Addr& src, const CustodyTag& accepted,
    const FragInfo& frag, const crypto::Block& key,
    crypto::MacKind kind = crypto::MacKind::kEm2);

/// Locate the F_custody / F_frag fields of a parsed header (first match).
[[nodiscard]] std::optional<bytes::BitRange> find_custody_field(
    std::span<const core::FnTriple> fns) noexcept;
[[nodiscard]] std::optional<bytes::BitRange> find_frag_field(
    std::span<const core::FnTriple> fns) noexcept;

/// Verify and read a custody tag; nullopt if short or the MAC is bad.
[[nodiscard]] std::optional<CustodyTag> verify_custody_tag(
    std::span<const std::uint8_t> field, const crypto::Block& key,
    crypto::MacKind kind = crypto::MacKind::kEm2);

/// Read the kMatch32 destination of a parsed header, if present (ACK
/// dispatch: "is this custody traffic addressed to me?").
[[nodiscard]] std::optional<fib::Ipv4Addr> dip32_destination(
    const core::DipHeader& header) noexcept;

}  // namespace dip::dtn
