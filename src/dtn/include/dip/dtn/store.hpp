// CustodyStore — the bounded store-and-forward buffer behind F_custody.
//
// One store per custody-capable node, hung off RouterEnv (type-erased
// shared_ptr; core stays dtn-free). Committed entries hold the forwarded
// packet bytes and the egress they left through, so a retry timer can
// retransmit them verbatim until the next custodian ACKs.
//
// Capacity discipline (the disruption-tolerance contract):
//   * byte- and bundle-capped; commits that would exceed either cap first
//     evict *exhausted* entries (retry budget spent) oldest-first — a
//     deterministic order — and are REFUSED if live custody would have to
//     be dropped. A refused bundle was never committed, so "100% of
//     committed bundles recover" survives store pressure: the previous
//     custodian keeps retrying until space frees up.
//   * release() on a custody ACK; duplicate ACKs (chaos links duplicate
//     packets) are counted and ignored.
//   * retry bookkeeping (attempts, timer ids) lives in the entry; the
//     actual timers belong to the owning node wrapper's event loop
//     (netsim::EventLoop or mesh::MeshEventLoop).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "dip/telemetry/exposition.hpp"

namespace dip::dtn {

struct CustodyStoreStats {
  std::uint64_t commits = 0;
  std::uint64_t duplicate_commits = 0;  ///< re-offered fragments already held
  std::uint64_t refused_full = 0;       ///< admission refused at capacity
  std::uint64_t released = 0;           ///< ACKed and erased
  std::uint64_t evicted = 0;            ///< exhausted entries evicted/abandoned
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicate_acks = 0;
  std::size_t bytes_high_water = 0;
  std::size_t bundles_high_water = 0;
};

class CustodyStore {
 public:
  struct Limits {
    std::size_t max_bundles = 128;
    std::size_t max_bytes = 256 * 1024;
    std::uint32_t max_retries = 16;  ///< retransmissions before exhaustion
  };

  struct Entry {
    std::uint64_t key = 0;  ///< frag_key(bundle_id, index)
    std::vector<std::uint8_t> packet;  ///< forwarded bytes, retransmitted verbatim
    std::uint32_t egress = 0;          ///< face the packet left through
    std::uint32_t attempts = 0;        ///< retransmissions so far
    std::uint64_t committed_at = 0;
    std::uint64_t timer_id = 0;  ///< owner-managed retry timer handle
    std::uint64_t ingress_hint = 0;  ///< owner use (ACK path, diagnostics)
  };

  CustodyStore() : CustodyStore(Limits{}) {}
  explicit CustodyStore(Limits limits) : limits_(limits) {}

  /// Take custody of `packet`. Returns the live entry, or nullptr when the
  /// store refused admission (caps) — the caller must then NOT accept
  /// custody semantics (no ACK upstream). Re-committing a held key is a
  /// duplicate: counted, existing entry returned, `duplicate` set.
  Entry* commit(std::uint64_t key, std::span<const std::uint8_t> packet,
                std::uint32_t egress, std::uint64_t now, bool* duplicate = nullptr);

  [[nodiscard]] Entry* find(std::uint64_t key);

  /// ACK received: erase the entry. False (and a duplicate_acks count) when
  /// the key is unknown — already released by an earlier copy of the ACK.
  bool release(std::uint64_t key);

  /// One more retransmission charged against `key`'s budget. Returns false
  /// when the entry is exhausted (attempts >= max_retries) — the owner
  /// stops arming timers; the entry stays evictable-under-pressure.
  bool charge_retransmission(std::uint64_t key);

  /// Drop an entry without an ACK (owner gave up). Counted as evicted.
  bool abandon(std::uint64_t key);

  [[nodiscard]] std::size_t bundles() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] const Limits& limits() const noexcept { return limits_; }
  [[nodiscard]] const CustodyStoreStats& stats() const noexcept { return stats_; }

  /// `dip_dtn_*` series for this store (catalogue in docs/DTN.md), labelled
  /// node="<node>".
  void write_stats(telemetry::StatsWriter& w, std::uint32_t node) const;

 private:
  /// Evict exhausted entries (oldest commit first) until the caps admit
  /// `incoming` more bytes + one more bundle, or nothing exhausted remains.
  void make_room(std::size_t incoming);

  Limits limits_;
  std::map<std::uint64_t, Entry> entries_;  ///< ordered: deterministic sweeps
  std::size_t bytes_ = 0;
  CustodyStoreStats stats_;
};

}  // namespace dip::dtn
