// CustodyRouterNode — a custody-capable DIP router in the simulator.
//
// netsim::DipRouterNode's verdict handling plus the store-and-forward
// wrapper around the F_custody op module:
//
//   * pre-process: custody ACKs addressed to this node release the store
//     entry they name (the retry timer finds the entry gone and stops);
//   * post-process: when the op accepted custody (the tag's custodian field
//     now names this node), the *forwarded* bytes are committed into the
//     bounded CustodyStore, a retry timer is armed on the simulation loop,
//     and a custody ACK is returned to the previous custodian back out the
//     ingress face — the same reverse-path seam §2.4's FN-unsupported
//     notifications use;
//   * store refusal (caps) drops the packet instead of forwarding it:
//     custody was never taken, no ACK is sent, and the previous custodian
//     keeps retrying — which is what makes "100% of committed bundles
//     recover" robust under store pressure;
//   * retransmissions are paced by RetxScheduler (qos::EdgeLabeler): the
//     recovery band drains at a fraction of the observed first-transmission
//     rate, never starving foreground traffic.
#pragma once

#include <array>
#include <memory>

#include "dip/core/registry.hpp"
#include "dip/core/router.hpp"
#include "dip/dtn/custody.hpp"
#include "dip/dtn/retx_sched.hpp"
#include "dip/dtn/store.hpp"
#include "dip/host/retry.hpp"
#include "dip/netsim/network.hpp"

namespace dip::dtn {

/// The DTN overlay's address plan: node id -> routable /24 host address
/// (10.<node>.1) — the same formula the mesh uses, so custody ACKs route in
/// either harness once 10.<node>/24 is in the FIB.
[[nodiscard]] fib::Ipv4Addr custody_addr(std::uint32_t node) noexcept;
/// The /24 prefix covering custody_addr(node).
[[nodiscard]] fib::Prefix<32> custody_prefix(std::uint32_t node) noexcept;

class CustodyRouterNode final : public netsim::Node {
 public:
  struct Config {
    CustodyStore::Limits limits{};
    host::RetryPolicy retry{};  ///< custody retransmission schedule
    RetxScheduler::Config retx{};
  };

  /// `env` should carry custody_key/accept_custody and the node's identity;
  /// the node installs its CustodyStore into env.custody_store.
  CustodyRouterNode(core::RouterEnv env, std::shared_ptr<const core::OpRegistry> registry,
                    Config config);
  CustodyRouterNode(core::RouterEnv env, std::shared_ptr<const core::OpRegistry> registry)
      : CustodyRouterNode(std::move(env), std::move(registry), Config{}) {}

  void on_packet(netsim::FaceId face, netsim::PacketBytes packet, SimTime now) override;

  [[nodiscard]] core::Router& router() noexcept { return router_; }
  [[nodiscard]] core::RouterEnv& env() noexcept { return router_.env(); }
  [[nodiscard]] const CustodyStore& store() const noexcept { return *store_; }
  [[nodiscard]] fib::Ipv4Addr address() const noexcept {
    return custody_addr(router_.env().node_id);
  }

  [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }
  [[nodiscard]] std::uint64_t custody_drops() const noexcept { return custody_drops_; }
  [[nodiscard]] std::uint64_t drops(core::DropReason reason) const {
    return drop_counts_[static_cast<std::size_t>(reason) % drop_counts_.size()];
  }

  /// `dip_dtn_*` store series plus the router counters, node-labelled.
  void write_stats(telemetry::StatsWriter& w) const;

 private:
  void apply_verdict(netsim::FaceId face, netsim::PacketBytes& packet,
                     const core::ProcessResult& result);
  void handle_ack(const CustodyTag& tag, const FragInfo& frag);
  void send_ack(const CustodyTag& accepted, const FragInfo& frag,
                std::uint32_t prev_custodian, netsim::FaceId ingress);
  void arm_retry(std::uint64_t key);
  void on_retry(std::uint64_t key, std::uint32_t expected_attempts);

  std::shared_ptr<const core::OpRegistry> registry_;
  Config config_;
  std::shared_ptr<CustodyStore> store_;  ///< built before router_: env hooks it
  RetxScheduler retx_;
  core::Router router_;
  std::array<std::uint64_t, 16> drop_counts_{};
  std::uint64_t acks_sent_ = 0;
  std::uint64_t custody_drops_ = 0;  ///< refused admissions + duplicate copies
};

}  // namespace dip::dtn
