// MeshCustodyFleet — the custody overlay over a scale-out UDP mesh.
//
// The torus-soak counterpart of CustodyRouterNode: every MeshRouter in a
// MeshNet becomes a custody-capable node. The fleet
//   * extends the module registry with CustodyOp/BundleFragOp (pass
//     make_registry() into MeshConfig.registry before building the mesh);
//   * hangs one bounded CustodyStore off each router's RouterEnv;
//   * observes forwarded bundles through MeshRouter's ForwardTap: a
//     forwarded packet whose rewritten tag names this router as custodian is
//     committed to the store, a retry timer is armed on the MeshEventLoop,
//     and a custody ACK is routed to the previous custodian (the prev field
//     of the rewritten tag);
//   * terminates bundles at their destination router via the MeshNet
//     delivery handler: fragments are deduplicated, ACKed, and reassembled;
//     custody ACKs addressed to this router release its store.
//
// Custody hops ride the mesh's own routed fabric — ACKs are ordinary
// dip32+custody packets forwarded by SPF routes — so blackouts, failed
// links, and reroutes exercise exactly the wire path the ledger audits.
// Retransmissions replay stored bytes through MeshRouter::transmit (the
// ledgered egress path) paced by the DPS-priced RetxScheduler.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dip/dtn/custody.hpp"
#include "dip/dtn/retx_sched.hpp"
#include "dip/dtn/store.hpp"
#include "dip/host/retry.hpp"
#include "dip/mesh/mesh_net.hpp"

namespace dip::dtn {

class MeshCustodyFleet {
 public:
  struct Config {
    crypto::Block custody_key{};
    CustodyStore::Limits limits{};
    host::RetryPolicy retry{};
    RetxScheduler::Config retx{};
    std::size_t frag_payload = 256;  ///< payload bytes per fragment
  };

  /// The default module stack plus the custody modules — hand this to
  /// MeshConfig.registry before constructing the MeshNet.
  [[nodiscard]] static std::shared_ptr<core::OpRegistry> make_registry();

  /// Attaches to every router already in `mesh` (build the topology first)
  /// and installs itself as the mesh delivery handler.
  MeshCustodyFleet(mesh::MeshNet& mesh, Config config);
  explicit MeshCustodyFleet(mesh::MeshNet& mesh)
      : MeshCustodyFleet(mesh, Config{}) {}

  /// Fragment `payload` and inject it at router `src` addressed to router
  /// `dst` (mesh::addr_of identities). The source router is the initial
  /// custodian: its store holds every fragment until the next custodian (or
  /// the destination) ACKs. Returns the bundle id.
  std::uint32_t send(std::size_t src, std::size_t dst,
                     std::span<const std::uint8_t> payload);

  // ---- receiver-side status ---------------------------------------------
  [[nodiscard]] bool bundle_complete(std::uint32_t bundle) const {
    return rx_complete_.count(bundle) != 0;
  }
  [[nodiscard]] std::size_t bundles_sent() const noexcept { return bundle_times_.size(); }
  [[nodiscard]] std::size_t bundles_completed() const noexcept { return rx_complete_.size(); }
  [[nodiscard]] std::uint64_t fragments_delivered() const noexcept { return fragments_delivered_; }
  [[nodiscard]] std::uint64_t duplicate_fragments() const noexcept { return duplicates_; }
  [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }
  [[nodiscard]] std::uint64_t custody_drops() const noexcept { return custody_drops_; }

  /// (send time, completion time) in loop-clock ns; completion 0 until the
  /// last fragment assembled. Recovery latency = completed - sent.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> bundle_times(
      std::uint32_t bundle) const;

  // ---- custody-store status ---------------------------------------------
  [[nodiscard]] const CustodyStore& store(std::size_t i) const { return *nodes_.at(i).store; }
  /// True when every store drained — each committed fragment was ACKed by
  /// the next custodian or the destination (the 100%-recovery audit).
  [[nodiscard]] bool stores_empty() const;
  [[nodiscard]] CustodyStoreStats aggregate_store_stats() const;
  /// Store high-water across the fleet, in bytes.
  [[nodiscard]] std::size_t store_bytes_high_water() const;

  /// Fleet-aggregate dip_dtn_* series plus each node's store series.
  void write_stats(telemetry::StatsWriter& w) const;

 private:
  struct NodeState {
    std::shared_ptr<CustodyStore> store;
    RetxScheduler retx;
  };
  struct RxBundle {
    std::uint16_t total = 0;
    std::set<std::uint16_t> got;
  };

  [[nodiscard]] std::uint32_t node_id(std::size_t i) const noexcept {
    return static_cast<std::uint32_t>(i + 1);  // MeshNet's id = index + 1
  }

  void on_forward(std::size_t i, mesh::FaceId ingress, mesh::FaceId egress,
                  std::span<const std::uint8_t> packet);
  void on_delivery(std::size_t i, std::span<const std::uint8_t> packet,
                   std::uint64_t now);
  /// Route a custody ACK for (`tag`, `frag`) from router `i` to node
  /// `prev_custodian`, via a deferred inject (never re-enters the router
  /// from inside its own verdict path).
  void ack_from(std::size_t i, CustodyTag tag, FragInfo frag,
                std::uint32_t prev_custodian);
  void arm_retry(std::size_t i, std::uint64_t key);
  void on_retry(std::size_t i, std::uint64_t key, std::uint32_t expected_attempts);

  mesh::MeshNet& mesh_;
  Config config_;
  std::vector<NodeState> nodes_;
  std::map<std::uint32_t, RxBundle> rx_pending_;
  std::set<std::uint32_t> rx_complete_;
  std::set<std::uint64_t> rx_frags_;  ///< delivered fragment keys (dedup)
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> bundle_times_;
  std::uint32_t next_bundle_ = 1;
  std::uint64_t fragments_delivered_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t custody_drops_ = 0;  ///< store refusals under pressure
};

}  // namespace dip::dtn
