// Host-side bundle transfer: BundleSender / BundleReceiver.
//
// The host half of docs/DTN.md. A bundle is an application payload cut into
// fragments; each fragment travels as one dip32+custody packet
// (make_dip32_custody_header) whose payload is the fragment bytes. The
// sender is the bundle's *initial custodian*: every fragment is driven by a
// host::ReliableSender until the first custody-capable router ACKs — from
// then on recovery is the custodians' job, hop by hop, and the sender can
// forget the fragment. The receiver verifies the chain MAC, ACKs the last
// custodian (completing the final custody transfer), deduplicates, and
// reassembles.
//
// Reassembly policy mirrors the router's ValidationMode split:
//   * strict  — a fragment whose `total` disagrees with the bundle's
//     established geometry poisons the whole bundle (it can never assemble
//     coherently; fail loudly);
//   * lenient — the conflicting fragment alone is quarantined (counted,
//     ignored, NOT ACKed) and the bundle keeps assembling from well-formed
//     fragments — the custodian retries, and a clean copy completes it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dip/dtn/custody.hpp"
#include "dip/host/retry.hpp"

namespace dip::dtn {

class BundleSender {
 public:
  struct Config {
    /// Source address; the receiver's final custody ACK is addressed to
    /// custody_addr(node_id), so pick self = custody_addr(node_id) (and
    /// route custody_prefix(node_id) back to this host) for end-to-end ACKs.
    fib::Ipv4Addr self{};
    fib::Ipv4Addr dst{};
    std::uint32_t node_id = 0;  ///< seeds the custody chain as first custodian
    crypto::Block custody_key{};
    crypto::MacKind mac = crypto::MacKind::kEm2;
    std::size_t frag_payload = 512;  ///< payload bytes per fragment
    std::uint8_t hop_limit = 64;
    host::RetryPolicy retry{};
  };

  /// `node` must outlive the sender and be attached to a network. Hook the
  /// node's receiver to on_packet (directly or via a demux that also feeds
  /// other consumers).
  BundleSender(netsim::HostNode& node, netsim::FaceId face, Config config)
      : node_(node), face_(face), config_(config) {}

  /// Fragment `payload` and launch every fragment under retry. Returns the
  /// bundle id.
  std::uint32_t send(std::span<const std::uint8_t> payload);

  /// Feed an incoming packet; returns true when it was a custody ACK for one
  /// of our in-flight fragments (consumed), false otherwise.
  bool on_packet(std::span<const std::uint8_t> packet);

  /// Fragments still awaiting their first custody transfer.
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_.size(); }
  /// Fragments the network has taken custody of.
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }
  /// Fragments whose retry budget ran out before any custody ACK.
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept;

 private:
  struct Flight {
    std::unique_ptr<host::ReliableSender> sender;
    host::ReliableSender::Epoch epoch = 0;
    std::vector<std::uint8_t> payload;
    FragInfo frag;
  };

  [[nodiscard]] netsim::PacketBytes build_packet(
      const FragInfo& frag, std::span<const std::uint8_t> payload) const;

  netsim::HostNode& node_;
  netsim::FaceId face_;
  Config config_;
  std::map<std::uint64_t, Flight> in_flight_;  ///< frag_key -> flight
  /// Retired senders are kept alive: their armed loop timers capture the
  /// sender object and must find it valid when they fire.
  std::vector<std::unique_ptr<host::ReliableSender>> retired_;
  std::uint32_t next_bundle_ = 1;
  std::uint64_t committed_ = 0;
  std::uint64_t failures_ = 0;
};

class BundleReceiver {
 public:
  struct Config {
    fib::Ipv4Addr self{};
    crypto::Block custody_key{};
    crypto::MacKind mac = crypto::MacKind::kEm2;
    bool strict = true;  ///< geometry-conflict policy (header comment)
  };

  /// Called once per completed bundle with the reassembled payload.
  using BundleHandler =
      std::function<void(std::uint32_t bundle_id, std::vector<std::uint8_t> payload)>;

  BundleReceiver(netsim::HostNode& node, netsim::FaceId face, Config config,
                 BundleHandler handler)
      : node_(node), face_(face), config_(config), handler_(std::move(handler)) {}

  /// Feed an incoming packet; returns true when it was a custody-tagged
  /// fragment addressed to us (consumed — ACKed/deduped/assembled).
  bool on_packet(std::span<const std::uint8_t> packet);

  [[nodiscard]] std::uint64_t bundles_completed() const noexcept { return completed_.size(); }
  [[nodiscard]] std::uint64_t fragments_received() const noexcept { return fragments_; }
  [[nodiscard]] std::uint64_t duplicate_fragments() const noexcept { return duplicates_; }
  /// Bad MAC, malformed geometry, or (lenient) conflicting fragments.
  [[nodiscard]] std::uint64_t rejected_fragments() const noexcept { return rejected_; }
  /// Strict mode: bundles abandoned on a geometry conflict.
  [[nodiscard]] std::uint64_t poisoned_bundles() const noexcept { return poisoned_; }

 private:
  struct Pending {
    std::uint16_t total = 0;
    std::map<std::uint16_t, std::vector<std::uint8_t>> frags;
    bool poisoned = false;
  };

  void send_ack(const CustodyTag& tag, const FragInfo& frag);

  netsim::HostNode& node_;
  netsim::FaceId face_;
  Config config_;
  BundleHandler handler_;
  std::map<std::uint32_t, Pending> pending_;
  std::set<std::uint32_t> completed_;
  std::uint64_t fragments_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t poisoned_ = 0;
};

}  // namespace dip::dtn
