// RetxScheduler — DPS-priced pacing for custody retransmissions.
//
// The DTN retry path is exactly where the dormant src/qos machinery earns
// its keep: a custodian that wakes up after a blackout should NOT blast its
// whole store into the link first-transmission traffic is using. The
// scheduler reuses the CSFQ edge primitives (qos::EdgeLabeler) to measure
// the node's first-transmission rate as one "flow", then paces
// retransmissions at a configured *share* of that rate — custody drains at
// lower priority, exactly the DPS labeling discipline applied to the
// recovery band instead of a wire field. An idle link (primary rate decays
// to ~0) falls back to the max-interval floor, so recovery always makes
// progress and the 100%-recovery contract is a question of time, not
// starvation.
#pragma once

#include <cstdint>

#include "dip/bytes/time.hpp"
#include "dip/qos/dps.hpp"

namespace dip::dtn {

class RetxScheduler {
 public:
  struct Config {
    /// Fraction of the observed first-transmission rate granted to the
    /// retransmission band.
    double share = 0.25;
    /// Pacing clamp: a retransmission is never delayed by less/more than
    /// this, whatever the rates say.
    SimDuration min_gap = 1 * kMillisecond;
    SimDuration max_gap = 50 * kMillisecond;
    qos::EdgeLabeler::Config labeler{};
  };

  RetxScheduler() : RetxScheduler(Config{}) {}
  explicit RetxScheduler(const Config& config) : config_(config), labeler_(config.labeler) {}

  /// Record a first-transmission of `bytes` (the high-priority band).
  void on_primary(std::size_t bytes, SimTime now) {
    primary_rate_ = labeler_.label(kPrimaryFlow, bytes, now);
  }

  /// Extra delay to impose before the next retransmission of `bytes` may
  /// leave: bytes / (share * primary_rate), clamped to [min_gap, max_gap].
  /// Heavier foreground traffic → longer gaps → lower effective priority.
  [[nodiscard]] SimDuration gap_for(std::size_t bytes) const noexcept {
    const double budget =
        config_.share * static_cast<double>(primary_rate_);  // bytes/sec
    if (budget <= 0) return config_.max_gap;
    const double gap_ns = static_cast<double>(bytes) *
                          static_cast<double>(kSecond) / budget;
    if (gap_ns >= static_cast<double>(config_.max_gap)) return config_.max_gap;
    const auto gap = static_cast<SimDuration>(gap_ns);
    return gap < config_.min_gap ? config_.min_gap : gap;
  }

  [[nodiscard]] std::uint32_t primary_rate() const noexcept { return primary_rate_; }

 private:
  static constexpr std::uint32_t kPrimaryFlow = 1;

  Config config_;
  qos::EdgeLabeler labeler_;
  std::uint32_t primary_rate_ = 0;
};

}  // namespace dip::dtn
