// Pending Interest Table (PIT) — the stateful half of NDN forwarding.
//
// F_PIT (Table 1, key 5): on an interest, record the arrival face under the
// content name; on data, consume the entry and return the recorded faces
// (match hit) or report a miss so the router can discard the packet (§3).
//
// Keys are 64-bit name codes (the data plane carries a 32-bit compressed
// name, § 4.1; 64 bits leaves headroom for wider name fields). Entries
// expire after an interest lifetime; expiry is amortized via a lazy min-heap.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "dip/bytes/time.hpp"

namespace dip::pit {

/// Ingress/egress face identifier (matches fib::NextHop width).
using FaceId = std::uint32_t;

/// Result of recording an interest.
enum class InterestResult : std::uint8_t {
  kCreated,     ///< new PIT entry; forward the interest upstream
  kAggregated,  ///< entry existed; interest suppressed (face recorded)
  kDuplicate,   ///< same face already pending; possible loop — drop
};

class Pit {
 public:
  struct Config {
    SimDuration entry_lifetime = 4 * kSecond;  ///< NDN default interest lifetime
    std::size_t max_entries = 1 << 20;         ///< state-exhaustion guard (§2.4)
  };

  Pit() : Pit(Config{}) {}
  explicit Pit(const Config& config) : config_(config) {}

  /// Record an interest for `name_code` arriving on `face` at `now`.
  /// Returns kCreated/kAggregated/kDuplicate, or nullopt if the table is
  /// full (caller should drop — the §2.4 hard state limit).
  std::optional<InterestResult> record_interest(std::uint64_t name_code, FaceId face,
                                                SimTime now);

  /// Consume the entry for arriving data. Returns the faces to forward the
  /// data to, or an empty vector on PIT miss (router discards the packet).
  std::vector<FaceId> match_data(std::uint64_t name_code, SimTime now);

  /// True iff an unexpired entry exists (non-consuming).
  [[nodiscard]] bool has_entry(std::uint64_t name_code, SimTime now) const;

  /// Drop all entries that expired at or before `now`; returns how many.
  std::size_t expire(SimTime now);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::vector<FaceId> in_faces;
    SimTime expiry = 0;
  };

  struct HeapItem {
    SimTime expiry;
    std::uint64_t name_code;
    friend bool operator>(const HeapItem& a, const HeapItem& b) noexcept {
      return a.expiry > b.expiry;
    }
  };

  Config config_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> expiry_heap_;
};

}  // namespace dip::pit
