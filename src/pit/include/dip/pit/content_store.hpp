// Content Store — LRU cache of named data.
//
// Paper footnote 2: the prototype router has no cache, but "the FIB matching
// module can be slightly modified to first match the local content store and
// then match the FIB". This module is that extension: a bounded LRU keyed by
// name code, consulted by F_FIB before the FIB proper when caching is
// enabled on a node.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace dip::pit {

class ContentStore {
 public:
  explicit ContentStore(std::size_t capacity) : capacity_(capacity) {}

  /// Cache `payload` under `name_code`, evicting the LRU entry if full.
  /// A capacity of zero disables the store.
  void insert(std::uint64_t name_code, std::span<const std::uint8_t> payload);

  /// Look up and refresh recency. Returns a copy of the payload.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> lookup(std::uint64_t name_code);

  /// Non-refreshing probe.
  [[nodiscard]] bool contains(std::uint64_t name_code) const {
    return map_.contains(name_code);
  }

  /// Drop one entry (used by the §2.4 poisoning defense to purge bad data).
  bool erase(std::uint64_t name_code);

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Cache effectiveness counters (used by bench A7 and examples).
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Item {
    std::uint64_t name_code;
    std::vector<std::uint8_t> payload;
  };

  std::size_t capacity_;
  std::list<Item> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Item>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dip::pit
