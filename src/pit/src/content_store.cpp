#include "dip/pit/content_store.hpp"

namespace dip::pit {

void ContentStore::insert(std::uint64_t name_code, std::span<const std::uint8_t> payload) {
  if (capacity_ == 0) return;
  if (const auto it = map_.find(name_code); it != map_.end()) {
    it->second->payload.assign(payload.begin(), payload.end());
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().name_code);
    lru_.pop_back();
  }
  lru_.push_front(Item{name_code, {payload.begin(), payload.end()}});
  map_.emplace(name_code, lru_.begin());
}

std::optional<std::vector<std::uint8_t>> ContentStore::lookup(std::uint64_t name_code) {
  const auto it = map_.find(name_code);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

bool ContentStore::erase(std::uint64_t name_code) {
  const auto it = map_.find(name_code);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void ContentStore::clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace dip::pit
