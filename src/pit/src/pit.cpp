#include "dip/pit/pit.hpp"

#include <algorithm>

namespace dip::pit {

std::optional<InterestResult> Pit::record_interest(std::uint64_t name_code, FaceId face,
                                                   SimTime now) {
  auto it = entries_.find(name_code);
  if (it != entries_.end() && it->second.expiry <= now) {
    // Stale entry: treat as absent.
    entries_.erase(it);
    it = entries_.end();
  }

  if (it == entries_.end()) {
    if (entries_.size() >= config_.max_entries) {
      // §2.4: hard per-node state limit; refuse rather than grow unbounded.
      expire(now);
      if (entries_.size() >= config_.max_entries) return std::nullopt;
    }
    Entry entry;
    entry.in_faces.push_back(face);
    entry.expiry = now + config_.entry_lifetime;
    entries_.emplace(name_code, std::move(entry));
    expiry_heap_.push({now + config_.entry_lifetime, name_code});
    return InterestResult::kCreated;
  }

  Entry& entry = it->second;
  if (std::find(entry.in_faces.begin(), entry.in_faces.end(), face) !=
      entry.in_faces.end()) {
    return InterestResult::kDuplicate;
  }
  entry.in_faces.push_back(face);
  // Refresh lifetime: any aggregated interest keeps the entry alive.
  entry.expiry = now + config_.entry_lifetime;
  expiry_heap_.push({entry.expiry, name_code});
  return InterestResult::kAggregated;
}

std::vector<FaceId> Pit::match_data(std::uint64_t name_code, SimTime now) {
  auto it = entries_.find(name_code);
  if (it == entries_.end() || it->second.expiry <= now) {
    if (it != entries_.end()) entries_.erase(it);
    return {};
  }
  std::vector<FaceId> faces = std::move(it->second.in_faces);
  entries_.erase(it);
  return faces;
}

bool Pit::has_entry(std::uint64_t name_code, SimTime now) const {
  const auto it = entries_.find(name_code);
  return it != entries_.end() && it->second.expiry > now;
}

std::size_t Pit::expire(SimTime now) {
  std::size_t removed = 0;
  while (!expiry_heap_.empty() && expiry_heap_.top().expiry <= now) {
    const HeapItem item = expiry_heap_.top();
    expiry_heap_.pop();
    const auto it = entries_.find(item.name_code);
    // Lazy deletion: the heap may hold stale items for refreshed or
    // already-consumed entries; only honor an exact expiry match.
    if (it != entries_.end() && it->second.expiry == item.expiry &&
        it->second.expiry <= now) {
      entries_.erase(it);
      ++removed;
    }
  }
  return removed;
}

}  // namespace dip::pit
