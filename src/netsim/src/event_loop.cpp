#include "dip/netsim/event_loop.hpp"

namespace dip::netsim {

void EventLoop::schedule_at(SimTime at, Callback fn) {
  queue_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
}

std::size_t EventLoop::run(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the callback after pop bookkeeping.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.fn();
    ++executed;
  }
  if (queue_.empty() && now_ < deadline && deadline != ~SimTime{0}) now_ = deadline;
  return executed;
}

}  // namespace dip::netsim
