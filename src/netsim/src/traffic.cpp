#include "dip/netsim/traffic.hpp"

#include <cmath>

namespace dip::netsim {

namespace {
SimDuration gap_for(std::uint64_t rate_bytes_per_sec, std::size_t packet_size) {
  if (rate_bytes_per_sec == 0) return kSecond;  // degenerate: 1 pkt/s
  return std::max<SimDuration>(
      1, packet_size * kSecond / rate_bytes_per_sec);
}
}  // namespace

void CbrSource::start(SimTime stop_at) { tick(stop_at); }

void CbrSource::tick(SimTime stop_at) {
  EventLoop& loop = node_.network()->loop();
  if (loop.now() >= stop_at) return;
  emit();
  loop.schedule_in(gap_for(config_.rate_bytes_per_sec, config_.packet_size_hint),
                   [this, stop_at] { tick(stop_at); });
}

void PoissonSource::start(SimTime stop_at) {
  node_.network()->loop().schedule_in(next_gap(), [this, stop_at] { tick(stop_at); });
}

void PoissonSource::tick(SimTime stop_at) {
  EventLoop& loop = node_.network()->loop();
  if (loop.now() >= stop_at) return;
  emit();
  loop.schedule_in(next_gap(), [this, stop_at] { tick(stop_at); });
}

SimDuration PoissonSource::next_gap() {
  // Inverse-CDF sampling of Exp(lambda); clamp u away from 0.
  const double u = std::max(rng_.uniform(), 1e-12);
  const double gap_sec = -std::log(u) / std::max(config_.mean_packets_per_sec, 1e-9);
  return std::max<SimDuration>(1, static_cast<SimDuration>(gap_sec * kSecond));
}

void OnOffSource::start(SimTime stop_at) {
  const SimTime burst_end = node_.network()->loop().now() + config_.on_period;
  tick(stop_at, burst_end);
}

void OnOffSource::tick(SimTime stop_at, SimTime burst_end) {
  EventLoop& loop = node_.network()->loop();
  if (loop.now() >= stop_at) return;

  if (loop.now() >= burst_end) {
    // Silence, then a fresh burst.
    loop.schedule_in(config_.off_period, [this, stop_at] {
      const SimTime next_burst_end = node_.network()->loop().now() + config_.on_period;
      tick(stop_at, next_burst_end);
    });
    return;
  }

  emit();
  loop.schedule_in(
      gap_for(config_.peak_rate_bytes_per_sec, config_.packet_size_hint),
      [this, stop_at, burst_end] { tick(stop_at, burst_end); });
}

}  // namespace dip::netsim
