#include "dip/netsim/dip_node.hpp"

#include "dip/core/ip.hpp"
#include "dip/epic/epic.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/security/error_message.hpp"
#include "dip/security/pass.hpp"
#include "dip/telemetry/telemetry.hpp"
#include "dip/xia/xia.hpp"

namespace dip::netsim {

std::shared_ptr<core::OpRegistry> make_default_registry() {
  auto registry = std::make_shared<core::OpRegistry>();
  registry->add(std::make_unique<core::Match32Op>());
  registry->add(std::make_unique<core::Match128Op>());
  registry->add(std::make_unique<core::SourceOp>());
  registry->add(std::make_unique<ndn::FibOp>());
  registry->add(std::make_unique<ndn::PitOp>());
  registry->add(std::make_unique<opt::ParmOp>());
  registry->add(std::make_unique<opt::MacOp>());
  registry->add(std::make_unique<opt::MarkOp>());
  registry->add(std::make_unique<xia::DagOp>());
  registry->add(std::make_unique<xia::IntentOp>());
  registry->add(std::make_unique<security::PassOp>());
  registry->add(std::make_unique<epic::HvfOp>());
  registry->add(std::make_unique<telemetry::TelemetryOp>());
  return registry;
}

void DipRouterNode::on_packet(FaceId face, PacketBytes packet, SimTime now) {
  const core::ProcessResult result = router_.process(packet, face, now);
  apply_verdict(face, packet, result);
}

void DipRouterNode::on_burst(FaceId face, std::vector<PacketBytes> packets, SimTime now) {
  burst_refs_.assign(packets.begin(), packets.end());
  burst_results_.resize(packets.size());
  router_.process_batch(burst_refs_, face, now, burst_results_);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    apply_verdict(face, packets[i], burst_results_[i]);
  }
}

void DipRouterNode::apply_verdict(FaceId face, PacketBytes& packet,
                                  const core::ProcessResult& result) {
  switch (result.action) {
    case core::Action::kForward: {
      if (result.respond_from_cache) {
        respond_from_cache(packet, face);
        return;
      }
      // Replicate to every egress face (NDN data fan-out is >1).
      for (std::size_t i = 0; i < result.egress.size(); ++i) {
        if (i + 1 == result.egress.size()) {
          network()->send(*this, result.egress[i], std::move(packet));
        } else {
          network()->send(*this, result.egress[i], packet);
        }
      }
      return;
    }
    case core::Action::kDrop: {
      ++drop_counts_[static_cast<std::size_t>(result.reason) % drop_counts_.size()];
      return;
    }
    case core::Action::kError: {
      ++drop_counts_[static_cast<std::size_t>(result.reason) % drop_counts_.size()];
      emit_error(packet, result.offending_key, face);
      return;
    }
  }
}

void DipRouterNode::write_stats(telemetry::StatsWriter& w) const {
  const std::string node_id = std::to_string(router_.env().node_id);
  const telemetry::Label labels[] = {{"node", node_id}};
  const auto namer = [](std::size_t slot) {
    return core::op_key_name(static_cast<core::OpKey>(slot));
  };
  telemetry::write_counter_snapshot(w, router_.env().counters.snapshot(),
                                    labels, +namer);
  if (const telemetry::RouterStats* stats = router_.env().stats.get()) {
    telemetry::write_router_stats(w, *stats, labels, +namer);
  }
  for (std::size_t r = 0; r < drop_counts_.size(); ++r) {
    if (drop_counts_[r] == 0) continue;
    const telemetry::Label drop_labels[] = {
        {"node", node_id},
        {"reason", core::to_string(static_cast<core::DropReason>(r))}};
    w.counter("dip_node_drops_total", drop_labels, drop_counts_[r]);
  }
}

void DipRouterNode::register_stats(telemetry::StatsRegistry& registry) const {
  registry.add("node " + std::to_string(router_.env().node_id),
               [this](telemetry::StatsWriter& w) { write_stats(w); });
}

std::string DipRouterNode::dump_stats() const {
  telemetry::StatsWriter w;
  write_stats(w);
  return w.take();
}

void DipRouterNode::emit_error(const PacketBytes& original, core::OpKey offending,
                               FaceId ingress) {
  // §2.4: notify the source through a mechanism similar to ICMP. The
  // notification leaves through the face the offending packet arrived on —
  // the reverse path, as ICMP would.
  const auto header = core::DipHeader::parse(original);
  if (!header) return;
  auto notification =
      security::make_fn_unsupported_packet(*header, offending, env().node_id);
  if (!notification) return;  // no F_source: nobody to notify
  network()->send(*this, ingress, std::move(*notification));
}

void DipRouterNode::respond_from_cache(const PacketBytes& interest, FaceId ingress) {
  // Footnote 2: a caching node answers the interest itself. Synthesize the
  // data packet from the content store and send it back out the ingress.
  auto& store = env().content_store;
  if (!store) return;

  const auto header = core::DipHeader::parse(interest);
  if (!header) return;
  const auto name_code = ndn::extract_name_code(*header);
  if (!name_code) return;
  const auto payload = store->lookup(*name_code);
  if (!payload) return;

  const auto data_header =
      ndn::make_data_header32(*name_code, core::NextHeader::kNone);
  if (!data_header) return;
  PacketBytes data = data_header->serialize();
  data.insert(data.end(), payload->begin(), payload->end());
  network()->send(*this, ingress, std::move(data));
}

}  // namespace dip::netsim
