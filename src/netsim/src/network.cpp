#include "dip/netsim/network.hpp"

#include <cassert>

namespace dip::netsim {

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kBlackout: return "blackout";
  }
  return "unknown";
}

NodeId Network::add_node(Node& node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  node.id_ = id;
  node.network_ = this;
  nodes_.push_back(&node);
  faces_.emplace_back();
  return id;
}

std::pair<FaceId, FaceId> Network::connect(Node& a, Node& b, LinkParams params) {
  assert(a.network_ == this && b.network_ == this);
  auto& fa = faces_[a.id()];
  auto& fb = faces_[b.id()];
  const auto face_a = static_cast<FaceId>(fa.size());
  const auto face_b = static_cast<FaceId>(fb.size());
  HalfLink half_a{b.id(), face_b, params, true, 0, next_link_ordinal_++,
                  0, crypto::Xoshiro256{0}, false};
  HalfLink half_b{a.id(), face_a, params, true, 0, next_link_ordinal_++,
                  0, crypto::Xoshiro256{0}, false};
  fa.push_back(std::move(half_a));
  fb.push_back(std::move(half_b));
  return {face_a, face_b};
}

Network::HalfLink* Network::half(NodeId node, FaceId face) {
  if (node >= faces_.size() || face >= faces_[node].size()) return nullptr;
  HalfLink& h = faces_[node][face];
  return h.connected ? &h : nullptr;
}

std::optional<std::pair<NodeId, FaceId>> Network::peer_of(const Node& node,
                                                          FaceId face) const {
  if (node.id() >= faces_.size() || face >= faces_[node.id()].size()) {
    return std::nullopt;
  }
  const HalfLink& h = faces_[node.id()][face];
  if (!h.connected) return std::nullopt;
  return std::make_pair(h.peer_node, h.peer_face);
}

void Network::record_fault(FaultKind kind, NodeId node, FaceId face,
                           std::uint64_t packet_index, std::uint64_t detail) {
  ++fault_events_;
  ++faults_by_kind_[static_cast<std::size_t>(kind) % faults_by_kind_.size()];
  if (fault_trace_.size() < kFaultTraceLimit) {
    fault_trace_.push_back({kind, node, face, packet_index, loop_.now(), detail});
  }
}

void Network::send(const Node& from, FaceId face, PacketBytes packet) {
  HalfLink* link = half(from.id(), face);
  if (link == nullptr) {
    ++stats_.dead_faced;
    return;
  }
  ++stats_.transmitted;
  stats_.bytes += packet.size();

  if (link->params.loss_rate > 0 && rng_.uniform() < link->params.loss_rate) {
    ++stats_.lost;
    return;
  }

  // FaultPlan decisions. Each half-link consumes its own PRNG stream in a
  // fixed order per packet (drop, duplicate, corrupt, reorder), so the
  // fault trace is a pure function of (fault seed, topology, traffic).
  const FaultPlan& plan = link->params.faults;
  bool duplicate = false;
  std::uint32_t corrupt_bytes = 0;
  SimDuration extra_delay = 0;
  const NodeId from_node = from.id();
  if (plan.active()) {
    const std::uint64_t pkt_idx = link->packet_index++;
    if (!link->fault_rng_seeded) {
      // SplitMix-style ordinal mix keeps sibling links' streams unrelated.
      link->fault_rng = crypto::Xoshiro256(
          fault_seed_ ^ (0x9E3779B97F4A7C15ull * (link->ordinal + 1)));
      link->fault_rng_seeded = true;
    }
    if (plan.in_blackout(loop_.now())) {
      ++stats_.blackholed;
      record_fault(FaultKind::kBlackout, from_node, face, pkt_idx, 0);
      return;
    }
    if (plan.drop_rate > 0 && link->fault_rng.uniform() < plan.drop_rate) {
      ++stats_.lost;
      record_fault(FaultKind::kDrop, from_node, face, pkt_idx, 0);
      return;
    }
    if (plan.duplicate_rate > 0 &&
        link->fault_rng.uniform() < plan.duplicate_rate) {
      duplicate = true;
    }
    if (plan.corrupt_rate > 0 && link->fault_rng.uniform() < plan.corrupt_rate &&
        !packet.empty()) {
      corrupt_bytes =
          1 + static_cast<std::uint32_t>(
                  link->fault_rng.below(std::max<std::uint32_t>(plan.corrupt_max_bytes, 1)));
    }
    if (plan.reorder_rate > 0 && link->fault_rng.uniform() < plan.reorder_rate &&
        plan.reorder_window > 0) {
      extra_delay = 1 + link->fault_rng.below(plan.reorder_window);
    }
    // Corruption mutates the bytes now but is *counted* only if the packet
    // actually delivers — a corrupted-then-queue-dropped packet lands in
    // exactly one ledger bucket (queue_dropped).
    if (corrupt_bytes != 0) {
      for (std::uint32_t k = 0; k < corrupt_bytes; ++k) {
        packet[link->fault_rng.below(packet.size())] ^=
            static_cast<std::uint8_t>(1 + link->fault_rng.below(255));
      }
      record_fault(FaultKind::kCorrupt, from_node, face, pkt_idx, corrupt_bytes);
    }
    if (duplicate) record_fault(FaultKind::kDuplicate, from_node, face, pkt_idx, 0);
    if (extra_delay != 0) {
      record_fault(FaultKind::kReorder, from_node, face, pkt_idx, extra_delay);
    }
  }

  // Serialization: the face transmits packets back to back, in order.
  const SimDuration tx_time =
      link->params.bandwidth_bps == 0
          ? 0
          : (packet.size() * 8 * kSecond) / link->params.bandwidth_bps;
  const SimTime start = std::max(loop_.now(), link->busy_until);
  if (link->params.max_queue_delay != 0 &&
      start - loop_.now() > link->params.max_queue_delay) {
    ++stats_.queue_dropped;  // finite buffer: tail drop
    return;
  }
  const SimTime arrive = start + tx_time + link->params.latency + extra_delay;
  link->busy_until = start + tx_time;

  const NodeId to_node = link->peer_node;
  const FaceId to_face = link->peer_face;
  const bool was_corrupted = corrupt_bytes != 0;

  if (duplicate) {
    // The copy rides back to back behind the original: it occupies the link
    // for another tx_time and skips the queue check the original passed.
    ++stats_.duplicated;
    const SimTime dup_arrive = arrive + tx_time;
    link->busy_until += tx_time;
    loop_.schedule_at(dup_arrive, [this, from_node, to_node, to_face, was_corrupted,
                                   packet]() mutable {
      ++stats_.delivered;
      if (was_corrupted) ++stats_.corrupted;
      if (tap_) tap_(from_node, to_node, to_face, packet, loop_.now());
      nodes_[to_node]->on_packet(to_face, std::move(packet), loop_.now());
    });
  }
  loop_.schedule_at(arrive, [this, from_node, to_node, to_face, was_corrupted,
                             packet = std::move(packet)]() mutable {
    ++stats_.delivered;
    if (was_corrupted) ++stats_.corrupted;
    if (tap_) tap_(from_node, to_node, to_face, packet, loop_.now());
    nodes_[to_node]->on_packet(to_face, std::move(packet), loop_.now());
  });
}

void Network::write_stats(telemetry::StatsWriter& w) const {
  w.counter("dip_net_transmitted_total", {}, stats_.transmitted);
  w.counter("dip_net_delivered_total", {}, stats_.delivered);
  w.counter("dip_net_lost_total", {}, stats_.lost);
  w.counter("dip_net_queue_dropped_total", {}, stats_.queue_dropped);
  w.counter("dip_net_dead_faced_total", {}, stats_.dead_faced);
  w.counter("dip_net_bytes_total", {}, stats_.bytes);
  w.counter("dip_net_duplicated_total", {}, stats_.duplicated);
  w.counter("dip_net_corrupted_total", {}, stats_.corrupted);
  w.counter("dip_net_blackholed_total", {}, stats_.blackholed);
  w.counter("dip_net_fault_events_total", {}, fault_events_);
  for (std::size_t k = 0; k < faults_by_kind_.size(); ++k) {
    if (faults_by_kind_[k] == 0) continue;
    const telemetry::Label labels[] = {
        {"kind", to_string(static_cast<FaultKind>(k))}};
    w.counter("dip_net_faults_total", labels, faults_by_kind_[k]);
  }
}

void Network::register_stats(telemetry::StatsRegistry& registry) const {
  registry.add("network", [this](telemetry::StatsWriter& w) { write_stats(w); });
}

}  // namespace dip::netsim
