#include "dip/netsim/network.hpp"

#include <cassert>

namespace dip::netsim {

NodeId Network::add_node(Node& node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  node.id_ = id;
  node.network_ = this;
  nodes_.push_back(&node);
  faces_.emplace_back();
  return id;
}

std::pair<FaceId, FaceId> Network::connect(Node& a, Node& b, LinkParams params) {
  assert(a.network_ == this && b.network_ == this);
  auto& fa = faces_[a.id()];
  auto& fb = faces_[b.id()];
  const auto face_a = static_cast<FaceId>(fa.size());
  const auto face_b = static_cast<FaceId>(fb.size());
  fa.push_back(HalfLink{b.id(), face_b, params, true, 0});
  fb.push_back(HalfLink{a.id(), face_a, params, true, 0});
  return {face_a, face_b};
}

Network::HalfLink* Network::half(NodeId node, FaceId face) {
  if (node >= faces_.size() || face >= faces_[node].size()) return nullptr;
  HalfLink& h = faces_[node][face];
  return h.connected ? &h : nullptr;
}

std::optional<std::pair<NodeId, FaceId>> Network::peer_of(const Node& node,
                                                          FaceId face) const {
  if (node.id() >= faces_.size() || face >= faces_[node.id()].size()) {
    return std::nullopt;
  }
  const HalfLink& h = faces_[node.id()][face];
  if (!h.connected) return std::nullopt;
  return std::make_pair(h.peer_node, h.peer_face);
}

void Network::send(const Node& from, FaceId face, PacketBytes packet) {
  HalfLink* link = half(from.id(), face);
  if (link == nullptr) {
    ++stats_.dead_faced;
    return;
  }
  ++stats_.transmitted;
  stats_.bytes += packet.size();

  if (link->params.loss_rate > 0 && rng_.uniform() < link->params.loss_rate) {
    ++stats_.lost;
    return;
  }

  // Serialization: the face transmits packets back to back, in order.
  const SimDuration tx_time =
      link->params.bandwidth_bps == 0
          ? 0
          : (packet.size() * 8 * kSecond) / link->params.bandwidth_bps;
  const SimTime start = std::max(loop_.now(), link->busy_until);
  if (link->params.max_queue_delay != 0 &&
      start - loop_.now() > link->params.max_queue_delay) {
    ++stats_.queue_dropped;  // finite buffer: tail drop
    return;
  }
  const SimTime arrive = start + tx_time + link->params.latency;
  link->busy_until = start + tx_time;

  const NodeId to_node = link->peer_node;
  const FaceId to_face = link->peer_face;
  const NodeId from_node = from.id();
  loop_.schedule_at(arrive, [this, from_node, to_node, to_face,
                             packet = std::move(packet)]() mutable {
    ++stats_.delivered;
    if (tap_) tap_(from_node, to_node, to_face, packet, loop_.now());
    nodes_[to_node]->on_packet(to_face, std::move(packet), loop_.now());
  });
}

}  // namespace dip::netsim
