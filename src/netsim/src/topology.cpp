#include "dip/netsim/topology.hpp"

#include <algorithm>
#include <cmath>

namespace dip::netsim {

std::unique_ptr<LinearPath> make_linear_path(
    Network& net, std::size_t hops, std::shared_ptr<const core::OpRegistry> registry,
    const std::function<core::RouterEnv(std::size_t)>& make_env, LinkParams link,
    core::DispatchStrategy strategy) {
  auto path = std::make_unique<LinearPath>();
  net.add_node(path->source);
  for (std::size_t i = 0; i < hops; ++i) {
    path->routers.push_back(
        std::make_unique<DipRouterNode>(make_env(i), registry, strategy));
    net.add_node(*path->routers.back());
  }
  net.add_node(path->destination);

  path->upstream_face.resize(hops);
  path->downstream_face.resize(hops);

  if (hops == 0) {
    const auto [sf, df] = net.connect(path->source, path->destination, link);
    path->source_face = sf;
    path->destination_face = df;
    return path;
  }

  {
    const auto [sf, rf] = net.connect(path->source, *path->routers.front(), link);
    path->source_face = sf;
    path->upstream_face[0] = rf;
  }
  for (std::size_t i = 0; i + 1 < hops; ++i) {
    const auto [down, up] = net.connect(*path->routers[i], *path->routers[i + 1], link);
    path->downstream_face[i] = down;
    path->upstream_face[i + 1] = up;
  }
  {
    const auto [down, dest] =
        net.connect(*path->routers.back(), path->destination, link);
    path->downstream_face[hops - 1] = down;
    path->destination_face = dest;
  }

  for (std::size_t i = 0; i < hops; ++i) {
    path->routers[i]->env().default_egress = path->downstream_face[i];
  }
  return path;
}

std::unique_ptr<Star> make_star(Network& net, std::size_t consumers,
                                std::shared_ptr<const core::OpRegistry> registry,
                                core::RouterEnv hub_env, LinkParams link) {
  auto star = std::make_unique<Star>();
  star->hub = std::make_unique<DipRouterNode>(std::move(hub_env), std::move(registry));
  net.add_node(*star->hub);
  net.add_node(star->producer);
  {
    const auto [pf, hf] = net.connect(star->producer, *star->hub, link);
    star->producer_face = pf;
    star->hub_producer_face = hf;
  }
  for (std::size_t i = 0; i < consumers; ++i) {
    star->consumers.push_back(std::make_unique<HostNode>());
    net.add_node(*star->consumers.back());
    const auto [cf, hf] = net.connect(*star->consumers.back(), *star->hub, link);
    star->consumer_face.push_back(cf);
    star->hub_consumer_face.push_back(hf);
  }
  return star;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent, std::uint64_t seed)
    : rng_(seed) {
  cdf_.reserve(n);
  double total = 0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), exponent);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

core::RouterEnv make_basic_env(std::uint32_t node_id) {
  core::RouterEnv env;
  env.node_id = node_id;
  env.fib32 = fib::make_lpm<32>(fib::LpmEngine::kPatricia);
  env.fib128 = fib::make_lpm<128>(fib::LpmEngine::kPatricia);
  env.xid_table = std::make_unique<fib::XidTable>();
  // Match verdicts are memoized per router; generation stamps keep cached
  // entries coherent with FIB updates, so this is on by default.
  env.flow_cache = std::make_unique<core::FlowCache>();
  // Per-node secret: deterministic but distinct per node.
  env.node_secret = crypto::Xoshiro256(0x5eC0DE + node_id).block();
  return env;
}

}  // namespace dip::netsim
