// Traffic generators: constant-bit-rate, Poisson, and on/off sources.
//
// Generators attach to a HostNode and drive packets from a caller-supplied
// factory on a simulated-time schedule. Used by the goodput benches and the
// congestion/QoS experiments (the NetFence and CSFQ control loops need
// realistic offered loads, not lockstep packet trains).
#pragma once

#include <functional>
#include <memory>

#include "dip/crypto/random.hpp"
#include "dip/netsim/dip_node.hpp"

namespace dip::netsim {

/// Builds the next packet to send. Called once per transmission.
using PacketFactory = std::function<PacketBytes()>;

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Begin emitting at now(); stops automatically at `stop_at` (absolute).
  virtual void start(SimTime stop_at) = 0;

  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_; }

 protected:
  TrafficSource(HostNode& node, FaceId face, PacketFactory factory)
      : node_(node), face_(face), factory_(std::move(factory)) {}

  void emit() {
    PacketBytes packet = factory_();
    bytes_ += packet.size();
    ++sent_;
    node_.send(face_, std::move(packet));
  }

  HostNode& node_;
  FaceId face_;
  PacketFactory factory_;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Fixed inter-packet gap derived from rate and packet size.
class CbrSource final : public TrafficSource {
 public:
  struct Config {
    std::uint64_t rate_bytes_per_sec = 100'000;
    std::size_t packet_size_hint = 512;  ///< used to derive the gap
  };

  CbrSource(HostNode& node, FaceId face, PacketFactory factory, Config config)
      : TrafficSource(node, face, std::move(factory)), config_(config) {}

  void start(SimTime stop_at) override;

 private:
  void tick(SimTime stop_at);
  Config config_;
};

/// Exponentially distributed inter-arrival gaps (memoryless).
class PoissonSource final : public TrafficSource {
 public:
  struct Config {
    double mean_packets_per_sec = 1000.0;
    std::uint64_t seed = 1;
  };

  PoissonSource(HostNode& node, FaceId face, PacketFactory factory, Config config)
      : TrafficSource(node, face, std::move(factory)),
        config_(config),
        rng_(config.seed) {}

  void start(SimTime stop_at) override;

 private:
  void tick(SimTime stop_at);
  [[nodiscard]] SimDuration next_gap();
  Config config_;
  crypto::Xoshiro256 rng_;
};

/// Alternating burst (CBR at peak rate) and silence periods.
class OnOffSource final : public TrafficSource {
 public:
  struct Config {
    std::uint64_t peak_rate_bytes_per_sec = 1'000'000;
    std::size_t packet_size_hint = 512;
    SimDuration on_period = 10 * kMillisecond;
    SimDuration off_period = 40 * kMillisecond;
  };

  OnOffSource(HostNode& node, FaceId face, PacketFactory factory, Config config)
      : TrafficSource(node, face, std::move(factory)), config_(config) {}

  void start(SimTime stop_at) override;

 private:
  void tick(SimTime stop_at, SimTime burst_end);
  Config config_;
};

}  // namespace dip::netsim
