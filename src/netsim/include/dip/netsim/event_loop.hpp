// Deterministic discrete-event scheduler.
//
// Single-threaded, strictly ordered by (time, insertion sequence): two
// events at the same instant fire in schedule order, so simulations are
// reproducible bit for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "dip/bytes/time.hpp"

namespace dip::netsim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` after `delay`.
  void schedule_in(SimDuration delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run until the queue drains or `deadline` passes. Returns the number of
  /// events executed.
  std::size_t run(SimTime deadline = ~SimTime{0});

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dip::netsim
