// Network: nodes, faces, links, and packet transport.
//
// Topology model: nodes are added first, then connected pairwise; each
// connection allocates one face id on each endpoint. A link has propagation
// latency, bandwidth (serialization delay = bits / bandwidth), and an
// optional deterministic loss rate. Delivery is in-order per link.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dip/crypto/random.hpp"
#include "dip/netsim/event_loop.hpp"
#include "dip/netsim/faults.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::netsim {

using NodeId = std::uint32_t;
using FaceId = std::uint32_t;

/// A captured packet in flight or delivered (tests/tracing).
using PacketBytes = std::vector<std::uint8_t>;

class Network;

/// Anything attachable to the network: DIP routers, hosts, legacy routers,
/// border routers.
class Node {
 public:
  virtual ~Node() = default;

  /// Called when a packet arrives on `face` at simulated time `now`.
  virtual void on_packet(FaceId face, PacketBytes packet, SimTime now) = 0;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Network* network() const noexcept { return network_; }

 private:
  friend class Network;
  NodeId id_ = 0;
  Network* network_ = nullptr;
};

struct LinkParams {
  SimDuration latency = 1 * kMicrosecond;
  std::uint64_t bandwidth_bps = 10'000'000'000;  ///< 10 Gb/s default
  double loss_rate = 0.0;                        ///< deterministic PRNG loss
  /// Tail-drop bound: a packet that would wait longer than this in the
  /// transmit queue is dropped (0 = infinite queue). Models the finite
  /// buffers the NetFence/CSFQ experiments congest against.
  SimDuration max_queue_delay = 0;
  /// Deterministic fault schedule (drop/duplicate/corrupt/reorder/blackout);
  /// inactive by default. See faults.hpp and docs/FAULTS.md.
  FaultPlan faults;
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed), fault_seed_(seed) {}

  /// Seed for every link's fault PRNG (defaults to the network seed). Must
  /// be set before the first packet is transmitted; re-seeding afterwards
  /// would fork the trace mid-run.
  void set_fault_seed(std::uint64_t seed) noexcept { fault_seed_ = seed; }
  [[nodiscard]] std::uint64_t fault_seed() const noexcept { return fault_seed_; }

  /// Attach a node; the network does not own it.
  NodeId add_node(Node& node);

  /// Connect two attached nodes; returns (face on a, face on b).
  std::pair<FaceId, FaceId> connect(Node& a, Node& b, LinkParams params = {});

  /// Transmit out of `face` of `from`. Packets on unconnected faces are
  /// counted as dropped.
  void send(const Node& from, FaceId face, PacketBytes packet);

  /// The neighbor face reachable through (node, face), if connected.
  [[nodiscard]] std::optional<std::pair<NodeId, FaceId>> peer_of(const Node& node,
                                                                 FaceId face) const;

  /// Faces allocated on `node` so far (control-plane link-state scans
  /// iterate [0, face_count) and probe link_params per face).
  [[nodiscard]] std::size_t face_count(NodeId node) const noexcept {
    return node < faces_.size() ? faces_[node].size() : 0;
  }

  /// Parameters of the half-link transmitting out of (node, face), or
  /// nullptr if unconnected/out of range. The control plane reads the
  /// FaultPlan here to derive link state (FaultPlan::in_blackout is a pure
  /// function of simulated time, so "is this link dark right now" needs no
  /// extra event plumbing).
  [[nodiscard]] const LinkParams* link_params(NodeId node, FaceId face) const {
    if (node >= faces_.size() || face >= faces_[node].size()) return nullptr;
    const HalfLink& h = faces_[node][face];
    return h.connected ? &h.params : nullptr;
  }

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }

  /// Run the simulation to quiescence (or deadline).
  std::size_t run(SimTime deadline = ~SimTime{0}) { return loop_.run(deadline); }

  /// Transport ledger. Every transmitted packet (plus every injected
  /// duplicate) ends in exactly one terminal bucket:
  ///   transmitted + duplicated == delivered + lost + blackholed + queue_dropped
  /// `corrupted` is informational — it counts *delivered* packets whose
  /// bytes were mutated; a corrupted-then-dropped packet counts once, in
  /// its drop bucket only (chaos_test pins both invariants).
  struct Stats {
    std::uint64_t transmitted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;           ///< loss_rate + FaultPlan::drop_rate drops
    std::uint64_t queue_dropped = 0;  ///< tail drops at full transmit queues
    std::uint64_t dead_faced = 0;  ///< sent on an unconnected face
    std::uint64_t bytes = 0;
    std::uint64_t duplicated = 0;  ///< extra copies injected by FaultPlan
    std::uint64_t corrupted = 0;   ///< delivered with flipped bytes
    std::uint64_t blackholed = 0;  ///< transmitted into a blackout window
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Every injected fault in order (bounded by kFaultTraceLimit entries;
  /// fault_events() keeps the true total). Two runs with equal seeds,
  /// topology, and traffic produce equal traces.
  static constexpr std::size_t kFaultTraceLimit = 1 << 16;
  [[nodiscard]] const std::vector<FaultEvent>& fault_trace() const noexcept {
    return fault_trace_;
  }
  [[nodiscard]] std::uint64_t fault_events() const noexcept { return fault_events_; }

  /// Render the transport ledger and per-fault-kind counters as
  /// `dip_net_*` series (catalogue in docs/OBSERVABILITY.md).
  void write_stats(telemetry::StatsWriter& w) const;
  /// write_stats as a StatsRegistry section named "network".
  void register_stats(telemetry::StatsRegistry& registry) const;

  /// Optional wiretap invoked on every delivered packet (tracing).
  using Tap = std::function<void(NodeId from, NodeId to, FaceId ingress,
                                 std::span<const std::uint8_t>, SimTime)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

 private:
  struct HalfLink {
    NodeId peer_node = 0;
    FaceId peer_face = 0;
    LinkParams params;
    bool connected = false;
    SimTime busy_until = 0;  ///< serialization: in-order, back-to-back
    // Fault state: a private PRNG (seeded lazily from the fault seed and
    // the half-link ordinal) and this half-link's packet counter, so one
    // link's fault draws never perturb another's.
    std::uint64_t ordinal = 0;
    std::uint64_t packet_index = 0;
    crypto::Xoshiro256 fault_rng{0};
    bool fault_rng_seeded = false;
  };

  HalfLink* half(NodeId node, FaceId face);
  void record_fault(FaultKind kind, NodeId node, FaceId face,
                    std::uint64_t packet_index, std::uint64_t detail);

  EventLoop loop_;
  std::vector<Node*> nodes_;
  // faces_[node][face] -> half link.
  std::vector<std::vector<HalfLink>> faces_;
  crypto::Xoshiro256 rng_;
  std::uint64_t fault_seed_;
  std::uint64_t next_link_ordinal_ = 0;
  std::vector<FaultEvent> fault_trace_;
  std::uint64_t fault_events_ = 0;
  std::array<std::uint64_t, 5> faults_by_kind_{};  ///< indexed by FaultKind
  Stats stats_;
  Tap tap_;
};

}  // namespace dip::netsim
