// Network: nodes, faces, links, and packet transport.
//
// Topology model: nodes are added first, then connected pairwise; each
// connection allocates one face id on each endpoint. A link has propagation
// latency, bandwidth (serialization delay = bits / bandwidth), and an
// optional deterministic loss rate. Delivery is in-order per link.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dip/crypto/random.hpp"
#include "dip/netsim/event_loop.hpp"

namespace dip::netsim {

using NodeId = std::uint32_t;
using FaceId = std::uint32_t;

/// A captured packet in flight or delivered (tests/tracing).
using PacketBytes = std::vector<std::uint8_t>;

class Network;

/// Anything attachable to the network: DIP routers, hosts, legacy routers,
/// border routers.
class Node {
 public:
  virtual ~Node() = default;

  /// Called when a packet arrives on `face` at simulated time `now`.
  virtual void on_packet(FaceId face, PacketBytes packet, SimTime now) = 0;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Network* network() const noexcept { return network_; }

 private:
  friend class Network;
  NodeId id_ = 0;
  Network* network_ = nullptr;
};

struct LinkParams {
  SimDuration latency = 1 * kMicrosecond;
  std::uint64_t bandwidth_bps = 10'000'000'000;  ///< 10 Gb/s default
  double loss_rate = 0.0;                        ///< deterministic PRNG loss
  /// Tail-drop bound: a packet that would wait longer than this in the
  /// transmit queue is dropped (0 = infinite queue). Models the finite
  /// buffers the NetFence/CSFQ experiments congest against.
  SimDuration max_queue_delay = 0;
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed) {}

  /// Attach a node; the network does not own it.
  NodeId add_node(Node& node);

  /// Connect two attached nodes; returns (face on a, face on b).
  std::pair<FaceId, FaceId> connect(Node& a, Node& b, LinkParams params = {});

  /// Transmit out of `face` of `from`. Packets on unconnected faces are
  /// counted as dropped.
  void send(const Node& from, FaceId face, PacketBytes packet);

  /// The neighbor face reachable through (node, face), if connected.
  [[nodiscard]] std::optional<std::pair<NodeId, FaceId>> peer_of(const Node& node,
                                                                 FaceId face) const;

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }

  /// Run the simulation to quiescence (or deadline).
  std::size_t run(SimTime deadline = ~SimTime{0}) { return loop_.run(deadline); }

  struct Stats {
    std::uint64_t transmitted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t queue_dropped = 0;  ///< tail drops at full transmit queues
    std::uint64_t dead_faced = 0;  ///< sent on an unconnected face
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Optional wiretap invoked on every delivered packet (tracing).
  using Tap = std::function<void(NodeId from, NodeId to, FaceId ingress,
                                 std::span<const std::uint8_t>, SimTime)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

 private:
  struct HalfLink {
    NodeId peer_node = 0;
    FaceId peer_face = 0;
    LinkParams params;
    bool connected = false;
    SimTime busy_until = 0;  ///< serialization: in-order, back-to-back
  };

  HalfLink* half(NodeId node, FaceId face);

  EventLoop loop_;
  std::vector<Node*> nodes_;
  // faces_[node][face] -> half link.
  std::vector<std::vector<HalfLink>> faces_;
  crypto::Xoshiro256 rng_;
  Stats stats_;
  Tap tap_;
};

}  // namespace dip::netsim
