// Simulated node types: DIP router, host, and the default module stack.
#pragma once

#include <functional>
#include <memory>

#include "dip/core/registry.hpp"
#include "dip/core/router.hpp"
#include "dip/netsim/network.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::netsim {

/// An OpRegistry with every operation module this repo implements (the
/// "pre-written modules" of §4.1): IP match/source, NDN FIB/PIT, OPT
/// parm/MAC/mark, XIA DAG/intent, F_pass, F_int.
[[nodiscard]] std::shared_ptr<core::OpRegistry> make_default_registry();

/// A DIP-capable router node: core::Router plumbed into the simulator.
class DipRouterNode final : public Node {
 public:
  DipRouterNode(core::RouterEnv env, std::shared_ptr<const core::OpRegistry> registry,
                core::DispatchStrategy strategy = core::DispatchStrategy::kLoop)
      : registry_(std::move(registry)), router_(std::move(env), registry_.get(), strategy) {}

  void on_packet(FaceId face, PacketBytes packet, SimTime now) override;

  /// Burst ingress: process every packet through Router::process_batch and
  /// then apply the verdicts. Equivalent to on_packet per element, but runs
  /// the two-phase batch fast path.
  void on_burst(FaceId face, std::vector<PacketBytes> packets, SimTime now);

  [[nodiscard]] core::Router& router() noexcept { return router_; }
  [[nodiscard]] core::RouterEnv& env() noexcept { return router_.env(); }

  /// Per-drop-reason counters (observability for tests/examples).
  [[nodiscard]] std::uint64_t drops(core::DropReason reason) const {
    return drop_counts_[static_cast<std::size_t>(reason)];
  }

  /// Render this node's stats: router counters and (when RouterEnv::stats
  /// is installed) latency histograms, all labelled node="<node_id>", plus
  /// dip_node_drops_total{reason=...} from the verdict ledger. Catalogue in
  /// docs/OBSERVABILITY.md.
  void write_stats(telemetry::StatsWriter& w) const;

  /// write_stats as a StatsRegistry section named "node <node_id>".
  void register_stats(telemetry::StatsRegistry& registry) const;

  /// One-call text exposition of write_stats().
  [[nodiscard]] std::string dump_stats() const;

 private:
  /// Apply one verdict: forward/replicate, count a drop, or emit the error
  /// notification. Shared by the single-packet and burst paths.
  void apply_verdict(FaceId face, PacketBytes& packet, const core::ProcessResult& result);
  void emit_error(const PacketBytes& original, core::OpKey offending, FaceId ingress);
  void respond_from_cache(const PacketBytes& interest, FaceId ingress);

  std::shared_ptr<const core::OpRegistry> registry_;
  core::Router router_;
  std::array<std::uint64_t, 16> drop_counts_{};
  // Burst scratch reused across on_burst calls.
  std::vector<core::PacketRef> burst_refs_;
  std::vector<core::ProcessResult> burst_results_;
};

/// A host endpoint: delivers received packets to a callback and can send.
class HostNode final : public Node {
 public:
  using Receiver = std::function<void(FaceId, PacketBytes, SimTime)>;

  explicit HostNode(Receiver receiver = {}) : receiver_(std::move(receiver)) {}

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  void on_packet(FaceId face, PacketBytes packet, SimTime now) override {
    ++received_;
    if (receiver_) receiver_(face, std::move(packet), now);
  }

  /// Transmit a packet out of `face`.
  void send(FaceId face, PacketBytes packet) {
    network()->send(*this, face, std::move(packet));
  }

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }

 private:
  Receiver receiver_;
  std::uint64_t received_ = 0;
};

}  // namespace dip::netsim
