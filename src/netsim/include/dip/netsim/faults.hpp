// FaultPlan — deterministic per-link fault injection for the simulator.
//
// Disruption tolerance is a network-layer property (Neufeld's DIP work and
// every DTN paper since), so the simulator must be able to subject any
// topology to loss, duplication, corruption, reordering, and burst
// blackouts — and do it *reproducibly*: the whole schedule derives from a
// single uint64 seed, so a failing chaos run replays bit for bit.
//
// Determinism contract:
//   * each half-link owns a private PRNG seeded from
//     mix(fault_seed, link_ordinal) at first use; fault decisions consume
//     only that stream, in a fixed order per packet, so one link's faults
//     never perturb another's;
//   * blackouts are pure functions of simulated time (no PRNG), giving
//     schedulable outage windows;
//   * every injected fault is appended to the Network's fault trace —
//     two runs with the same seed, topology, and traffic produce equal
//     traces (chaos_test pins this).
//
// The schema, accounting rules, and drop-reason taxonomy are documented in
// docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <string_view>

#include "dip/bytes/time.hpp"

namespace dip::netsim {

/// What a fault did to a packet (the fault-trace vocabulary).
enum class FaultKind : std::uint8_t {
  kDrop,       ///< random loss (FaultPlan::drop_rate)
  kDuplicate,  ///< a second copy was injected behind the original
  kCorrupt,    ///< 1..corrupt_max_bytes random bytes were flipped
  kReorder,    ///< held back by a random extra delay inside reorder_window
  kBlackout,   ///< transmitted inside a scheduled outage window
};

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

/// Per-link fault schedule. Default-constructed plans are inactive and the
/// send path pays a single branch for them.
struct FaultPlan {
  /// Independent per-packet loss probability (drawn from the link PRNG;
  /// separate from LinkParams::loss_rate, which predates the fault layer
  /// and draws from the network-wide PRNG).
  double drop_rate = 0.0;
  /// Probability a packet is delivered twice (the copy rides back to back
  /// behind the original and skips the queue check it already passed).
  double duplicate_rate = 0.0;
  /// Probability the delivered bytes are corrupted.
  double corrupt_rate = 0.0;
  /// A corrupted packet gets 1..corrupt_max_bytes random byte flips.
  std::uint32_t corrupt_max_bytes = 4;
  /// Probability a packet is held back by an extra random delay.
  double reorder_rate = 0.0;
  /// Maximum extra delay for a reordered packet (uniform in [1, window]).
  SimDuration reorder_window = 50 * kMicrosecond;
  /// Burst blackout schedule: every `blackout_period` ns the link goes dark
  /// for `blackout_duration` ns ([k*period, k*period + duration) windows,
  /// simulated time). 0 for either disables blackouts.
  SimDuration blackout_period = 0;
  SimDuration blackout_duration = 0;

  [[nodiscard]] bool active() const noexcept {
    return drop_rate > 0 || duplicate_rate > 0 || corrupt_rate > 0 ||
           reorder_rate > 0 || (blackout_period > 0 && blackout_duration > 0);
  }

  [[nodiscard]] bool in_blackout(SimTime now) const noexcept {
    return blackout_period > 0 && blackout_duration > 0 &&
           now % blackout_period < blackout_duration;
  }
};

/// One injected fault, as recorded in the Network's fault trace.
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  std::uint32_t node = 0;              ///< transmitting node
  std::uint32_t face = 0;              ///< transmitting face
  std::uint64_t link_packet_index = 0; ///< nth packet sent on that half-link
  SimTime at = 0;                      ///< send time
  /// Kind-specific detail: flipped byte count (kCorrupt) or extra delay in
  /// ns (kReorder); 0 otherwise.
  std::uint64_t detail = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

}  // namespace dip::netsim
