// Topology builders shared by tests, benches, and examples.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dip/netsim/dip_node.hpp"

namespace dip::netsim {

/// source -- r0 -- r1 -- ... -- r{n-1} -- destination
struct LinearPath {
  HostNode source;
  HostNode destination;
  std::vector<std::unique_ptr<DipRouterNode>> routers;

  FaceId source_face = 0;        ///< source's face toward r0
  FaceId destination_face = 0;   ///< destination's face toward r{n-1}
  /// routers[i]'s faces: upstream_face (toward source), downstream_face.
  std::vector<FaceId> upstream_face;
  std::vector<FaceId> downstream_face;
};

/// Build a linear DIP path with `hops` routers. `make_env(i)` produces each
/// router's environment; after wiring, every router's default_egress is set
/// to its downstream face (the paper's one-hop port-wired eval, generalized).
[[nodiscard]] std::unique_ptr<LinearPath> make_linear_path(
    Network& net, std::size_t hops, std::shared_ptr<const core::OpRegistry> registry,
    const std::function<core::RouterEnv(std::size_t)>& make_env,
    LinkParams link = {},
    core::DispatchStrategy strategy = core::DispatchStrategy::kLoop);

/// A RouterEnv with Patricia FIBs, a PIT, and node id/secret derived from
/// `node_id` — the baseline environment most tests want.
[[nodiscard]] core::RouterEnv make_basic_env(std::uint32_t node_id);

/// consumers[0..n) -- hub -- producer.
///
/// The classic NDN caching topology: many consumers behind one router; the
/// hub's PIT aggregates concurrent interests and (with a content store) its
/// cache absorbs repeats.
struct Star {
  std::vector<std::unique_ptr<HostNode>> consumers;
  HostNode producer;
  std::unique_ptr<DipRouterNode> hub;

  std::vector<FaceId> consumer_face;       ///< consumer i's face toward hub
  std::vector<FaceId> hub_consumer_face;   ///< hub's face toward consumer i
  FaceId producer_face = 0;                ///< producer's face toward hub
  FaceId hub_producer_face = 0;            ///< hub's face toward producer
};

[[nodiscard]] std::unique_ptr<Star> make_star(
    Network& net, std::size_t consumers,
    std::shared_ptr<const core::OpRegistry> registry, core::RouterEnv hub_env,
    LinkParams link = {});

/// Zipf(s) sampler over {0..n-1}: the standard content-popularity model for
/// cache experiments (a small head of names gets most requests).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent, std::uint64_t seed);

  [[nodiscard]] std::size_t sample();

 private:
  std::vector<double> cdf_;
  crypto::Xoshiro256 rng_;
};

}  // namespace dip::netsim
