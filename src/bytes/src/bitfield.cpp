#include "dip/bytes/bitfield.hpp"

#include <cstring>

namespace dip::bytes {

namespace {

/// Read one bit from a block (bit 0 = MSB of block[0]).
inline bool get_bit(std::span<const std::uint8_t> block, std::uint32_t bit) noexcept {
  return (block[bit / 8] >> (7 - (bit % 8))) & 1u;
}

/// Write one bit into a block (bit 0 = MSB of block[0]).
inline void set_bit(std::span<std::uint8_t> block, std::uint32_t bit, bool v) noexcept {
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - (bit % 8)));
  if (v) {
    block[bit / 8] |= mask;
  } else {
    block[bit / 8] &= static_cast<std::uint8_t>(~mask);
  }
}

}  // namespace

Status extract_bits(std::span<const std::uint8_t> block, const BitRange& range,
                    std::span<std::uint8_t> out) noexcept {
  if (!fits(range, block.size())) return Unexpected{Error::kOutOfRange};
  if (out.size() < range.byte_length()) return Unexpected{Error::kOverflow};

  if (range.byte_aligned()) {
    std::memcpy(out.data(), block.data() + range.bit_offset / 8, range.bit_length / 8);
    return {};
  }

  std::memset(out.data(), 0, range.byte_length());
  for (std::uint32_t i = 0; i < range.bit_length; ++i) {
    set_bit(out, i, get_bit(block, range.bit_offset + i));
  }
  return {};
}

Status inject_bits(std::span<std::uint8_t> block, const BitRange& range,
                   std::span<const std::uint8_t> field) noexcept {
  if (!fits(range, block.size())) return Unexpected{Error::kOutOfRange};
  if (field.size() < range.byte_length()) return Unexpected{Error::kTruncated};

  if (range.byte_aligned()) {
    std::memcpy(block.data() + range.bit_offset / 8, field.data(), range.bit_length / 8);
    return {};
  }

  for (std::uint32_t i = 0; i < range.bit_length; ++i) {
    set_bit(block, range.bit_offset + i, get_bit(field, i));
  }
  return {};
}

Result<std::uint64_t> extract_uint(std::span<const std::uint8_t> block,
                                   const BitRange& range) noexcept {
  if (!fits(range, block.size())) return Err(Error::kOutOfRange);
  if (range.bit_length > 64) return Err(Error::kOutOfRange);

  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < range.bit_length; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(get_bit(block, range.bit_offset + i));
  }
  return v;
}

Status inject_uint(std::span<std::uint8_t> block, const BitRange& range,
                   std::uint64_t value) noexcept {
  if (!fits(range, block.size())) return Unexpected{Error::kOutOfRange};
  if (range.bit_length > 64) return Unexpected{Error::kOutOfRange};

  for (std::uint32_t i = 0; i < range.bit_length; ++i) {
    const bool bit = (value >> (range.bit_length - 1 - i)) & 1u;
    set_bit(block, range.bit_offset + i, bit);
  }
  return {};
}

Result<std::vector<std::uint8_t>> extract_bits_vec(std::span<const std::uint8_t> block,
                                                   const BitRange& range) {
  std::vector<std::uint8_t> out(range.byte_length());
  if (auto st = extract_bits(block, range, out); !st) return Err(st.error());
  return out;
}

}  // namespace dip::bytes
