#include "dip/bytes/hex.hpp"

#include <array>
#include <cctype>

namespace dip::bytes {

namespace {
constexpr std::array<char, 16> kDigits = {'0', '1', '2', '3', '4', '5', '6', '7',
                                          '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};

int nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Result<std::vector<std::uint8_t>> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return Err(Error::kMalformed);
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Err(Error::kMalformed);
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string hex_dump(std::span<const std::uint8_t> data) {
  std::string out;
  for (std::size_t line = 0; line < data.size(); line += 16) {
    // Offset column.
    char off[24];
    std::snprintf(off, sizeof(off), "%06zx  ", line);
    out += off;
    const std::size_t n = std::min<std::size_t>(16, data.size() - line);
    for (std::size_t i = 0; i < 16; ++i) {
      if (i < n) {
        out.push_back(kDigits[data[line + i] >> 4]);
        out.push_back(kDigits[data[line + i] & 0xF]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
      if (i == 7) out.push_back(' ');
    }
    out += " |";
    for (std::size_t i = 0; i < n; ++i) {
      const char c = static_cast<char>(data[line + i]);
      out.push_back(std::isprint(static_cast<unsigned char>(c)) ? c : '.');
    }
    out += "|\n";
  }
  return out;
}

}  // namespace dip::bytes
