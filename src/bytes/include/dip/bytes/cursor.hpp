// Big-endian byte cursors for wire-format parsing and serialization.
//
// Network headers are big-endian; Reader/Writer provide bounds-checked
// sequential access over a caller-owned span, per the repo-wide rule that
// wire codecs never own memory.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "dip/bytes/expected.hpp"

namespace dip::bytes {

/// Bounds-checked big-endian reader over a borrowed byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

  [[nodiscard]] Result<std::uint8_t> u8() noexcept {
    if (remaining() < 1) return Err(Error::kTruncated);
    return data_[pos_++];
  }

  [[nodiscard]] Result<std::uint16_t> u16() noexcept {
    if (remaining() < 2) return Err(Error::kTruncated);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] Result<std::uint32_t> u32() noexcept {
    if (remaining() < 4) return Err(Error::kTruncated);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }

  [[nodiscard]] Result<std::uint64_t> u64() noexcept {
    if (remaining() < 8) return Err(Error::kTruncated);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }

  /// Borrow the next n bytes without copying.
  [[nodiscard]] Result<std::span<const std::uint8_t>> bytes(std::size_t n) noexcept {
    if (remaining() < n) return Err(Error::kTruncated);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Copy the next dst.size() bytes into dst.
  [[nodiscard]] Status read_into(std::span<std::uint8_t> dst) noexcept {
    if (remaining() < dst.size()) return Unexpected{Error::kTruncated};
    if (!dst.empty()) std::memcpy(dst.data(), data_.data() + pos_, dst.size());
    pos_ += dst.size();
    return {};
  }

  [[nodiscard]] Status skip(std::size_t n) noexcept {
    if (remaining() < n) return Unexpected{Error::kTruncated};
    pos_ += n;
    return {};
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Bounds-checked big-endian writer over a borrowed byte span.
class Writer {
 public:
  explicit Writer(std::span<std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Bytes written so far, viewed as a span over the destination.
  [[nodiscard]] std::span<const std::uint8_t> written() const noexcept {
    return data_.subspan(0, pos_);
  }

  [[nodiscard]] Status u8(std::uint8_t v) noexcept {
    if (remaining() < 1) return Unexpected{Error::kOverflow};
    data_[pos_++] = v;
    return {};
  }

  [[nodiscard]] Status u16(std::uint16_t v) noexcept {
    if (remaining() < 2) return Unexpected{Error::kOverflow};
    data_[pos_] = static_cast<std::uint8_t>(v >> 8);
    data_[pos_ + 1] = static_cast<std::uint8_t>(v);
    pos_ += 2;
    return {};
  }

  [[nodiscard]] Status u32(std::uint32_t v) noexcept {
    if (remaining() < 4) return Unexpected{Error::kOverflow};
    for (int i = 3; i >= 0; --i) {
      data_[pos_++] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return {};
  }

  [[nodiscard]] Status u64(std::uint64_t v) noexcept {
    if (remaining() < 8) return Unexpected{Error::kOverflow};
    for (int i = 7; i >= 0; --i) {
      data_[pos_++] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return {};
  }

  [[nodiscard]] Status bytes(std::span<const std::uint8_t> src) noexcept {
    if (remaining() < src.size()) return Unexpected{Error::kOverflow};
    if (!src.empty()) std::memcpy(data_.data() + pos_, src.data(), src.size());
    pos_ += src.size();
    return {};
  }

  /// Write n zero bytes (reserved fields, padding).
  [[nodiscard]] Status zero(std::size_t n) noexcept {
    if (remaining() < n) return Unexpected{Error::kOverflow};
    std::memset(data_.data() + pos_, 0, n);
    pos_ += n;
    return {};
  }

 private:
  std::span<std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dip::bytes
