// Simulated-time conventions shared by the PIT, netsim, and telemetry.
//
// All simulated clocks are unsigned nanoseconds from an arbitrary epoch.
// Wall-clock time never appears in protocol logic — the simulator is
// deterministic.
#pragma once

#include <cstdint>

namespace dip {

/// Nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// Duration in nanoseconds.
using SimDuration = std::uint64_t;

inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

}  // namespace dip
