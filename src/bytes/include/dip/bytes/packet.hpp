// Packet buffer with headroom.
//
// A Packet owns a contiguous byte region with reserved headroom so that
// border routers and tunnel endpoints (§2.4) can prepend or strip headers
// without copying the payload. Layout:
//
//   [ headroom ........ | data ................. | tailroom ]
//   ^ storage begin     ^ data_begin_            ^ data_end_
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"

namespace dip::bytes {

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 128;

  Packet() : Packet(0, kDefaultHeadroom) {}

  /// A packet with `size` zero bytes of data and the given headroom.
  explicit Packet(std::size_t size, std::size_t headroom = kDefaultHeadroom)
      : storage_(headroom + size), data_begin_(headroom), data_end_(headroom + size) {}

  /// A packet whose data is a copy of `content`.
  explicit Packet(std::span<const std::uint8_t> content,
                  std::size_t headroom = kDefaultHeadroom)
      : storage_(headroom + content.size()),
        data_begin_(headroom),
        data_end_(headroom + content.size()) {
    if (!content.empty()) {
      std::memcpy(storage_.data() + data_begin_, content.data(), content.size());
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_end_ - data_begin_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t headroom() const noexcept { return data_begin_; }

  [[nodiscard]] std::span<std::uint8_t> data() noexcept {
    return {storage_.data() + data_begin_, size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept {
    return {storage_.data() + data_begin_, size()};
  }

  /// Prepend n bytes (returned span is the new front region, zero-filled).
  /// Reallocates only if headroom is insufficient.
  std::span<std::uint8_t> push_front(std::size_t n) {
    if (n > data_begin_) {
      grow_headroom(n);
    }
    data_begin_ -= n;
    std::memset(storage_.data() + data_begin_, 0, n);
    return {storage_.data() + data_begin_, n};
  }

  /// Remove n bytes from the front.
  [[nodiscard]] Status pop_front(std::size_t n) noexcept {
    if (n > size()) return Unexpected{Error::kTruncated};
    data_begin_ += n;
    return {};
  }

  /// Append n zero bytes at the tail; returns the new tail region.
  std::span<std::uint8_t> push_back(std::size_t n) {
    if (data_end_ + n > storage_.size()) {
      storage_.resize(data_end_ + n);
    } else {
      std::memset(storage_.data() + data_end_, 0, n);
    }
    data_end_ += n;
    return {storage_.data() + data_end_ - n, n};
  }

  /// Remove n bytes from the tail.
  [[nodiscard]] Status pop_back(std::size_t n) noexcept {
    if (n > size()) return Unexpected{Error::kTruncated};
    data_end_ -= n;
    return {};
  }

  /// Deep copy (headroom preserved).
  [[nodiscard]] Packet clone() const { return *this; }

  friend bool operator==(const Packet& a, const Packet& b) {
    const auto da = a.data();
    const auto db = b.data();
    return da.size() == db.size() &&
           (da.empty() || std::memcmp(da.data(), db.data(), da.size()) == 0);
  }

 private:
  void grow_headroom(std::size_t need) {
    const std::size_t extra = need - data_begin_ + kDefaultHeadroom;
    std::vector<std::uint8_t> fresh(storage_.size() + extra);
    std::memcpy(fresh.data() + data_begin_ + extra, storage_.data() + data_begin_, size());
    storage_ = std::move(fresh);
    data_begin_ += extra;
    data_end_ += extra;
  }

  std::vector<std::uint8_t> storage_;
  std::size_t data_begin_;
  std::size_t data_end_;
};

}  // namespace dip::bytes
