// Hex encoding helpers for logs, tests and examples.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dip/bytes/expected.hpp"

namespace dip::bytes {

/// Lowercase hex string of a byte span ("deadbeef").
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

/// Parse a hex string (even length, [0-9a-fA-F]) into bytes.
[[nodiscard]] Result<std::vector<std::uint8_t>> from_hex(std::string_view hex);

/// Multi-line hexdump with offsets, 16 bytes per line, for examples/debugging.
[[nodiscard]] std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace dip::bytes
