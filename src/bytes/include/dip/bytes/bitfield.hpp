// Bit-addressed field access over byte blocks.
//
// DIP FN triples address their target field by *bit* offset and *bit* length
// within the FN-locations block (§2.2). Most compositions in the paper use
// byte-aligned fields, so extract/inject keep a byte-aligned memcpy fast path
// and fall back to a shifting slow path for arbitrary alignment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"

namespace dip::bytes {

/// A bit range [bit_offset, bit_offset + bit_length) within a byte block.
struct BitRange {
  std::uint32_t bit_offset = 0;
  std::uint32_t bit_length = 0;

  [[nodiscard]] constexpr std::uint32_t end_bit() const noexcept {
    return bit_offset + bit_length;
  }
  [[nodiscard]] constexpr bool byte_aligned() const noexcept {
    return (bit_offset % 8) == 0 && (bit_length % 8) == 0;
  }
  /// Number of bytes needed to hold the extracted field (MSB-first packing).
  [[nodiscard]] constexpr std::size_t byte_length() const noexcept {
    return (bit_length + 7) / 8;
  }
  friend constexpr bool operator==(const BitRange&, const BitRange&) = default;
};

/// True iff the range lies fully inside a block of block_size bytes.
[[nodiscard]] constexpr bool fits(const BitRange& r, std::size_t block_size) noexcept {
  return static_cast<std::size_t>(r.end_bit()) <= block_size * 8 && r.bit_length > 0;
}

/// Extract `range` from `block` into `out` (MSB-first; the field's first bit
/// becomes the MSB of out[0]; a trailing partial byte is left-justified).
/// `out` must be at least range.byte_length() bytes.
[[nodiscard]] Status extract_bits(std::span<const std::uint8_t> block, const BitRange& range,
                                  std::span<std::uint8_t> out) noexcept;

/// Inject `field` (packed as produced by extract_bits) into `block` at `range`.
/// Bits of `block` outside the range are preserved.
[[nodiscard]] Status inject_bits(std::span<std::uint8_t> block, const BitRange& range,
                                 std::span<const std::uint8_t> field) noexcept;

/// Extract up to 64 bits as an integer (the field's last bit becomes bit 0).
[[nodiscard]] Result<std::uint64_t> extract_uint(std::span<const std::uint8_t> block,
                                                 const BitRange& range) noexcept;

/// Inject the low range.bit_length bits of `value` into `block` at `range`.
[[nodiscard]] Status inject_uint(std::span<std::uint8_t> block, const BitRange& range,
                                 std::uint64_t value) noexcept;

/// Convenience: extract into a freshly allocated vector.
[[nodiscard]] Result<std::vector<std::uint8_t>> extract_bits_vec(
    std::span<const std::uint8_t> block, const BitRange& range);

}  // namespace dip::bytes
