// Lightweight expected<T, E> used across the DIP libraries.
//
// C++20 has no std::expected; this is a minimal, allocation-free stand-in
// sufficient for parse/serialize paths. E must be a trivially copyable
// enum-like type.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace dip::bytes {

/// Generic error codes shared by the wire-format substrates.
enum class Error {
  kTruncated,        ///< input ended before a complete field
  kOverflow,         ///< output buffer too small
  kMalformed,        ///< structurally invalid input
  kOutOfRange,       ///< offset/length outside the addressed block
  kUnsupported,      ///< valid but not supported by this node
  kChecksum,         ///< integrity check failed
  kState,            ///< operation invalid in the current state
};

/// Human-readable name for an Error (for logs and test diagnostics).
constexpr const char* to_string(Error e) noexcept {
  switch (e) {
    case Error::kTruncated: return "truncated";
    case Error::kOverflow: return "overflow";
    case Error::kMalformed: return "malformed";
    case Error::kOutOfRange: return "out-of-range";
    case Error::kUnsupported: return "unsupported";
    case Error::kChecksum: return "checksum";
    case Error::kState: return "state";
  }
  return "unknown";
}

/// Tag type for constructing an Expected holding an error.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// Minimal expected: holds either a T or an E.
template <typename T, typename E = Error>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> u) : storage_(std::in_place_index<1>, u.error) {}

  [[nodiscard]] bool has_value() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] E error() const {
    assert(!has_value());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, E> storage_;
};

/// Expected<void>: success or an error code.
template <typename E>
class [[nodiscard]] Expected<void, E> {
 public:
  Expected() : ok_(true), error_{} {}
  Expected(Unexpected<E> u) : ok_(false), error_(u.error) {}

  [[nodiscard]] bool has_value() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  [[nodiscard]] E error() const {
    assert(!ok_);
    return error_;
  }

 private:
  bool ok_;
  E error_;
};

template <typename T>
using Result = Expected<T, Error>;
using Status = Expected<void, Error>;

/// Convenience: build an error result.
inline Unexpected<Error> Err(Error e) { return Unexpected<Error>{e}; }

}  // namespace dip::bytes
