// Host-side packet processing — the other half of Algorithm 1.
//
// Routers skip host-tagged FNs (tag bit = 1); hosts run exactly those.
// "Finally, the host receives and verifies the packet by performing F_ver"
// (§2.3). HostEngine walks the FN list of a received packet, executes the
// host-tagged operations it knows (F_ver against the session store, F_int
// telemetry readout), and reports a delivery verdict plus the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dip/core/header.hpp"
#include "dip/host/session_store.hpp"
#include "dip/opt/opt.hpp"
#include "dip/telemetry/telemetry.hpp"

namespace dip::host {

enum class DeliveryStatus : std::uint8_t {
  kDelivered,      ///< all host FNs passed; payload is good
  kVerifyFailed,   ///< F_ver rejected the packet
  kUnknownSession, ///< F_ver present but no session negotiated for it
  kMalformed,
};

[[nodiscard]] std::string_view to_string(DeliveryStatus s) noexcept;

struct Delivery {
  DeliveryStatus status = DeliveryStatus::kMalformed;
  /// Payload bytes (views into the caller's packet).
  std::span<const std::uint8_t> payload;
  /// Set when F_ver ran: the detailed OPT verdict.
  std::optional<opt::VerifyResult> verify_result;
  /// Set when an F_int field was present: the collected per-hop records.
  std::optional<telemetry::TelemetryReport> telemetry;
};

class HostEngine {
 public:
  explicit HostEngine(SessionStore* sessions = nullptr) : sessions_(sessions) {}

  /// Freshness window for F_ver timestamps (0 = disabled).
  void set_freshness(std::uint32_t now_seconds, std::uint32_t window) {
    now_seconds_ = now_seconds;
    freshness_window_ = window;
  }

  /// Process a received DIP packet: parse, run host-tagged FNs, deliver.
  /// The returned spans alias `packet`.
  [[nodiscard]] Delivery receive(std::span<const std::uint8_t> packet) const;

 private:
  SessionStore* sessions_;
  std::uint32_t now_seconds_ = 0;
  std::uint32_t freshness_window_ = 0;
};

}  // namespace dip::host
