// Host session store: the keys OPT negotiation produced, indexed by
// session ID so F_ver can find them when a packet arrives.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "dip/opt/session.hpp"

namespace dip::host {

class SessionStore {
 public:
  void add(opt::Session session) {
    sessions_[key_of(session.id)] = std::move(session);
  }

  [[nodiscard]] const opt::Session* find(const crypto::SessionId& id) const {
    const auto it = sessions_.find(key_of(id));
    if (it == sessions_.end()) return nullptr;
    // Guard against the (unlikely) 64-bit key collision.
    return it->second.id == id ? &it->second : nullptr;
  }

  bool remove(const crypto::SessionId& id) { return sessions_.erase(key_of(id)) > 0; }

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }

 private:
  static std::uint64_t key_of(const crypto::SessionId& id) noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | id[i];
    return v;
  }

  std::unordered_map<std::uint64_t, opt::Session> sessions_;
};

}  // namespace dip::host
