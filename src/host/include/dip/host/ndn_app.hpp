// NDN application endpoints: consumer (expresses interests, retransmits on
// timeout) and producer (serves named content, optionally with OPT tags and
// F_pass labels).
//
// These sit on top of netsim::HostNode and give examples/tests a realistic
// application layer instead of hand-rolled receiver lambdas.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "dip/host/retry.hpp"
#include "dip/host/session_store.hpp"
#include "dip/opt/opt.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/security/pass.hpp"

namespace dip::host {

/// Consumer knobs (namespace scope so brace defaults work as default args).
struct ConsumerConfig {
  SimDuration retransmit_timeout = 100 * kMillisecond;
  std::uint32_t max_retries = 3;
  /// Timeout multiplier per retransmission (1.0 = fixed interval, the
  /// historical behaviour; >1 backs off under sustained loss).
  double backoff = 1.0;
  /// Ceiling for the backed-off timeout.
  SimDuration max_timeout = 2 * kSecond;

  [[nodiscard]] RetryPolicy policy() const noexcept {
    return {max_retries, retransmit_timeout, backoff, max_timeout};
  }
};

class NdnConsumer {
 public:
  using Config = ConsumerConfig;

  /// `node` must outlive the consumer and be attached to a network.
  NdnConsumer(netsim::HostNode& node, netsim::FaceId face,
              Config config = ConsumerConfig());

  using DataHandler =
      std::function<void(const fib::Name&, std::span<const std::uint8_t> payload)>;
  using FailureHandler = std::function<void(const fib::Name&)>;

  /// Express an interest; `on_data` fires at most once, `on_failure` fires
  /// after the final retry times out.
  void express_interest(const fib::Name& name, DataHandler on_data,
                        FailureHandler on_failure = {});

  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept { return retx_; }

 private:
  struct PendingInterest {
    fib::Name name;
    DataHandler on_data;
    FailureHandler on_failure;
    std::uint32_t retries_left = 0;
    std::uint32_t attempt = 0;  ///< transmissions so far minus one (backoff)
    std::uint64_t epoch = 0;  ///< invalidates stale timers
  };

  void on_packet(netsim::FaceId face, netsim::PacketBytes packet, SimTime now);
  void send_interest(std::uint32_t code);
  void arm_timer(std::uint32_t code, std::uint64_t epoch);

  netsim::HostNode& node_;
  netsim::FaceId face_;
  Config config_;
  std::unordered_map<std::uint32_t, PendingInterest> pending_;
  std::uint64_t retx_ = 0;
  std::uint64_t next_epoch_ = 1;
};

/// Producer knobs.
struct ProducerOptions {
  /// Sign data with OPT tags from this session (NDN+OPT, §3).
  std::optional<opt::Session> opt_session;
  std::uint32_t opt_timestamp = 0;
  /// Attach an F_pass label issued under this AS key (§2.4).
  std::optional<crypto::Block> pass_key;
};

class NdnProducer {
 public:
  using Options = ProducerOptions;

  NdnProducer(netsim::HostNode& node, netsim::FaceId face,
              Options options = ProducerOptions());

  /// Serve `payload` under `name`.
  void publish(const fib::Name& name, std::vector<std::uint8_t> payload);

  [[nodiscard]] std::uint64_t interests_served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t interests_unknown() const noexcept { return unknown_; }

 private:
  void on_packet(netsim::FaceId face, netsim::PacketBytes packet, SimTime now);
  [[nodiscard]] netsim::PacketBytes make_data(std::uint32_t code,
                                              std::span<const std::uint8_t> payload) const;

  netsim::HostNode& node_;
  netsim::FaceId face_;
  Options options_;
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> content_;
  std::uint64_t served_ = 0;
  std::uint64_t unknown_ = 0;
};

}  // namespace dip::host
