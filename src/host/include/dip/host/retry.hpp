// Host-side retransmission: a timeout/backoff policy and a generic
// retry driver over HostNode.
//
// Chaos links (netsim FaultPlan) drop, corrupt, and blackhole packets; the
// network layer only promises best effort, so host sessions that need an
// answer — OPT-verified requests, NDN interests — must retransmit. The
// policy is deliberately tiny: a retry budget and an exponentially backed
// off timeout with a ceiling, driven entirely by the simulated event loop
// so recovery behaviour replays deterministically with the fault trace.
#pragma once

#include <cstdint>
#include <functional>

#include "dip/netsim/dip_node.hpp"

namespace dip::host {

/// Timeout/backoff schedule shared by ReliableSender and NdnConsumer.
struct RetryPolicy {
  std::uint32_t max_retries = 3;
  SimDuration initial_timeout = 100 * kMillisecond;
  /// Timeout multiplier per attempt (1.0 = fixed interval).
  double backoff = 2.0;
  /// Ceiling for the backed-off timeout.
  SimDuration max_timeout = 2 * kSecond;

  /// The timeout armed after transmission `attempt` (0 = the original).
  [[nodiscard]] SimDuration timeout_for(std::uint32_t attempt) const noexcept {
    const double cap = static_cast<double>(max_timeout);
    double t = static_cast<double>(initial_timeout);
    for (std::uint32_t i = 0; i < attempt && t < cap; ++i) t *= backoff;
    return t < cap ? static_cast<SimDuration>(t) : max_timeout;
  }
};

/// Retransmits one in-flight request until acknowledge() or the retry
/// budget runs out. The caller keeps ownership of the response matching
/// (HostNode receiver, OPT verification, ...) and calls acknowledge() when
/// satisfied; the factory is re-invoked per attempt so retransmissions can
/// refresh timestamps or sequence numbers.
class ReliableSender {
 public:
  using PacketFactory = std::function<netsim::PacketBytes(std::uint32_t attempt)>;
  using FailureHandler = std::function<void()>;
  /// Opaque token naming one send() request; responses must quote it back.
  using Epoch = std::uint64_t;

  /// `node` must outlive the sender and be attached to a network.
  ReliableSender(netsim::HostNode& node, netsim::FaceId face,
                 RetryPolicy policy = {})
      : node_(node), face_(face), policy_(policy) {}

  /// Transmit factory(0) now; retransmit on each timeout until
  /// acknowledge(), then give up after max_retries and fire `on_failure`.
  /// A new send() supersedes any request still in flight. Returns the
  /// epoch token for acknowledging this request.
  Epoch send(PacketFactory factory, FailureHandler on_failure = {});

  /// The response for `epoch` arrived; cancel its retransmission. A stale
  /// token — e.g. a link-duplicated ACK of a request the sender has since
  /// superseded — is ignored, so a late duplicate can never cancel a newer
  /// in-flight send. Returns true iff this call retired the request.
  bool acknowledge(Epoch epoch) noexcept {
    if (!pending_ || epoch != epoch_) return false;
    pending_ = false;
    return true;
  }

  /// Token of the most recent send() (what a fresh ACK should quote).
  [[nodiscard]] Epoch epoch() const noexcept { return epoch_; }

  [[nodiscard]] bool pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept { return retx_; }

 private:
  void arm(std::uint64_t epoch);

  netsim::HostNode& node_;
  netsim::FaceId face_;
  RetryPolicy policy_;
  PacketFactory factory_;
  FailureHandler on_failure_;
  bool pending_ = false;
  std::uint32_t attempt_ = 0;
  std::uint64_t epoch_ = 0;  ///< invalidates timers of superseded sends
  std::uint64_t retx_ = 0;
};

}  // namespace dip::host
