#include "dip/host/host_engine.hpp"

namespace dip::host {

std::string_view to_string(DeliveryStatus s) noexcept {
  switch (s) {
    case DeliveryStatus::kDelivered: return "delivered";
    case DeliveryStatus::kVerifyFailed: return "verify-failed";
    case DeliveryStatus::kUnknownSession: return "unknown-session";
    case DeliveryStatus::kMalformed: return "malformed";
  }
  return "unknown";
}

Delivery HostEngine::receive(std::span<const std::uint8_t> packet) const {
  Delivery out;
  const auto header = core::DipHeader::parse(packet);
  if (!header) return out;

  out.payload = packet.subspan(header->wire_size());
  out.status = DeliveryStatus::kDelivered;

  for (const core::FnTriple& fn : header->fns) {
    // Telemetry readout is useful on arrival whether tagged or not.
    if (fn.key() == core::OpKey::kTelemetry) {
      const auto range = fn.range();
      if (range.byte_aligned() && bytes::fits(range, header->locations.size())) {
        const auto field = std::span<const std::uint8_t>(header->locations)
                               .subspan(range.bit_offset / 8, range.byte_length());
        if (auto report = telemetry::read_telemetry(field)) {
          out.telemetry = std::move(*report);
        }
      }
      continue;
    }

    if (!fn.host_tagged()) continue;  // router FN: nothing for us

    switch (fn.key()) {
      case core::OpKey::kVer: {
        const auto range = fn.range();
        if (!range.byte_aligned() || !bytes::fits(range, header->locations.size()) ||
            range.bit_length < opt::kBlockBytes * 8) {
          out.status = DeliveryStatus::kMalformed;
          return out;
        }
        const std::size_t block_offset = range.bit_offset / 8;
        // Find the session by the ID carried in the block.
        const crypto::SessionId sid = crypto::block_from(
            std::span<const std::uint8_t>(header->locations)
                .subspan(block_offset + opt::kSessionIdOffset, 16));
        if (sessions_ == nullptr) {
          out.status = DeliveryStatus::kUnknownSession;
          return out;
        }
        const opt::Session* session = sessions_->find(sid);
        if (session == nullptr) {
          out.status = DeliveryStatus::kUnknownSession;
          return out;
        }
        const auto verdict =
            opt::verify_packet(*session, header->locations, out.payload, now_seconds_,
                               freshness_window_, block_offset);
        out.verify_result = verdict;
        if (verdict != opt::VerifyResult::kOk) {
          out.status = DeliveryStatus::kVerifyFailed;
          return out;
        }
        break;
      }
      default:
        // Unknown host operation: per §2.4 semantics, ignore (it is not
        // path-critical once the packet has already arrived).
        break;
    }
  }
  return out;
}

}  // namespace dip::host
