#include "dip/host/retry.hpp"

namespace dip::host {

ReliableSender::Epoch ReliableSender::send(PacketFactory factory,
                                           FailureHandler on_failure) {
  factory_ = std::move(factory);
  on_failure_ = std::move(on_failure);
  pending_ = true;
  attempt_ = 0;
  const Epoch epoch = ++epoch_;
  node_.send(face_, factory_(0));
  arm(epoch);
  return epoch;
}

void ReliableSender::arm(std::uint64_t epoch) {
  node_.network()->loop().schedule_in(
      policy_.timeout_for(attempt_), [this, epoch] {
        if (!pending_ || epoch != epoch_) return;  // satisfied or superseded
        if (attempt_ >= policy_.max_retries) {
          pending_ = false;
          if (on_failure_) on_failure_();
          return;
        }
        ++attempt_;
        ++retx_;
        node_.send(face_, factory_(attempt_));
        arm(epoch);
      });
}

}  // namespace dip::host
