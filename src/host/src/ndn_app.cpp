#include "dip/host/ndn_app.hpp"

#include "dip/core/builder.hpp"

namespace dip::host {

// ---------- consumer ----------

NdnConsumer::NdnConsumer(netsim::HostNode& node, netsim::FaceId face, Config config)
    : node_(node), face_(face), config_(config) {
  node_.set_receiver([this](netsim::FaceId f, netsim::PacketBytes p, SimTime now) {
    on_packet(f, std::move(p), now);
  });
}

void NdnConsumer::express_interest(const fib::Name& name, DataHandler on_data,
                                   FailureHandler on_failure) {
  const std::uint32_t code = ndn::encode_name32(name);
  PendingInterest pi;
  pi.name = name;
  pi.on_data = std::move(on_data);
  pi.on_failure = std::move(on_failure);
  pi.retries_left = config_.max_retries;
  pi.epoch = next_epoch_++;
  const std::uint64_t epoch = pi.epoch;
  pending_[code] = std::move(pi);

  send_interest(code);
  arm_timer(code, epoch);
}

void NdnConsumer::send_interest(std::uint32_t code) {
  node_.send(face_, ndn::make_interest_header32(code)->serialize());
}

void NdnConsumer::arm_timer(std::uint32_t code, std::uint64_t epoch) {
  const auto armed = pending_.find(code);
  if (armed == pending_.end()) return;
  const SimDuration timeout = config_.policy().timeout_for(armed->second.attempt);
  node_.network()->loop().schedule_in(timeout, [this, code, epoch] {
    const auto it = pending_.find(code);
    if (it == pending_.end() || it->second.epoch != epoch) return;  // satisfied
    PendingInterest& pi = it->second;
    if (pi.retries_left == 0) {
      const auto on_failure = std::move(pi.on_failure);
      const fib::Name name = pi.name;
      pending_.erase(it);
      if (on_failure) on_failure(name);
      return;
    }
    --pi.retries_left;
    ++pi.attempt;
    ++retx_;
    const std::uint64_t fresh = next_epoch_++;
    pi.epoch = fresh;
    send_interest(code);
    arm_timer(code, fresh);
  });
}

void NdnConsumer::on_packet(netsim::FaceId, netsim::PacketBytes packet, SimTime) {
  const auto header = core::DipHeader::parse(packet);
  if (!header || header->fns.empty()) return;
  if (header->fns[0].key() != core::OpKey::kPit) return;  // not a data packet
  const auto code = ndn::extract_name_code(*header);
  if (!code) return;

  const auto it = pending_.find(static_cast<std::uint32_t>(*code));
  if (it == pending_.end()) return;  // unsolicited / already satisfied

  const auto on_data = std::move(it->second.on_data);
  const fib::Name name = it->second.name;
  pending_.erase(it);
  if (on_data) {
    on_data(name,
            std::span<const std::uint8_t>(packet).subspan(header->wire_size()));
  }
}

// ---------- producer ----------

NdnProducer::NdnProducer(netsim::HostNode& node, netsim::FaceId face, Options options)
    : node_(node), face_(face), options_(std::move(options)) {
  node_.set_receiver([this](netsim::FaceId f, netsim::PacketBytes p, SimTime now) {
    on_packet(f, std::move(p), now);
  });
}

void NdnProducer::publish(const fib::Name& name, std::vector<std::uint8_t> payload) {
  content_[ndn::encode_name32(name)] = std::move(payload);
}

netsim::PacketBytes NdnProducer::make_data(
    std::uint32_t code, std::span<const std::uint8_t> payload) const {
  if (options_.opt_session) {
    // NDN+OPT data (§3): tags over the payload, name behind the OPT block.
    const auto header = opt::make_ndn_opt_header(
        code, /*interest=*/false, *options_.opt_session, payload,
        options_.opt_timestamp);
    auto wire = header->serialize();
    wire.insert(wire.end(), payload.begin(), payload.end());
    return wire;
  }

  core::HeaderBuilder b;
  if (options_.pass_key) {
    const crypto::Block label = security::issue_label(*options_.pass_key, payload);
    b.add_router_fn(core::OpKey::kPass, label);
  }
  b.add_router_fn(core::OpKey::kPit, fib::ipv4_from_u32(code).bytes);
  auto wire = b.build()->serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

void NdnProducer::on_packet(netsim::FaceId face, netsim::PacketBytes packet, SimTime) {
  const auto header = core::DipHeader::parse(packet);
  if (!header || header->fns.empty()) return;
  if (header->fns[0].key() != core::OpKey::kFib) return;  // not an interest
  const auto code = ndn::extract_name_code(*header);
  if (!code) return;

  const auto it = content_.find(static_cast<std::uint32_t>(*code));
  if (it == content_.end()) {
    ++unknown_;
    return;
  }
  ++served_;
  node_.send(face, make_data(static_cast<std::uint32_t>(*code), it->second));
}

}  // namespace dip::host
