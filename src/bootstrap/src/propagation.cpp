#include "dip/bootstrap/propagation.hpp"

#include <algorithm>
#include <deque>

namespace dip::bootstrap {

void AsGraph::add_as(AsNumber asn, CapabilitySet capabilities) {
  nodes_[asn].capabilities = std::move(capabilities);
}

bool AsGraph::add_link(AsNumber a, AsNumber b) {
  if (!nodes_.contains(a) || !nodes_.contains(b) || a == b) return false;
  auto& na = nodes_[a].neighbors;
  auto& nb = nodes_[b].neighbors;
  if (std::find(na.begin(), na.end(), b) == na.end()) na.push_back(b);
  if (std::find(nb.begin(), nb.end(), a) == nb.end()) nb.push_back(a);
  return true;
}

const CapabilitySet* AsGraph::capabilities(AsNumber asn) const {
  const auto it = nodes_.find(asn);
  return it == nodes_.end() ? nullptr : &it->second.capabilities;
}

std::vector<AsNumber> AsGraph::shortest_path(AsNumber from, AsNumber to) const {
  if (!nodes_.contains(from) || !nodes_.contains(to)) return {};
  if (from == to) return {from};

  std::unordered_map<AsNumber, AsNumber> parent;
  std::deque<AsNumber> queue{from};
  parent.emplace(from, from);

  while (!queue.empty()) {
    const AsNumber current = queue.front();
    queue.pop_front();
    for (AsNumber next : nodes_.at(current).neighbors) {
      if (parent.contains(next)) continue;
      parent.emplace(next, current);
      if (next == to) {
        std::vector<AsNumber> path{to};
        for (AsNumber hop = to; hop != from;) {
          hop = parent.at(hop);
          path.push_back(hop);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return {};
}

std::optional<CapabilitySet> AsGraph::path_capabilities(
    std::span<const AsNumber> path) const {
  if (path.empty()) return std::nullopt;
  std::optional<CapabilitySet> result;
  for (AsNumber asn : path) {
    const CapabilitySet* caps = capabilities(asn);
    if (caps == nullptr) return std::nullopt;
    result = result ? result->intersect(*caps) : *caps;
  }
  return result;
}

std::optional<CapabilitySet> AsGraph::end_to_end(AsNumber from, AsNumber to) const {
  const auto path = shortest_path(from, to);
  if (path.empty()) return std::nullopt;
  return path_capabilities(path);
}

}  // namespace dip::bootstrap
