#include "dip/bootstrap/dhcp.hpp"

namespace dip::bootstrap {

namespace {
constexpr std::uint8_t kRequestTag = 0x01;
constexpr std::uint8_t kOfferTag = 0x02;

std::vector<std::uint8_t> frame(std::uint8_t tag, const CapabilitySet& set) {
  std::vector<std::uint8_t> out{tag};
  const auto body = set.serialize();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bytes::Result<CapabilitySet> unframe(std::uint8_t tag,
                                     std::span<const std::uint8_t> data) {
  if (data.empty()) return bytes::Err(bytes::Error::kTruncated);
  if (data[0] != tag) return bytes::Err(bytes::Error::kMalformed);
  return CapabilitySet::parse(data.subspan(1));
}
}  // namespace

std::vector<std::uint8_t> DiscoverRequest::serialize() const {
  return frame(kRequestTag, interested);
}

bytes::Result<DiscoverRequest> DiscoverRequest::parse(
    std::span<const std::uint8_t> data) {
  auto set = unframe(kRequestTag, data);
  if (!set) return bytes::Err(set.error());
  return DiscoverRequest{std::move(*set)};
}

std::vector<std::uint8_t> DiscoverOffer::serialize() const {
  return frame(kOfferTag, available);
}

bytes::Result<DiscoverOffer> DiscoverOffer::parse(std::span<const std::uint8_t> data) {
  auto set = unframe(kOfferTag, data);
  if (!set) return bytes::Err(set.error());
  return DiscoverOffer{std::move(*set)};
}

DiscoverOffer BootstrapServer::respond(const DiscoverRequest& request) const {
  if (request.interested.size() == 0) return DiscoverOffer{capabilities_};
  return DiscoverOffer{capabilities_.intersect(request.interested)};
}

std::optional<core::OpKey> BootstrapClient::first_missing(
    std::span<const core::FnTriple> fns) const {
  for (const core::FnTriple& fn : fns) {
    if (!offered_.supports(fn.key())) return fn.key();
  }
  return std::nullopt;
}

}  // namespace dip::bootstrap
