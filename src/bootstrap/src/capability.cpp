#include "dip/bootstrap/capability.hpp"

#include <algorithm>

namespace dip::bootstrap {

bool CapabilitySet::covers(const CapabilitySet& required) const {
  return std::all_of(required.keys_.begin(), required.keys_.end(),
                     [&](core::OpKey k) { return keys_.contains(k); });
}

CapabilitySet CapabilitySet::intersect(const CapabilitySet& other) const {
  CapabilitySet out;
  for (core::OpKey k : keys_) {
    if (other.keys_.contains(k)) out.add(k);
  }
  return out;
}

std::vector<std::uint8_t> CapabilitySet::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(1 + keys_.size() * 2);
  out.push_back(static_cast<std::uint8_t>(keys_.size()));
  for (core::OpKey k : keys_) {  // std::set iterates sorted
    const auto v = static_cast<std::uint16_t>(k);
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

bytes::Result<CapabilitySet> CapabilitySet::parse(std::span<const std::uint8_t> data) {
  if (data.empty()) return bytes::Err(bytes::Error::kTruncated);
  const std::size_t count = data[0];
  if (data.size() < 1 + count * 2) return bytes::Err(bytes::Error::kTruncated);

  CapabilitySet out;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v =
        static_cast<std::uint16_t>((data[1 + 2 * i] << 8) | data[2 + 2 * i]);
    out.add(static_cast<core::OpKey>(v));
  }
  if (out.size() != count) return bytes::Err(bytes::Error::kMalformed);  // dupes
  return out;
}

CapabilitySet full_capability_set() {
  CapabilitySet out = table1_capability_set();
  out.add(core::OpKey::kPass);
  out.add(core::OpKey::kTelemetry);
  return out;
}

CapabilitySet table1_capability_set() {
  return CapabilitySet{
      core::OpKey::kMatch32, core::OpKey::kMatch128, core::OpKey::kSource,
      core::OpKey::kFib,     core::OpKey::kPit,      core::OpKey::kParm,
      core::OpKey::kMac,     core::OpKey::kMark,     core::OpKey::kVer,
      core::OpKey::kDag,     core::OpKey::kIntent,
  };
}

}  // namespace dip::bootstrap
