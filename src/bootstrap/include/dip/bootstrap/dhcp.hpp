// DHCP-like FN discovery between a host and its access AS (§2.3).
//
// A four-byte-framed request/offer exchange: the host asks (optionally
// constraining to FNs it cares about), the AS answers with its capability
// set, and the host checks the offer against the composition it wants to
// send before constructing headers.
#pragma once

#include <optional>

#include "dip/bootstrap/capability.hpp"

namespace dip::bootstrap {

struct DiscoverRequest {
  /// Empty = "tell me everything".
  CapabilitySet interested;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static bytes::Result<DiscoverRequest> parse(
      std::span<const std::uint8_t> data);
};

struct DiscoverOffer {
  CapabilitySet available;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static bytes::Result<DiscoverOffer> parse(
      std::span<const std::uint8_t> data);
};

/// AS side: answer a discovery request from this AS's capability set.
class BootstrapServer {
 public:
  explicit BootstrapServer(CapabilitySet capabilities)
      : capabilities_(std::move(capabilities)) {}

  [[nodiscard]] DiscoverOffer respond(const DiscoverRequest& request) const;

 private:
  CapabilitySet capabilities_;
};

/// Host side: remember the offer; gate header construction on it.
class BootstrapClient {
 public:
  void learn(const DiscoverOffer& offer) { offered_ = offer.available; }

  [[nodiscard]] const CapabilitySet& offered() const noexcept { return offered_; }

  /// The §2.3 host rule: only compose FNs the AS supports. Returns the
  /// first missing key, or nullopt when the composition is sendable.
  [[nodiscard]] std::optional<core::OpKey> first_missing(
      std::span<const core::FnTriple> fns) const;

 private:
  CapabilitySet offered_;
};

}  // namespace dip::bootstrap
