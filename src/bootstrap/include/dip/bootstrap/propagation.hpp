// AS-level FN capability propagation (§2.3).
//
// "One readily deployable mechanism to globally propagate supported FNs
// among ASes is relying on BGP communities."
//
// We model the AS graph and the community-style announcement: each AS
// originates its capability set; announcements flow along edges, and a host
// asking "which FNs work end-to-end to AS X" gets the intersection of the
// capabilities along the chosen path — exactly the information it needs to
// decide whether a path-critical composition (e.g. OPT) is usable (§2.4).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dip/bootstrap/capability.hpp"

namespace dip::bootstrap {

using AsNumber = std::uint32_t;

class AsGraph {
 public:
  /// Register an AS with its capability set. Replaces on repeat.
  void add_as(AsNumber asn, CapabilitySet capabilities);

  /// Undirected peering/provider edge.
  [[nodiscard]] bool add_link(AsNumber a, AsNumber b);

  [[nodiscard]] bool contains(AsNumber asn) const { return nodes_.contains(asn); }
  [[nodiscard]] std::size_t as_count() const noexcept { return nodes_.size(); }

  [[nodiscard]] const CapabilitySet* capabilities(AsNumber asn) const;

  /// Shortest AS path (BFS hop count), or empty if unreachable.
  [[nodiscard]] std::vector<AsNumber> shortest_path(AsNumber from, AsNumber to) const;

  /// Capabilities usable along an explicit AS path: the intersection of
  /// every traversed AS's set. Empty-path -> nullopt.
  [[nodiscard]] std::optional<CapabilitySet> path_capabilities(
      std::span<const AsNumber> path) const;

  /// Convenience: end-to-end capabilities over the shortest path.
  [[nodiscard]] std::optional<CapabilitySet> end_to_end(AsNumber from, AsNumber to) const;

 private:
  struct Node {
    CapabilitySet capabilities;
    std::vector<AsNumber> neighbors;
  };
  std::unordered_map<AsNumber, Node> nodes_;
};

}  // namespace dip::bootstrap
