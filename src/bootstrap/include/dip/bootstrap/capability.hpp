// FN capability sets and their wire form (§2.3 "Available FNs").
//
// "After the host is connected to an accessed AS, it uses bootstrapping
// mechanisms (similar to DHCP) to get the set of available FNs."
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/core/fn.hpp"

namespace dip::bootstrap {

/// The FNs a node/AS supports.
class CapabilitySet {
 public:
  CapabilitySet() = default;
  CapabilitySet(std::initializer_list<core::OpKey> keys) : keys_(keys) {}

  void add(core::OpKey key) { keys_.insert(key); }
  void remove(core::OpKey key) { keys_.erase(key); }
  [[nodiscard]] bool supports(core::OpKey key) const { return keys_.contains(key); }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] const std::set<core::OpKey>& keys() const noexcept { return keys_; }

  /// True iff every key in `required` is present.
  [[nodiscard]] bool covers(const CapabilitySet& required) const;

  /// Set intersection — what survives a path through both.
  [[nodiscard]] CapabilitySet intersect(const CapabilitySet& other) const;

  /// Wire form: count:8 then key:16 each (sorted — canonical).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static bytes::Result<CapabilitySet> parse(
      std::span<const std::uint8_t> data);

  friend bool operator==(const CapabilitySet&, const CapabilitySet&) = default;

 private:
  std::set<core::OpKey> keys_;
};

/// Every FN of the paper's prototype (Table 1 + extensions).
[[nodiscard]] CapabilitySet full_capability_set();

/// Table 1 only (keys 1..11).
[[nodiscard]] CapabilitySet table1_capability_set();

}  // namespace dip::bootstrap
