#include "dip/pisa/ndn_switch.hpp"

#include "dip/core/fn.hpp"
#include "dip/pisa/dip_program.hpp"

namespace dip::pisa {

namespace {
constexpr std::uint32_t kNoEgress = 0xffffffffu;

/// Cheap hardware-style hash (one multiply + shift) from name code to cell.
std::size_t pit_index(std::uint32_t name_code, std::size_t cells) {
  return (static_cast<std::uint64_t>(name_code) * 0x9e3779b1u >> 16) % cells;
}
}  // namespace

NdnSwitchForwarder::NdnSwitchForwarder(std::size_t pit_cells, CostModel model)
    : parser_(build_dip_parser(/*fn_count=*/1, /*locations_bytes=*/4, model)),
      fib_(MatchKind::kLpm, phv_layout::kLocBase),
      pit_(pit_cells),
      model_(model) {
  fib_.set_default_action(
      {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, kNoEgress});
}

void NdnSwitchForwarder::add_name_route(const fib::Ipv4Prefix& code_prefix,
                                        fib::NextHop next_hop) {
  fib::Ipv4Prefix normalized = code_prefix;
  normalized.normalize();
  fib_.add_entry({fib::ipv4_to_u32(normalized.addr), normalized.length, 0,
                  {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, next_hop}});
}

bytes::Result<NdnSwitchForwarder::Outcome> NdnSwitchForwarder::process(
    std::span<const std::uint8_t> packet, std::uint32_t ingress_face) {
  const auto parsed = parser_.parse(packet);
  if (!parsed) return bytes::Err(parsed.error());

  Outcome out;
  out.cycles = parsed->cycles + model_.pipeline_transit;

  Phv phv = parsed->phv;
  const auto op = static_cast<std::uint16_t>(phv.get(phv_layout::kFnBase + 1));
  const auto key = static_cast<core::OpKey>(op & 0x7fff);
  const std::uint32_t name_code = phv.get(phv_layout::kLocBase);
  const std::size_t cell = pit_index(name_code, pit_.size());

  if (key == core::OpKey::kFib) {
    // Interest: record ingress in the PIT cell (test-and-set), then FIB LPM.
    const std::uint32_t old = pit_.execute(RegisterOp::kReadAndSet, cell,
                                           ingress_face + 1, model_, out.cycles);
    if (old != 0) {
      // A request is already pending. The single-cell PIT cannot hold a
      // second face: suppress (and restore the original face we clobbered).
      pit_.execute(RegisterOp::kWrite, cell, old, model_, out.cycles);
      out.status = Status::kSuppressed;
      return out;
    }
    out.cycles += fib_.lookup_cost(model_);
    const Action action = fib_.lookup(phv);
    out.cycles += apply_action(action, phv, model_);
    if (phv.get(phv_layout::kEgressPort) == kNoEgress) {
      // No route: roll back the PIT cell so the name is not poisoned.
      pit_.execute(RegisterOp::kWrite, cell, 0, model_, out.cycles);
      out.status = Status::kDropNoRoute;
      return out;
    }
    out.status = Status::kForwardInterest;
    out.egress = phv.get(phv_layout::kEgressPort);
    return out;
  }

  if (key == core::OpKey::kPit) {
    // Data: read-and-clear the cell; the stored face is the egress.
    const std::uint32_t stored =
        pit_.execute(RegisterOp::kReadAndSet, cell, 0, model_, out.cycles);
    if (stored == 0) {
      out.status = Status::kDropPitMiss;
      return out;
    }
    out.status = Status::kForwardData;
    out.egress = stored - 1;
    return out;
  }

  out.status = Status::kMalformed;
  return out;
}

}  // namespace dip::pisa
