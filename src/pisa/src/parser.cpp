#include "dip/pisa/parser.hpp"

namespace dip::pisa {

bytes::Result<ParseOutcome> Parser::parse(std::span<const std::uint8_t> packet) const {
  if (states_.empty()) return bytes::Err(bytes::Error::kState);

  ParseOutcome out;
  std::size_t cursor = 0;
  std::int16_t state_index = 0;

  while (true) {
    if (out.states_visited >= kMaxStatesVisited) {
      return bytes::Err(bytes::Error::kOverflow);  // parser loop guard
    }
    const ParserState& state = states_[static_cast<std::size_t>(state_index)];
    ++out.states_visited;
    out.cycles += model_.parser_state;

    for (const ExtractOp& op : state.extracts) {
      const std::size_t at = cursor + op.offset;
      if (op.width == 0 || op.width > 4 || at + op.width > packet.size()) {
        return bytes::Err(bytes::Error::kTruncated);
      }
      std::uint32_t v = 0;
      for (std::uint8_t i = 0; i < op.width; ++i) v = (v << 8) | packet[at + i];
      out.phv.set(op.dst, v);
      out.cycles += model_.extract_per_byte * op.width;
    }

    if (cursor + state.advance > packet.size()) {
      return bytes::Err(bytes::Error::kTruncated);
    }
    cursor += state.advance;

    std::int16_t next = state.default_next;
    if (state.has_select) {
      const std::uint32_t key = out.phv.get(state.select);
      for (const Transition& t : state.transitions) {
        if (t.value == key) {
          next = t.next;
          break;
        }
      }
    }

    if (next == ParserState::kAccept) {
      out.consumed = cursor;
      return out;
    }
    if (next == ParserState::kReject ||
        static_cast<std::size_t>(next) >= states_.size()) {
      return bytes::Err(bytes::Error::kMalformed);
    }
    state_index = next;
  }
}

}  // namespace dip::pisa
