#include "dip/pisa/table.hpp"

namespace dip::pisa {

Action MatchTable::lookup(const Phv& phv) const {
  const std::uint32_t key = phv.get(key_);

  switch (kind_) {
    case MatchKind::kExact: {
      for (const TableEntry& e : entries_) {
        if (e.key == key) return e.action;
      }
      break;
    }
    case MatchKind::kLpm: {
      const TableEntry* best = nullptr;
      for (const TableEntry& e : entries_) {
        const std::uint32_t mask =
            e.qualifier == 0 ? 0u : ~0u << (32 - e.qualifier);
        if ((key & mask) == (e.key & mask)) {
          // >= : a re-added entry (same prefix) overrides the older one,
          // matching control-plane replace semantics.
          if (best == nullptr || e.qualifier >= best->qualifier) best = &e;
        }
      }
      if (best) return best->action;
      break;
    }
    case MatchKind::kTernary: {
      const TableEntry* best = nullptr;
      for (const TableEntry& e : entries_) {
        if ((key & e.qualifier) == (e.key & e.qualifier)) {
          // >= : later equal-priority entries override (replace semantics).
          if (best == nullptr || e.priority >= best->priority) best = &e;
        }
      }
      if (best) return best->action;
      break;
    }
  }
  return default_action_;
}

Cycles apply_action(const Action& action, Phv& phv, const CostModel& model) noexcept {
  switch (action.kind) {
    case ActionKind::kNoop:
      return 0;
    case ActionKind::kSetContainer:
      phv.set(action.a, action.imm);
      return model.alu_op;
    case ActionKind::kCopy:
      phv.set(action.a, phv.get(action.b));
      return model.alu_op;
    case ActionKind::kAdd:
      phv.set(action.a, phv.get(action.a) + action.imm);
      return model.alu_op;
    case ActionKind::kXor:
      phv.set(action.a, phv.get(action.a) ^ action.imm);
      return model.alu_op;
    case ActionKind::kXorReg:
      phv.set(action.a, phv.get(action.a) ^ phv.get(action.b));
      return model.alu_op;
    case ActionKind::kDrop:
      phv.set(phv_layout::kDropFlag, 1);
      return model.alu_op;
    case ActionKind::kCryptoRound: {
      // A lightweight stand-in mixing: enough to make data flow observable
      // in tests; the *cost* is what matters for the Figure-2 shape.
      std::uint32_t v = phv.get(action.a);
      v ^= phv.get(action.b);
      v = (v << 7) | (v >> 25);
      v *= 0x9e3779b1u;
      phv.set(action.a, v);
      return model.crypto_round;
    }
  }
  return 0;
}

}  // namespace dip::pisa
