#include "dip/pisa/switch_forwarder.hpp"

#include "dip/pisa/dip_program.hpp"

namespace dip::pisa {

namespace {
// The DIP-32 composition: 2 FNs, 8 location bytes (dst | src).
constexpr std::size_t kFnCount = 2;
constexpr std::size_t kLocBytes = 8;
// Sentinel for "no route": real hardware uses an invalid-port constant.
constexpr std::uint32_t kNoEgress = 0xffffffffu;
}  // namespace

SwitchForwarder::SwitchForwarder(CostModel model)
    : parser_(build_dip_parser(kFnCount, kLocBytes, model)), pipeline_(model) {
  // Stage 0: LPM on the destination container; default = mark no-route.
  Stage stage;
  MatchTable lpm(MatchKind::kLpm, phv_layout::kLocBase);
  lpm.set_default_action({ActionKind::kSetContainer, phv_layout::kEgressPort, 0,
                          kNoEgress});
  stage.tables.push_back(std::move(lpm));
  (void)pipeline_.add_stage(std::move(stage));

  // Stage 1: drop when no route was found (ternary on the egress port).
  Stage drop_stage;
  MatchTable droptab(MatchKind::kTernary, phv_layout::kEgressPort);
  droptab.add_entry({kNoEgress, 0xffffffffu, 1, {ActionKind::kDrop, 0, 0, 0}});
  drop_stage.tables.push_back(std::move(droptab));
  (void)pipeline_.add_stage(std::move(drop_stage));
}

void SwitchForwarder::add_route(const fib::Ipv4Prefix& prefix, fib::NextHop next_hop) {
  fib::Ipv4Prefix normalized = prefix;
  normalized.normalize();
  Stage* stage = pipeline_.mutable_stage(0);
  stage->tables[0].add_entry({fib::ipv4_to_u32(normalized.addr), normalized.length, 0,
                              {ActionKind::kSetContainer, phv_layout::kEgressPort, 0,
                               next_hop}});
  ++routes_;
}

bytes::Result<SwitchForwarder::Outcome> SwitchForwarder::forward(
    std::span<const std::uint8_t> packet) const {
  const auto parsed = parser_.parse(packet);
  if (!parsed) return bytes::Err(parsed.error());

  Phv phv = parsed->phv;
  const PipelineRun run = pipeline_.run(phv);

  Outcome out;
  out.cycles = parsed->cycles + run.cycles;
  if (!run.dropped && phv.get(phv_layout::kEgressPort) != kNoEgress) {
    out.egress = phv.get(phv_layout::kEgressPort);
  }
  return out;
}

}  // namespace dip::pisa
