#include "dip/pisa/table1.hpp"

#include <array>
#include <cstdint>

#include "dip/core/ip.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/opt/session.hpp"
#include "dip/xia/dag.hpp"
#include "dip/xia/xia.hpp"

namespace dip::pisa {

namespace {

[[nodiscard]] crypto::Block block_of(std::uint8_t seed) {
  crypto::Block b{};
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(seed + 7 * i);
  }
  return b;
}

[[nodiscard]] Table1Composition from_header(std::string name,
                                            const bytes::Result<core::DipHeader>& header) {
  Table1Composition c;
  c.name = std::move(name);
  if (header.has_value()) {
    c.fns = header->fns;
    c.locations_bytes = header->locations.size();
  }
  return c;
}

[[nodiscard]] std::vector<Table1Composition> build() {
  std::vector<Table1Composition> out;

  const auto dst4 = *fib::parse_ipv4("10.64.1.1");
  const auto src4 = *fib::parse_ipv4("192.0.2.1");
  out.push_back(from_header("dip32", core::make_dip32_header(dst4, src4)));

  const auto dst6 = *fib::parse_ipv6("2001:db8::1");
  const auto src6 = *fib::parse_ipv6("2001:db8:ffff::2");
  out.push_back(from_header("dip128", core::make_dip128_header(dst6, src6)));

  out.push_back(from_header("ndn", ndn::make_interest_header32(0x0A010001u)));

  const std::array<crypto::Block, 3> router_secrets = {block_of(0x11), block_of(0x22),
                                                       block_of(0x33)};
  const opt::Session session =
      opt::negotiate_session(block_of(0x01), router_secrets, block_of(0x44));
  const std::array<std::uint8_t, 32> payload = [] {
    std::array<std::uint8_t, 32> p{};
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = static_cast<std::uint8_t>(i);
    return p;
  }();
  constexpr std::uint32_t kTimestamp = 0x5eed0001u;
  out.push_back(from_header("opt", opt::make_opt_header(session, payload, kTimestamp)));

  out.push_back(from_header(
      "ndn_opt", opt::make_ndn_opt_header(0x0A010001u, /*interest=*/true, session,
                                          payload, kTimestamp)));

  const xia::Dag dag =
      xia::make_service_dag(xia::xid_from_label("t1-ad"), xia::xid_from_label("t1-hid"),
                            fib::XidType::kSid, xia::xid_from_label("t1-sid"));
  out.push_back(from_header("xia", xia::make_xia_header(dag)));
  return out;
}

}  // namespace

const std::vector<Table1Composition>& table1_compositions() {
  static const std::vector<Table1Composition> kCompositions = build();
  return kCompositions;
}

}  // namespace dip::pisa
