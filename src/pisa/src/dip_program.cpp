#include "dip/pisa/dip_program.hpp"

#include <algorithm>

namespace dip::pisa {

using core::FnTriple;
using core::OpKey;

bytes::Status validate_program(std::span<const FnTriple> fns, std::size_t locations_bytes,
                               const TofinoConstraints& limits) {
  if (fns.size() > limits.max_unrolled_fns) {
    return bytes::Unexpected{bytes::Error::kUnsupported};  // ladder too short
  }
  if (locations_bytes > limits.max_locations_bytes) {
    return bytes::Unexpected{bytes::Error::kOverflow};  // PHV exhausted
  }
  for (const FnTriple& fn : fns) {
    if (limits.require_byte_aligned && !fn.range().byte_aligned()) {
      return bytes::Unexpected{bytes::Error::kMalformed};  // variable slicing
    }
    if (!bytes::fits(fn.range(), locations_bytes)) {
      return bytes::Unexpected{bytes::Error::kOutOfRange};
    }
  }
  return {};
}

FnSwitchProfile fn_switch_profile(const FnTriple& fn, bool aes_mac) noexcept {
  FnSwitchProfile p;
  const std::uint32_t field_bytes =
      static_cast<std::uint32_t>(fn.range().byte_length());

  switch (fn.key()) {
    case OpKey::kMatch32:
      p.lpm_lookups = 1;
      p.alu_ops = 1;  // set egress
      break;
    case OpKey::kMatch128:
      // 128-bit keys span four 32-bit containers: chained LPM lookups.
      p.lpm_lookups = 2;
      p.alu_ops = 1;
      break;
    case OpKey::kSource:
      break;  // carried, not acted upon
    case OpKey::kFib:
      p.lpm_lookups = 1;    // content-name LPM
      p.exact_lookups = 1;  // content-store probe (footnote 2, may be absent)
      p.alu_ops = 1;
      break;
    case OpKey::kPit:
      p.exact_lookups = 1;  // PIT is exact-match on the name code
      p.alu_ops = 2;        // consume entry + set egress set
      break;
    case OpKey::kParm:
      p.exact_lookups = 1;  // session table
      p.crypto_rounds = 1;  // one PRF call derives the dynamic key
      p.alu_ops = 1;
      break;
    case OpKey::kMac: {
      // CMAC blocks over the covered field.
      const std::uint32_t blocks = std::max(1u, (field_bytes + 15) / 16);
      if (aes_mac) {
        p.crypto_rounds = blocks * 10;  // 10 AES rounds per block
        p.resubmits = 1;                // "the AES needs to resubmit the packet"
      } else {
        p.crypto_rounds = blocks * 2;   // 2EM: two public permutations per block
      }
      p.alu_ops = 2;  // whitening XORs
      break;
    }
    case OpKey::kMark:
      p.alu_ops = 2;  // PVF chaining update
      break;
    case OpKey::kVer:
      break;  // host-tagged; the switch skips it
    case OpKey::kDag:
      p.ternary_lookups = 2;  // DAG node walk w/ fallback
      p.alu_ops = 2;
      break;
    case OpKey::kIntent:
      p.exact_lookups = 1;
      p.alu_ops = 1;
      break;
    case OpKey::kPass:
      p.exact_lookups = 1;
      p.crypto_rounds = 2;  // label verification MAC
      break;
    case OpKey::kTelemetry:
      p.alu_ops = 3;  // append metadata
      break;
    case OpKey::kCc:
      p.exact_lookups = 1;  // per-flow policy table
      p.crypto_rounds = 2;  // verify + re-stamp the MAC-protected CC tag
      p.alu_ops = 1;
      break;
    case OpKey::kDps:
      p.exact_lookups = 1;  // CSFQ bucket
      p.alu_ops = 3;        // stateful rate-estimator read-modify-write
      break;
    case OpKey::kHvf:
      p.exact_lookups = 1;  // per-hop session key
      p.crypto_rounds = 2;  // EPIC verify-and-update pair
      p.alu_ops = 2;
      break;
    case OpKey::kCustody:
      p.exact_lookups = 1;  // custody-store admission probe
      p.crypto_rounds = 2;  // verify + re-stamp the chain MAC (2EM pair)
      p.alu_ops = 2;        // flags/custodian rewrite
      break;
    case OpKey::kBundleFrag:
      p.alu_ops = 1;  // bounds-check index < total; reassembly is host-side
      break;
  }
  return p;
}

SwitchCostBreakdown estimate_protocol_cycles(std::span<const FnTriple> fns,
                                             std::size_t locations_bytes,
                                             const CostModel& model, bool parallel,
                                             bool aes_mac) {
  SwitchCostBreakdown out;
  out.transit = model.pipeline_transit;

  // Parsing: one state for the basic header, one per FN triple (the
  // unrolled ladder), one per 4 location bytes (32-bit containers).
  const std::size_t parse_states = 1 + fns.size() + (locations_bytes + 3) / 4;
  out.parse = parse_states * model.parser_state;

  Cycles match_sum = 0;
  Cycles match_max = 0;
  Cycles crypto_sum = 0;
  Cycles crypto_max = 0;

  for (const FnTriple& fn : fns) {
    if (fn.host_tagged()) continue;  // switch skips host operations
    const FnSwitchProfile p = fn_switch_profile(fn, aes_mac);
    const Cycles match = p.exact_lookups * model.table_exact +
                         p.lpm_lookups * model.table_lpm +
                         p.ternary_lookups * model.table_ternary +
                         p.alu_ops * model.alu_op;
    const Cycles crypto = p.crypto_rounds * model.crypto_round;
    match_sum += match;
    crypto_sum += crypto;
    match_max = std::max(match_max, match);
    crypto_max = std::max(crypto_max, crypto);
    out.resubmissions += p.resubmits;
  }

  // The packet-parameter parallel bit (§2.2): independent modules overlap.
  out.match = parallel ? match_max : match_sum;
  out.crypto = parallel ? crypto_max : crypto_sum;

  // Each resubmission re-runs the pipeline transit.
  out.transit += out.resubmissions * (model.pipeline_transit + model.resubmit_penalty);
  return out;
}

Parser build_dip_parser(std::size_t fn_count, std::size_t locations_bytes,
                        CostModel model) {
  fn_count = std::min<std::size_t>(fn_count, 4);
  locations_bytes = std::min<std::size_t>(locations_bytes, 32);
  const std::size_t loc_states = (locations_bytes + 3) / 4;
  // State layout: 0 = basic header, 1..fn_count = FN triples, then location
  // states. first_loc is the index of the first location state.
  const auto first_loc = static_cast<std::int16_t>(1 + fn_count);
  const std::int16_t after_fns =
      loc_states == 0 ? ParserState::kAccept : first_loc;

  Parser parser(model);

  ParserState basic;
  basic.extracts = {
      {0, 1, phv_layout::kNextHeader},
      {1, 1, phv_layout::kFnNum},
      {2, 1, phv_layout::kHopLimit},
      {3, 2, phv_layout::kPacketParam},
  };
  basic.advance = 6;
  if (fn_count == 0) {
    basic.default_next = after_fns;
  } else {
    // Constraint 1: branch on FN_Num with a static ladder. Every value in
    // 1..fn_count enters the FN chain; 0 skips it; larger values are
    // rejected (the ladder is too short — exactly the Tofino behaviour).
    basic.has_select = true;
    basic.select = phv_layout::kFnNum;
    for (std::size_t n = 1; n <= fn_count; ++n) {
      basic.transitions.push_back({static_cast<std::uint32_t>(n), 1});
    }
    basic.transitions.push_back({0u, after_fns});
    basic.default_next = ParserState::kReject;
  }
  parser.add_state(std::move(basic));

  for (std::size_t i = 0; i < fn_count; ++i) {
    ParserState fn_state;
    const auto base = static_cast<Container>(phv_layout::kFnBase + 2 * i);
    fn_state.extracts = {
        {0, 4, base},                              // loc:16 | len:16
        {4, 2, static_cast<Container>(base + 1)},  // tag|key
    };
    fn_state.advance = 6;
    // The static ladder conservatively parses all fn_count triples.
    fn_state.default_next =
        (i + 1 < fn_count) ? static_cast<std::int16_t>(2 + i) : after_fns;
    parser.add_state(std::move(fn_state));
  }

  for (std::size_t i = 0; i < loc_states; ++i) {
    ParserState loc_state;
    const auto width =
        static_cast<std::uint8_t>(std::min<std::size_t>(4, locations_bytes - 4 * i));
    loc_state.extracts = {{0, width, static_cast<Container>(phv_layout::kLocBase + i)}};
    loc_state.advance = width;
    loc_state.default_next = (i + 1 < loc_states)
                                 ? static_cast<std::int16_t>(first_loc + 1 + i)
                                 : ParserState::kAccept;
    parser.add_state(std::move(loc_state));
  }
  return parser;
}

}  // namespace dip::pisa
