#include "dip/pisa/compiler.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

namespace dip::pisa {

using core::FnTriple;
using core::OpKey;

std::string_view to_string(FitVerdict verdict) noexcept {
  switch (verdict) {
    case FitVerdict::kFit: return "fit";
    case FitVerdict::kDegrade: return "degrade";
    case FitVerdict::kUnfit: return "unfit";
  }
  return "unfit";
}

std::string_view to_string(StageUnit unit) noexcept {
  switch (unit) {
    case StageUnit::kGateway: return "gateway";
    case StageUnit::kExact: return "exact";
    case StageUnit::kLpm: return "lpm";
    case StageUnit::kTernary: return "ternary";
    case StageUnit::kCrypto: return "crypto";
    case StageUnit::kAction: return "action";
  }
  return "action";
}

namespace {

/// One micro-operation demand before placement. `parallel_ok` marks demands
/// that may share a stage with this FN's previous demand (independent
/// lookups of one module); everything else chains into a later stage.
struct Demand {
  StageUnit unit = StageUnit::kAction;
  bool parallel_ok = false;
  std::uint32_t key_bits = 0;
  std::uint64_t sram_bits = 0;
  std::uint64_t tcam_bits = 0;
  std::uint32_t alu_ops = 0;
  std::uint32_t crypto_rounds = 0;
};

[[nodiscard]] bool is_table(StageUnit unit) noexcept {
  return unit == StageUnit::kGateway || unit == StageUnit::kExact ||
         unit == StageUnit::kLpm || unit == StageUnit::kTernary;
}

/// Match-key width for one lookup of this FN. 128-bit matching splits into
/// 64-bit halves (two chained LPM stages); everything else matches on a
/// 32-bit container slice of the field.
[[nodiscard]] std::uint32_t lookup_key_bits(const FnTriple& fn) noexcept {
  if (fn.key() == OpKey::kMatch128) return 64;
  return std::clamp<std::uint32_t>(fn.field_len, 8, 32);
}

/// Translate one router-side FN into its stage demands under `model`.
[[nodiscard]] std::vector<Demand> build_demands(const FnTriple& fn,
                                                const CompileOptions& opts,
                                                const TnaModel& model) {
  const FnSwitchProfile p = fn_switch_profile(fn, opts.aes_mac);
  const bool has_work = p.exact_lookups + p.lpm_lookups + p.ternary_lookups +
                            p.alu_ops + p.crypto_rounds >
                        0;
  std::vector<Demand> demands;
  if (!has_work) return demands;  // carried, not acted upon (F_source)

  // FN dispatch predicates over the 6-byte triple: the parser/gateway may
  // look at max_parser_condition_bytes per condition, so the triple costs
  // ceil(6 / limit) conditions. The first rides in the FN's first work
  // stage; each extra becomes its own gateway stage (§4.1, the "more than
  // 4 bytes on the same if statement" compromise).
  const std::size_t cond_bytes = std::max<std::size_t>(1, model.max_parser_condition_bytes);
  const std::size_t conditions = (FnTriple::kWireSize + cond_bytes - 1) / cond_bytes;
  for (std::size_t i = 1; i < conditions; ++i) {
    Demand gw;
    gw.unit = StageUnit::kGateway;
    gw.key_bits = static_cast<std::uint32_t>(8 * cond_bytes);
    // One ladder row per unrollable FN slot.
    gw.sram_bits = static_cast<std::uint64_t>(gw.key_bits) * model.max_unrolled_fns;
    demands.push_back(gw);
  }

  const std::uint32_t key_bits = lookup_key_bits(fn);
  const auto sram_table = static_cast<std::uint64_t>(key_bits) * model.sram_entries_per_table;
  // TCAM stores value+mask per entry.
  const auto tcam_table =
      2ull * key_bits * model.tcam_entries_per_table;

  // kMatch128's two LPM lookups are chained halves of one key; all other
  // multi-lookup modules probe independent tables and may share a stage.
  const bool chained_lookups = fn.key() == OpKey::kMatch128;
  bool first_lookup = true;
  auto add_lookup = [&](StageUnit unit, std::uint64_t sram, std::uint64_t tcam) {
    Demand d;
    d.unit = unit;
    d.parallel_ok = !first_lookup && !chained_lookups;
    d.key_bits = key_bits;
    d.sram_bits = sram;
    d.tcam_bits = tcam;
    demands.push_back(d);
    first_lookup = false;
  };
  for (std::uint32_t i = 0; i < p.exact_lookups; ++i) add_lookup(StageUnit::kExact, sram_table, 0);
  for (std::uint32_t i = 0; i < p.lpm_lookups; ++i) add_lookup(StageUnit::kLpm, 0, tcam_table);
  for (std::uint32_t i = 0; i < p.ternary_lookups; ++i) add_lookup(StageUnit::kTernary, 0, tcam_table);

  // Crypto rounds batch into stages of crypto_slots_per_stage rounds each,
  // strictly chained (each round permutes the previous state).
  std::uint32_t rounds_left = p.crypto_rounds;
  const auto slot_cap = static_cast<std::uint32_t>(std::max<std::size_t>(1, model.crypto_slots_per_stage));
  while (rounds_left > 0) {
    Demand d;
    d.unit = StageUnit::kCrypto;
    d.crypto_rounds = std::min(rounds_left, slot_cap);
    rounds_left -= d.crypto_rounds;
    demands.push_back(d);
  }

  // ALU ops execute in the FN's last work stage, spilling forward into
  // action-only stages if they exceed the per-stage VLIW slots.
  std::uint32_t alu_left = p.alu_ops;
  const auto alu_cap = static_cast<std::uint32_t>(std::max<std::size_t>(1, model.action_slots_per_stage));
  if (alu_left > 0 && !demands.empty() && !is_table(demands.back().unit)) {
    // crypto stage hosts the epilogue ALU ops (whitening XORs etc.)
    const std::uint32_t take = std::min(alu_left, alu_cap);
    demands.back().alu_ops += take;
    alu_left -= take;
  } else if (alu_left > 0 && !demands.empty() && is_table(demands.back().unit) &&
             demands.back().unit != StageUnit::kGateway) {
    const std::uint32_t take = std::min(alu_left, alu_cap);
    demands.back().alu_ops += take;
    alu_left -= take;
  }
  while (alu_left > 0) {
    Demand d;
    d.unit = StageUnit::kAction;
    d.alu_ops = std::min(alu_left, alu_cap);
    alu_left -= d.alu_ops;
    demands.push_back(d);
  }
  return demands;
}

[[nodiscard]] bool demand_fits(const StagePlan& stage, const Demand& d,
                               const TnaModel& model) {
  if (is_table(d.unit) && stage.logical_tables + 1 > model.logical_tables_per_stage)
    return false;
  if (stage.sram_bits + d.sram_bits > model.sram_bits_per_stage) return false;
  if (stage.tcam_bits + d.tcam_bits > model.tcam_bits_per_stage) return false;
  if (stage.action_slots + d.alu_ops > model.action_slots_per_stage) return false;
  if (stage.crypto_slots + d.crypto_rounds > model.crypto_slots_per_stage) return false;
  return true;
}

void commit(StagePlan& stage, const Demand& d, std::size_t fn_index, OpKey key) {
  PlacedUnit unit;
  unit.fn_index = fn_index;
  unit.key = key;
  unit.unit = d.unit;
  unit.key_bits = d.key_bits;
  unit.sram_bits = d.sram_bits;
  unit.tcam_bits = d.tcam_bits;
  unit.alu_ops = d.alu_ops;
  unit.crypto_rounds = d.crypto_rounds;
  stage.units.push_back(unit);
  stage.sram_bits += d.sram_bits;
  stage.tcam_bits += d.tcam_bits;
  if (is_table(d.unit)) ++stage.logical_tables;
  stage.action_slots += d.alu_ops;
  stage.crypto_slots += d.crypto_rounds;
}

/// Place one FN's demands into `pass`, strictly after every stage already
/// used (FNs chain: the ladder decides FN i+1 from FN i's outcome). Returns
/// false (pass untouched) when the FN would run past the last stage.
[[nodiscard]] bool place_fn(PassPlan& pass, std::size_t fn_index, OpKey key,
                            const std::vector<Demand>& demands,
                            const TnaModel& model) {
  std::vector<StagePlan> stages = pass.stages;  // simulate, commit on success
  std::ptrdiff_t prev = static_cast<std::ptrdiff_t>(stages.size()) - 1;
  bool first = true;
  for (const Demand& d : demands) {
    std::size_t target;
    if (!first && d.parallel_ok && prev >= 0 &&
        demand_fits(stages[static_cast<std::size_t>(prev)], d, model)) {
      target = static_cast<std::size_t>(prev);
    } else {
      target = static_cast<std::size_t>(prev + 1);
      if (target >= model.stages) return false;
      if (target >= stages.size()) stages.emplace_back();
    }
    commit(stages[target], d, fn_index, key);
    prev = static_cast<std::ptrdiff_t>(target);
    first = false;
  }
  pass.stages = std::move(stages);
  return true;
}

[[nodiscard]] PlacementReport unfit(std::string reason) {
  PlacementReport r;
  r.verdict = FitVerdict::kUnfit;
  r.reason = std::move(reason);
  return r;
}

}  // namespace

PlacementReport StageCompiler::compile(std::span<const FnTriple> fns,
                                       std::size_t locations_bytes,
                                       const CompileOptions& opts) const {
  const std::size_t loc_states = (locations_bytes + 3) / 4;

  // --- structural checks (kUnfit regardless of placement) ---------------
  if (locations_bytes > model_.max_locations_bytes) {
    return unfit("locations block exceeds the preset-slice budget");
  }
  std::size_t crypto_fns = 0;
  for (const FnTriple& fn : fns) {
    if (!core::fn_info(fn.key())) {
      return unfit("unknown operation key (not in the module table)");
    }
    if (!fn.range().byte_aligned()) {
      return unfit("non-byte-aligned field slice (preset-slice rule)");
    }
    if (!bytes::fits(fn.range(), locations_bytes)) {
      return unfit("field outside the locations block");
    }
    if (!fn.host_tagged() && fn_switch_profile(fn, opts.aes_mac).crypto_rounds > 0) {
      ++crypto_fns;
    }
  }

  // Whole-composition PHV pressure: the 6 fixed metadata containers, two
  // per FN triple, one per 4 location bytes, plus two scratch containers
  // per crypto-using FN (chaining state). Containers persist across
  // recirculation passes, so this is global, not per pass.
  PlacementReport r;
  r.phv_containers = 6 + 2 * fns.size() + loc_states + 2 * crypto_fns;
  if (r.phv_containers > model_.phv_containers) {
    return unfit("PHV container pool exhausted");
  }

  // Parser floor: every pass re-parses the basic header, its FN ladder
  // slice, and the whole locations block. If even a one-FN pass exceeds
  // the parser budget, no amount of recirculation helps.
  const std::size_t min_fns_state = fns.empty() ? 0 : 1;
  if (1 + min_fns_state + loc_states > model_.max_parser_states) {
    return unfit("parser state budget exceeded");
  }

  // --- greedy placement with recirculation auto-split -------------------
  r.passes.emplace_back();
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const FnTriple& fn = fns[i];
    PassPlan* pass = &r.passes.back();

    auto pass_admits_fn = [&](const PassPlan& p) {
      if (p.fns.size() + 1 > model_.max_unrolled_fns) return false;  // ladder
      return 1 + (p.fns.size() + 1) + loc_states <= model_.max_parser_states;
    };
    if (!pass_admits_fn(*pass)) {
      r.passes.emplace_back();
      pass = &r.passes.back();
    }

    if (fn.host_tagged()) {
      // Rides the ladder (a parse state + skip row) but uses no stages.
      pass->fns.push_back(fn);
      continue;
    }

    const std::vector<Demand> demands = build_demands(fn, opts, model_);
    if (!place_fn(*pass, i, fn.key(), demands, model_)) {
      // Out of stages: recirculate and restart this FN in a fresh pass.
      r.passes.emplace_back();
      pass = &r.passes.back();
      if (!place_fn(*pass, i, fn.key(), demands, model_)) {
        return unfit("single FN exceeds one pipeline pass");
      }
    }
    pass->fns.push_back(fn);
  }
  if (r.passes.size() > model_.max_passes) {
    return unfit("recirculation budget exceeded");
  }

  // --- account ----------------------------------------------------------
  std::uint32_t resubmissions = 0;
  Cycles cycles = 0;
  for (PassPlan& pass : r.passes) {
    pass.parser_states = 1 + pass.fns.size() + loc_states;
    r.parser_states = std::max(r.parser_states, pass.parser_states);
    r.stages_used = std::max(r.stages_used, pass.stages.size());
    for (const StagePlan& stage : pass.stages) {
      r.sram_bits += stage.sram_bits;
      r.tcam_bits += stage.tcam_bits;
    }
    const SwitchCostBreakdown pass_cost = estimate_protocol_cycles(
        pass.fns, locations_bytes, costs_, opts.parallel, opts.aes_mac);
    cycles += pass_cost.total();
    resubmissions += pass_cost.resubmissions;
  }
  // Each recirculation pass is a full re-injection on top of its transit.
  cycles += (r.passes.size() - 1) * costs_.resubmit();
  r.resubmissions = resubmissions;
  r.cycles = cycles;

  if (r.passes.size() == 1 && resubmissions == 0) {
    r.verdict = FitVerdict::kFit;
    r.reason = "single pass";
  } else {
    r.verdict = FitVerdict::kDegrade;
    std::string reason;
    if (r.passes.size() > 1) {
      reason = std::to_string(r.passes.size() - 1) + " recirculation pass" +
               (r.passes.size() > 2 ? "es" : "");
    }
    if (resubmissions > 0) {
      if (!reason.empty()) reason += " + ";
      reason += std::to_string(resubmissions) + " resubmission" +
                (resubmissions > 1 ? "s" : "");
    }
    r.reason = std::move(reason);
  }
  return r;
}

std::string format_report(std::string_view name, std::span<const FnTriple> fns,
                          std::size_t locations_bytes, const PlacementReport& report,
                          const TnaModel& model) {
  std::ostringstream out;
  out << "# pisa fit report v1 (DIP_REGEN_VECTORS=1 ./pisa_test regenerates)\n";
  out << "composition: " << name << "\n";
  out << "model: stages=" << model.stages << " passes=" << model.max_passes
      << " sram/stage=" << model.sram_bits_per_stage << "b"
      << " tcam/stage=" << model.tcam_bits_per_stage << "b"
      << " tables/stage=" << model.logical_tables_per_stage
      << " alu/stage=" << model.action_slots_per_stage
      << " crypto/stage=" << model.crypto_slots_per_stage
      << " phv=" << model.phv_containers << " parser=" << model.max_parser_states
      << " cond=" << model.max_parser_condition_bytes << "B"
      << " ladder=" << model.max_unrolled_fns << "\n";
  out << "fns: " << fns.size() << " =";
  for (const FnTriple& fn : fns) {
    out << " " << core::op_key_name(fn.key()) << (fn.host_tagged() ? "*" : "");
  }
  out << "\n";
  out << "locations_bytes: " << locations_bytes << "\n";
  out << "verdict: " << to_string(report.verdict) << "\n";
  out << "reason: " << report.reason << "\n";
  if (!report.fits()) return std::move(out).str();

  out << "passes: " << report.passes.size() << "/" << model.max_passes << "\n";
  out << "stages_used: " << report.stages_used << "/" << model.stages << "\n";
  out << "parser_states: " << report.parser_states << "/" << model.max_parser_states
      << "\n";
  out << "phv_containers: " << report.phv_containers << "/" << model.phv_containers
      << "\n";
  out << "sram_bits: " << report.sram_bits << "\n";
  out << "tcam_bits: " << report.tcam_bits << "\n";
  out << "resubmissions: " << report.resubmissions << "\n";
  out << "cycles: " << report.cycles << "\n";
  for (std::size_t p = 0; p < report.passes.size(); ++p) {
    const PassPlan& pass = report.passes[p];
    out << "pass " << (p + 1) << ": fns=" << pass.fns.size()
        << " stages=" << pass.stages.size() << " parser_states=" << pass.parser_states
        << "\n";
    for (std::size_t s = 0; s < pass.stages.size(); ++s) {
      const StagePlan& stage = pass.stages[s];
      for (const PlacedUnit& unit : stage.units) {
        out << "  stage " << (s + 1) << ": " << core::op_key_name(unit.key) << "#"
            << unit.fn_index << " " << to_string(unit.unit);
        if (unit.key_bits > 0) out << " key=" << unit.key_bits << "b";
        if (unit.sram_bits > 0) out << " sram=" << unit.sram_bits << "b";
        if (unit.tcam_bits > 0) out << " tcam=" << unit.tcam_bits << "b";
        if (unit.alu_ops > 0) out << " alu=" << unit.alu_ops;
        if (unit.crypto_rounds > 0) out << " rounds=" << unit.crypto_rounds;
        out << "\n";
      }
    }
  }
  return std::move(out).str();
}

}  // namespace dip::pisa
