#include "dip/pisa/pipeline.hpp"

#include <algorithm>

namespace dip::pisa {

PipelineRun Pipeline::run(Phv& phv) const {
  PipelineRun out;
  out.cycles = model_.pipeline_transit;

  for (const Stage& stage : stages_) {
    // Tables within a stage are concurrent: lookups cost the max, actions
    // execute sequentially on distinct containers (hardware guarantees
    // non-conflicting writes; we simply apply in order).
    Cycles stage_lookup = 0;
    Cycles stage_action = 0;
    for (const MatchTable& table : stage.tables) {
      stage_lookup = std::max(stage_lookup, table.lookup_cost(model_));
      const Action action = table.lookup(phv);
      stage_action = std::max(stage_action, apply_action(action, phv, model_));
    }
    out.cycles += stage_lookup + stage_action;
    if (phv.get(phv_layout::kDropFlag) != 0) {
      out.dropped = true;
      break;
    }
  }
  return out;
}

bytes::Result<PipelineRun> Pipeline::run_with_resubmits(Phv& phv,
                                                        std::uint32_t resubmits) const {
  if (resubmits > kMaxResubmits) return bytes::Err(bytes::Error::kOverflow);

  PipelineRun total = run(phv);
  for (std::uint32_t i = 0; i < resubmits && !total.dropped; ++i) {
    const PipelineRun pass = run(phv);
    total.cycles += pass.cycles + model_.resubmit_penalty;
    total.dropped = pass.dropped;
    ++total.resubmissions;
  }
  return total;
}

}  // namespace dip::pisa
