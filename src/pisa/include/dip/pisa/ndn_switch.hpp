// NDN forwarding on the switch model: F_FIB/F_PIT with register-array state.
//
// The paper runs NDN on a Tofino (§4.1) — which means PIT state must live
// in data-plane registers, with hardware-shaped compromises:
//
//  * the PIT is a direct-indexed register array (hash of the 32-bit name
//    code), one 32-bit cell per entry — a colliding name evicts/aliases;
//  * a cell stores ONE ingress face (+1, 0 = empty): concurrent interests
//    for the same name are suppressed without recording the extra face
//    (real P4 NDN prototypes make the same trade);
//  * data consumes the cell with a single read-and-clear stateful-ALU op.
//
// The software router (dip::ndn) is the faithful reference; this forwarder
// exists to show the §4.1 prototype is *expressible* under PISA constraints
// and to price it in cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dip/fib/address.hpp"
#include "dip/pisa/parser.hpp"
#include "dip/pisa/pipeline.hpp"
#include "dip/pisa/registers.hpp"

namespace dip::pisa {

class NdnSwitchForwarder {
 public:
  explicit NdnSwitchForwarder(std::size_t pit_cells = 4096,
                              CostModel model = default_cost_model());

  /// Install a name-code route (the F_FIB table).
  void add_name_route(const fib::Ipv4Prefix& code_prefix, fib::NextHop next_hop);

  enum class Status : std::uint8_t {
    kForwardInterest,  ///< interest: PIT recorded, egress set from FIB
    kSuppressed,       ///< interest: another interest is pending (PIT busy)
    kForwardData,      ///< data: PIT consumed, egress = recorded face
    kDropNoRoute,
    kDropPitMiss,
    kMalformed,
  };

  struct Outcome {
    Status status = Status::kMalformed;
    std::optional<fib::NextHop> egress;
    Cycles cycles = 0;
  };

  /// Process one NDN-over-DIP packet (16-byte header composition).
  [[nodiscard]] bytes::Result<Outcome> process(std::span<const std::uint8_t> packet,
                                               std::uint32_t ingress_face);

  [[nodiscard]] const RegisterArray& pit() const noexcept { return pit_; }

 private:
  Parser parser_;
  MatchTable fib_;
  RegisterArray pit_;
  CostModel model_;
};

}  // namespace dip::pisa
