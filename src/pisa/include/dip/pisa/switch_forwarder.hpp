// A complete DIP-32 forwarding program on the PISA model: programmable
// parser + LPM match-action stage, end to end on real packet bytes.
//
// This is the "switch mode" counterpart of core::Router for the DIP-32
// composition — used by the differential tests (the two implementations
// must agree on every packet) and by benches that want cycle counts for
// actual packets rather than analytical estimates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dip/fib/address.hpp"
#include "dip/pisa/parser.hpp"
#include "dip/pisa/pipeline.hpp"

namespace dip::pisa {

class SwitchForwarder {
 public:
  explicit SwitchForwarder(CostModel model = default_cost_model());

  /// Install a DIP-32 route (mirrors fib::LpmTable<32>::insert).
  void add_route(const fib::Ipv4Prefix& prefix, fib::NextHop next_hop);

  struct Outcome {
    std::optional<fib::NextHop> egress;  ///< nullopt = dropped (no route)
    Cycles cycles = 0;
  };

  /// Parse + match + act on one DIP-32 packet.
  [[nodiscard]] bytes::Result<Outcome> forward(
      std::span<const std::uint8_t> packet) const;

  [[nodiscard]] std::size_t route_count() const noexcept { return routes_; }

 private:
  Parser parser_;
  Pipeline pipeline_;
  std::size_t routes_ = 0;
};

}  // namespace dip::pisa
