// Match-action tables — the workhorse of a PISA stage.
//
// A table matches one PHV container (exact / LPM / ternary) and executes a
// small fixed action. Actions are a closed set, as on real hardware: set a
// container, drop, ALU ops, or a crypto permutation round.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dip/pisa/cost_model.hpp"
#include "dip/pisa/phv.hpp"

namespace dip::pisa {

enum class MatchKind : std::uint8_t { kExact, kLpm, kTernary };

enum class ActionKind : std::uint8_t {
  kNoop,
  kSetContainer,   ///< phv[a] = imm
  kCopy,           ///< phv[a] = phv[b]
  kAdd,            ///< phv[a] += imm
  kXor,            ///< phv[a] ^= imm
  kXorReg,         ///< phv[a] ^= phv[b]
  kDrop,           ///< phv[kDropFlag] = 1
  kCryptoRound,    ///< models one public-permutation round over containers
};

struct Action {
  ActionKind kind = ActionKind::kNoop;
  Container a = 0;
  Container b = 0;
  std::uint32_t imm = 0;
};

struct TableEntry {
  std::uint32_t key = 0;
  /// kExact: ignored. kLpm: prefix length (0..32). kTernary: bit mask.
  std::uint32_t qualifier = 0;
  /// kTernary only: higher wins among multiple matches.
  std::int32_t priority = 0;
  Action action;
};

class MatchTable {
 public:
  MatchTable(MatchKind kind, Container key_container)
      : kind_(kind), key_(key_container) {}

  void add_entry(TableEntry entry) { entries_.push_back(entry); }
  void set_default_action(Action a) { default_action_ = a; }

  [[nodiscard]] MatchKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }

  /// Match against phv; returns the selected action (default if no hit).
  [[nodiscard]] Action lookup(const Phv& phv) const;

  [[nodiscard]] Cycles lookup_cost(const CostModel& m) const noexcept {
    switch (kind_) {
      case MatchKind::kExact: return m.table_exact;
      case MatchKind::kLpm: return m.table_lpm;
      case MatchKind::kTernary: return m.table_ternary;
    }
    return m.table_exact;
  }

 private:
  MatchKind kind_;
  Container key_;
  std::vector<TableEntry> entries_;
  Action default_action_;
};

/// Execute one action; returns its cycle cost.
Cycles apply_action(const Action& action, Phv& phv, const CostModel& model) noexcept;

}  // namespace dip::pisa
