// PHV — Packet Header Vector, the per-packet register file of a PISA switch.
//
// Parsed header fields live in fixed-width containers; match-action stages
// read and write containers, never raw packet bytes. Mirrors the §4.1
// constraint that "field slices are restricted to not using variables":
// every container is bound to a *preset* slice at parse time.
#pragma once

#include <array>
#include <bitset>
#include <cstdint>

namespace dip::pisa {

/// Index of a 32-bit PHV container.
using Container = std::uint8_t;

class Phv {
 public:
  static constexpr std::size_t kContainers = 64;

  [[nodiscard]] bool valid(Container c) const noexcept { return valid_[c]; }

  [[nodiscard]] std::uint32_t get(Container c) const noexcept { return regs_[c]; }

  void set(Container c, std::uint32_t v) noexcept {
    regs_[c] = v;
    valid_[c] = true;
  }

  void invalidate(Container c) noexcept { valid_[c] = false; }

  void clear() noexcept {
    valid_.reset();
    regs_.fill(0);
  }

  /// Number of valid containers (parser footprint metric).
  [[nodiscard]] std::size_t valid_count() const noexcept { return valid_.count(); }

 private:
  std::array<std::uint32_t, kContainers> regs_{};
  std::bitset<kContainers> valid_;
};

/// Well-known container assignments used by the DIP switch program.
namespace phv_layout {
inline constexpr Container kNextHeader = 0;
inline constexpr Container kFnNum = 1;
inline constexpr Container kHopLimit = 2;
inline constexpr Container kPacketParam = 3;
inline constexpr Container kEgressPort = 4;   ///< set by match stages
inline constexpr Container kDropFlag = 5;     ///< nonzero = discard
inline constexpr Container kFnBase = 8;       ///< FN i triple in 8+2i, 8+2i+1
inline constexpr Container kLocBase = 40;     ///< first locations containers
}  // namespace phv_layout

}  // namespace dip::pisa
