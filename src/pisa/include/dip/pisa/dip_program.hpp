// The DIP switch program: Tofino constraints and the FN cost compiler.
//
// §4.1 documents three compromises the paper made to fit DIP onto a real
// Tofino; this header encodes them so they are checkable and measurable:
//
//  1. no loops        — FN dispatch is an if-else ladder bounded by
//                       kMaxUnrolledFns (validate_program enforces it);
//  2. preset slices   — field slices cannot use variables; target fields
//                       must be byte-aligned and drawn from preset widths;
//  3. pre-written ops — the operation-key -> module binding is static
//                       (fn_switch_cost is that static table, in cost form).
//
// estimate_protocol_cycles() is the analytical counterpart of Figure 2: it
// prices a full FN program in switch cycles under the CostModel.
#pragma once

#include <optional>
#include <span>

#include "dip/bytes/expected.hpp"
#include "dip/core/fn.hpp"
#include "dip/pisa/cost_model.hpp"
#include "dip/pisa/parser.hpp"

namespace dip::pisa {

struct TofinoConstraints {
  std::size_t max_unrolled_fns = 8;      ///< if-else ladder depth
  bool require_byte_aligned = true;      ///< no sub-byte slices
  std::size_t max_locations_bytes = 128; ///< PHV budget for the loc block
};

/// Validate an FN program against the switch constraints. kUnsupported if
/// the ladder is too short, kMalformed for slice violations, kOverflow for
/// PHV exhaustion.
[[nodiscard]] bytes::Status validate_program(std::span<const core::FnTriple> fns,
                                             std::size_t locations_bytes,
                                             const TofinoConstraints& limits = {});

/// Per-FN switch execution profile (static, mirrors the pre-written modules).
struct FnSwitchProfile {
  std::uint32_t exact_lookups = 0;
  std::uint32_t lpm_lookups = 0;
  std::uint32_t ternary_lookups = 0;
  std::uint32_t alu_ops = 0;
  std::uint32_t crypto_rounds = 0;  ///< public-permutation invocations
  std::uint32_t resubmits = 0;      ///< extra full pipeline passes
};

/// The profile of one FN as deployed in the prototype. For F_MAC the profile
/// depends on the covered field length (CMAC blocks) and the MAC primitive:
/// 2EM = 2 rounds/block, no resubmit; AES = 10 rounds/block + 1 resubmit.
[[nodiscard]] FnSwitchProfile fn_switch_profile(const core::FnTriple& fn,
                                                bool aes_mac = false) noexcept;

struct SwitchCostBreakdown {
  Cycles parse = 0;
  Cycles match = 0;
  Cycles crypto = 0;
  Cycles transit = 0;
  std::uint32_t resubmissions = 0;

  [[nodiscard]] Cycles total() const noexcept { return parse + match + crypto + transit; }
};

/// Price a whole FN program. `parallel` models the packet-parameter bit: FN
/// module costs combine by max instead of sum where data-independent (§2.2,
/// the modular-parallelism flag).
[[nodiscard]] SwitchCostBreakdown estimate_protocol_cycles(
    std::span<const core::FnTriple> fns, std::size_t locations_bytes,
    const CostModel& model = default_cost_model(), bool parallel = false,
    bool aes_mac = false);

/// Build a PISA parser that walks a real DIP packet: basic header, then one
/// state per FN triple (unrolled — constraint 1), then the locations block
/// into kLocBase containers. Supports up to 4 FNs and 32 location bytes.
[[nodiscard]] Parser build_dip_parser(std::size_t fn_count, std::size_t locations_bytes,
                                      CostModel model = default_cost_model());

}  // namespace dip::pisa
