// The six Table-1 protocols as FN compositions, for the fit matrix.
//
// Each entry is built by the *real* composer of that protocol
// (core::make_dip32_header, ndn::make_interest_header32, opt::make_opt_header,
// ...), then reduced to what the stage-budget compiler consumes: the FN
// triples and the locations-block size. Deriving the catalogue from the
// composers (rather than restating the triples) keeps the fit matrix honest:
// if a composer changes its layout, the verdicts and goldens move with it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dip/core/fn.hpp"

namespace dip::pisa {

struct Table1Composition {
  std::string name;                  ///< "dip32", "dip128", "ndn", "opt", ...
  std::vector<core::FnTriple> fns;
  std::size_t locations_bytes = 0;
};

/// The six §3 compositions, in Table-1 order: dip32, dip128, ndn, opt,
/// ndn_opt, xia. Deterministic (fixed addresses/session/DAG inputs).
[[nodiscard]] const std::vector<Table1Composition>& table1_compositions();

}  // namespace dip::pisa
