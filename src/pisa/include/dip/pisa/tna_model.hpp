// TNA-like resource model for the stage-budget compiler.
//
// The paper's Tofino prototype (§4.1) fits DIP only through hand
// compromises; this struct states the resources those compromises ration,
// in the style of the synapse-klee TNAProperty model (SNIPPETS.md): a fixed
// number of match-action stages, per-stage SRAM/TCAM bit budgets, a bounded
// PHV container pool, per-stage action/ALU and crypto slots, and the
// parser's 4-byte-per-condition limit ("the Tofino compiler complains if we
// access more than 4 bytes of the packet on the same if statement").
//
// Numbers are deliberately round, Tofino-*like*, not Tofino-exact: only the
// relative pressure matters for the fit/degrade/unfit verdicts, and the
// defaults are tuned so the six Table-1 compositions land where the paper
// says they do (all deployable in a single pass with the 2EM MAC).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dip::pisa {

struct TnaModel {
  // --- pipeline geometry ------------------------------------------------
  std::size_t stages = 12;                ///< match-action stages per pass
  std::size_t max_passes = 4;             ///< recirculation budget (incl. 1st)

  // --- per-stage budgets ------------------------------------------------
  std::uint64_t sram_bits_per_stage = 128ull * 1024 * 8;  ///< 128 KiB
  std::uint64_t tcam_bits_per_stage = 44ull * 512 * 24;   ///< 66 KiB-ish
  std::size_t logical_tables_per_stage = 8;
  std::size_t action_slots_per_stage = 8;  ///< VLIW ALU lanes
  std::size_t crypto_slots_per_stage = 4;  ///< permutation rounds per stage

  // --- header / parser budgets -----------------------------------------
  std::size_t phv_containers = 64;         ///< 32-bit containers (Phv::kContainers)
  std::size_t max_parser_states = 32;      ///< Parser::kMaxStatesVisited
  std::size_t max_parser_condition_bytes = 4;  ///< bytes per if-condition
  std::size_t max_unrolled_fns = 8;        ///< FN ladder depth per pass
  std::size_t max_locations_bytes = 128;   ///< loc-block ceiling (constraints)

  // --- table sizing (entries provisioned per logical table) -------------
  std::uint32_t sram_entries_per_table = 1024;
  std::uint32_t tcam_entries_per_table = 512;
};

/// The Tofino-like default used everywhere (goldens pin this model).
[[nodiscard]] constexpr TnaModel default_tna_model() noexcept { return {}; }

}  // namespace dip::pisa
