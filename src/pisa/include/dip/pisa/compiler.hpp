// PISA stage-budget compiler: map an FN composition onto the TnaModel.
//
// The software router accepts any FN composition; real PISA hardware does
// not. This compiler answers "would this composition deploy?" by placing
// every router-side FN's micro-operations (dispatch gateways, match tables,
// ALU slots, crypto rounds) into stages under the per-stage budgets of a
// TnaModel, auto-splitting across recirculation passes when a pass runs out
// of stages, ladder slots, or parser states.
//
// Verdicts:
//   kFit     — single pass, no resubmission: deploys as-is.
//   kDegrade — deploys, but needs recirculation passes and/or packet
//              resubmission (the AES-MAC case of §4.1); the recirculation
//              cost is charged into the cycle estimate.
//   kUnfit   — violates a structural constraint (non-byte-aligned slice,
//              field outside the locations block, unknown operation key,
//              PHV/parser exhaustion, a single FN larger than one pass, or
//              more passes than the recirculation budget).
//
// Placement is greedy and strictly sequential across FNs (an FN ladder is a
// chain of dependent predicates), which makes it deterministic and
// prefix-stable: compiling a composition never changes how its prefix was
// placed. The property suite in tests/pisa_test.cpp leans on both.
//
// Demands are derived from core::fn_table() + fn_switch_profile(), the same
// dense module table the router binds against, so the software and hardware
// views of "what FNs exist and what they cost" cannot drift.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dip/core/fn.hpp"
#include "dip/pisa/cost_model.hpp"
#include "dip/pisa/dip_program.hpp"
#include "dip/pisa/tna_model.hpp"

namespace dip::pisa {

enum class FitVerdict : std::uint8_t {
  kFit = 0,
  kDegrade = 1,
  kUnfit = 2,
};

[[nodiscard]] std::string_view to_string(FitVerdict verdict) noexcept;

/// What one placed micro-operation is, for the report.
enum class StageUnit : std::uint8_t {
  kGateway,  ///< extra FN-dispatch predicate stage (4-byte condition split)
  kExact,    ///< exact-match table (SRAM)
  kLpm,      ///< LPM table (TCAM)
  kTernary,  ///< ternary table (TCAM)
  kCrypto,   ///< batch of permutation rounds
  kAction,   ///< ALU-only stage (no table)
};

[[nodiscard]] std::string_view to_string(StageUnit unit) noexcept;

/// One micro-operation committed to a stage.
struct PlacedUnit {
  std::size_t fn_index = 0;  ///< index into the compiled composition
  core::OpKey key = core::OpKey::kMatch32;
  StageUnit unit = StageUnit::kAction;
  std::uint32_t key_bits = 0;      ///< match key width (tables/gateways)
  std::uint64_t sram_bits = 0;
  std::uint64_t tcam_bits = 0;
  std::uint32_t alu_ops = 0;
  std::uint32_t crypto_rounds = 0;
};

/// Budget consumption of one stage within one pass.
struct StagePlan {
  std::vector<PlacedUnit> units;
  std::uint64_t sram_bits = 0;
  std::uint64_t tcam_bits = 0;
  std::size_t logical_tables = 0;
  std::size_t action_slots = 0;
  std::size_t crypto_slots = 0;
};

/// One pipeline pass (pass 0 is the initial traversal; the rest are
/// recirculations). `fns` is the sub-composition this pass executes —
/// host-tagged FNs ride along (they occupy a ladder slot but no stage).
struct PassPlan {
  std::vector<core::FnTriple> fns;
  std::vector<StagePlan> stages;
  std::size_t parser_states = 0;
};

struct PlacementReport {
  FitVerdict verdict = FitVerdict::kUnfit;
  std::string reason;
  std::vector<PassPlan> passes;
  std::size_t stages_used = 0;      ///< max stages over passes
  std::size_t parser_states = 0;    ///< max parser states over passes
  std::size_t phv_containers = 0;   ///< whole-composition PHV pressure
  std::uint64_t sram_bits = 0;      ///< total across all stages/passes
  std::uint64_t tcam_bits = 0;
  std::uint32_t resubmissions = 0;  ///< AES-style same-pass resubmits
  Cycles cycles = 0;                ///< incl. recirculation cost

  [[nodiscard]] bool fits() const noexcept { return verdict != FitVerdict::kUnfit; }
};

struct CompileOptions {
  bool aes_mac = false;   ///< F_MAC uses AES (10 rounds/block + resubmit)
  bool parallel = false;  ///< packet-parameter parallel bit (§2.2)
};

class StageCompiler {
 public:
  explicit StageCompiler(TnaModel model = default_tna_model(),
                         CostModel costs = default_cost_model()) noexcept
      : model_(model), costs_(costs) {}

  /// Place `fns` (with a locations block of `locations_bytes`) onto the
  /// model. Never throws; structural violations come back as kUnfit with a
  /// reason string.
  [[nodiscard]] PlacementReport compile(std::span<const core::FnTriple> fns,
                                        std::size_t locations_bytes,
                                        const CompileOptions& opts = {}) const;

  [[nodiscard]] const TnaModel& model() const noexcept { return model_; }
  [[nodiscard]] const CostModel& costs() const noexcept { return costs_; }

 private:
  TnaModel model_;
  CostModel costs_;
};

/// Render the deterministic text cost report ("pisa fit report v1") — this
/// exact text is what the tests/vectors/pisa_*.txt goldens pin.
[[nodiscard]] std::string format_report(std::string_view name,
                                        std::span<const core::FnTriple> fns,
                                        std::size_t locations_bytes,
                                        const PlacementReport& report,
                                        const TnaModel& model);

}  // namespace dip::pisa
