// Programmable parser: a state machine extracting header fields into the PHV.
//
// Each state extracts preset byte slices (no variable offsets — the §4.1
// Tofino restriction), optionally selects a container to branch on, advances
// the cursor, and transitions. Terminals are kAccept and kReject.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/pisa/cost_model.hpp"
#include "dip/pisa/phv.hpp"

namespace dip::pisa {

/// Extract `width` bytes (1..4, big-endian) at `offset` from the state's
/// cursor into container `dst`.
struct ExtractOp {
  std::uint16_t offset = 0;
  std::uint8_t width = 4;
  Container dst = 0;
};

struct Transition {
  std::uint32_t value;   ///< match on the selected container's value
  std::int16_t next;     ///< state index, or kAccept/kReject
};

struct ParserState {
  static constexpr std::int16_t kAccept = -1;
  static constexpr std::int16_t kReject = -2;

  std::vector<ExtractOp> extracts;
  std::uint16_t advance = 0;       ///< bytes consumed after extraction
  bool has_select = false;
  Container select = 0;            ///< container to branch on
  std::vector<Transition> transitions;
  std::int16_t default_next = kAccept;
};

struct ParseOutcome {
  Phv phv;
  std::size_t consumed = 0;  ///< header bytes consumed
  Cycles cycles = 0;
  std::size_t states_visited = 0;
};

class Parser {
 public:
  static constexpr std::size_t kMaxStatesVisited = 32;  ///< loop guard

  explicit Parser(CostModel model = default_cost_model()) : model_(model) {}

  /// Append a state; returns its index.
  std::int16_t add_state(ParserState state) {
    states_.push_back(std::move(state));
    return static_cast<std::int16_t>(states_.size() - 1);
  }

  [[nodiscard]] std::size_t state_count() const noexcept { return states_.size(); }

  /// Run the machine from state 0 over `packet`.
  [[nodiscard]] bytes::Result<ParseOutcome> parse(
      std::span<const std::uint8_t> packet) const;

 private:
  std::vector<ParserState> states_;
  CostModel model_;
};

}  // namespace dip::pisa
