// Abstract cycle-cost model for a PISA switch pipeline.
//
// The paper evaluates on a Barefoot Tofino (§4.1); we have no switch, so the
// pisa module reproduces the *relative* costs that shape Figure 2: parsing,
// match-action lookups, ALU operations, cryptographic permutation rounds,
// and — crucially — the resubmission penalty that made AES unattractive and
// 2EM the MAC of choice ("2EM ... can be completed without resubmitting the
// packet, while the AES needs to resubmit the packet").
//
// Units are abstract "cycles"; only ratios matter for reproducing the
// paper's shape.
#pragma once

#include <cstdint>

namespace dip::pisa {

using Cycles = std::uint64_t;

struct CostModel {
  Cycles parser_state = 1;        ///< one parser state traversal
  Cycles extract_per_byte = 0;    ///< extraction is free on real hardware
  Cycles table_exact = 1;         ///< exact-match lookup
  Cycles table_lpm = 2;           ///< LPM (TCAM/ALPM) lookup
  Cycles table_ternary = 2;       ///< ternary lookup
  Cycles alu_op = 1;              ///< add/xor/shift on a PHV container
  Cycles crypto_round = 4;        ///< one public-permutation round (2EM half)
  Cycles pipeline_transit = 10;   ///< fixed ingress->egress latency
  Cycles resubmit_penalty = 0;    ///< added per resubmission *on top of* a
                                  ///< second full transit (see resubmit())

  /// Total cost of re-injecting a packet (AES-style MAC on Tofino).
  [[nodiscard]] Cycles resubmit() const noexcept {
    return pipeline_transit + resubmit_penalty;
  }
};

/// A conservative Tofino-like default.
[[nodiscard]] constexpr CostModel default_cost_model() noexcept { return {}; }

}  // namespace dip::pisa
