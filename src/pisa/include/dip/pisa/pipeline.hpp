// Pipeline: ordered stages of parallel match-action tables.
//
// Within a stage, tables run concurrently (stage cost = max of its tables);
// stages run in sequence. A bounded resubmit count models the Tofino
// behaviour the paper leaned on: AES-style MACs need the packet re-injected,
// 2EM does not (§4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/pisa/cost_model.hpp"
#include "dip/pisa/table.hpp"

namespace dip::pisa {

struct Stage {
  std::vector<MatchTable> tables;
};

struct PipelineRun {
  Cycles cycles = 0;
  std::uint32_t resubmissions = 0;
  bool dropped = false;
};

class Pipeline {
 public:
  static constexpr std::size_t kMaxStages = 20;      ///< Tofino-ish budget
  static constexpr std::uint32_t kMaxResubmits = 4;  ///< runaway guard

  explicit Pipeline(CostModel model = default_cost_model()) : model_(model) {}

  /// Append a stage; fails (returns false) past the hardware stage budget.
  bool add_stage(Stage stage) {
    if (stages_.size() >= kMaxStages) return false;
    stages_.push_back(std::move(stage));
    return true;
  }

  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }

  /// Control-plane access to a stage (table entry installation at runtime —
  /// the switch analogue of FIB updates). nullptr if out of range.
  [[nodiscard]] Stage* mutable_stage(std::size_t index) noexcept {
    return index < stages_.size() ? &stages_[index] : nullptr;
  }
  [[nodiscard]] const CostModel& model() const noexcept { return model_; }

  /// One pass over all stages (no resubmission).
  [[nodiscard]] PipelineRun run(Phv& phv) const;

  /// Run with `resubmits` extra passes (models AES-style MAC execution).
  [[nodiscard]] bytes::Result<PipelineRun> run_with_resubmits(
      Phv& phv, std::uint32_t resubmits) const;

 private:
  std::vector<Stage> stages_;
  CostModel model_;
};

}  // namespace dip::pisa
