// Stateful register arrays — PISA's stateful ALUs.
//
// Real Tofino pipelines keep per-stage register arrays that a stateful ALU
// reads-modifies-writes in one packet time; that is how switches implement
// counters, Bloom filters, and (approximately) NDN PIT state without a
// control-plane round trip. This models the primitive: an indexed array of
// 32-bit cells with the small set of one-shot RMW operations hardware
// offers, charged through the cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "dip/pisa/cost_model.hpp"

namespace dip::pisa {

enum class RegisterOp : std::uint8_t {
  kRead,        ///< result = cell
  kWrite,       ///< cell = operand; result = old cell
  kAdd,         ///< cell += operand; result = new cell
  kReadAndSet,  ///< result = cell; cell = operand   (test-and-set flavor)
  kClearOnMatch ///< if cell == operand { cell = 0; result = 1 } else result = 0
};

class RegisterArray {
 public:
  explicit RegisterArray(std::size_t cells) : cells_(cells, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  /// One packet-time RMW. Out-of-range indices wrap (hardware masks the
  /// index to the array size; we emulate with modulo).
  std::uint32_t execute(RegisterOp op, std::size_t index, std::uint32_t operand,
                        const CostModel& model, Cycles& cycles) {
    cycles += model.alu_op;  // stateful ALU: one op per packet per array
    std::uint32_t& cell = cells_[index % cells_.size()];
    switch (op) {
      case RegisterOp::kRead:
        return cell;
      case RegisterOp::kWrite: {
        const std::uint32_t old = cell;
        cell = operand;
        return old;
      }
      case RegisterOp::kAdd:
        cell += operand;
        return cell;
      case RegisterOp::kReadAndSet: {
        const std::uint32_t old = cell;
        cell = operand;
        return old;
      }
      case RegisterOp::kClearOnMatch:
        if (cell == operand) {
          cell = 0;
          return 1;
        }
        return 0;
    }
    return 0;
  }

  /// Control-plane access (tests, resets).
  [[nodiscard]] std::uint32_t peek(std::size_t index) const {
    return cells_[index % cells_.size()];
  }
  void poke(std::size_t index, std::uint32_t value) {
    cells_[index % cells_.size()] = value;
  }
  void clear() { std::fill(cells_.begin(), cells_.end(), 0); }

 private:
  std::vector<std::uint32_t> cells_;
};

}  // namespace dip::pisa
