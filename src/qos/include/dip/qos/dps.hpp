// F_dps — Dynamic Packet State for stateless guaranteed services (§5).
//
// The paper lists "implementing stateless guaranteed services [29, 30]"
// (Stoica & Zhang's CSFQ / dynamic packet state) among the opportunities
// DIP opens. The design: *edge* routers keep per-flow state and label each
// packet with its flow's arrival rate; *core* routers stay stateless and
// drop probabilistically with
//
//     p = max(0, 1 - alpha / label)
//
// where alpha is the core link's fair-share rate, estimated from aggregate
// arrivals only. The label is the FN target field:
//
//   [0,4)  rate label, bytes/sec (big-endian)
//   [4,8)  flow id (edge bookkeeping; core ignores it)
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dip/bytes/time.hpp"
#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/crypto/random.hpp"

namespace dip::qos {

inline constexpr std::size_t kDpsFieldBytes = 8;

/// Per-flow exponential-average rate estimation at the edge (the only
/// stateful piece, as in CSFQ).
class EdgeLabeler {
 public:
  struct Config {
    /// Averaging constant K (ns): larger = smoother estimates.
    SimDuration k = 100 * kMillisecond;
  };

  EdgeLabeler() : EdgeLabeler(Config{}) {}
  explicit EdgeLabeler(const Config& config) : config_(config) {}

  /// Record a packet of `size` bytes for `flow` at `now`; returns the
  /// updated rate estimate (the label), bytes/sec.
  std::uint32_t label(std::uint32_t flow, std::size_t size, SimTime now);

  [[nodiscard]] std::size_t tracked_flows() const noexcept { return flows_.size(); }

 private:
  struct FlowState {
    double rate = 0;  // bytes/sec
    SimTime last = 0;
  };
  Config config_;
  std::unordered_map<std::uint32_t, FlowState> flows_;
};

/// Core fair-share estimator: aggregate-only, windowed.
///
/// CSFQ's iterative update drives the *accepted* rate F toward capacity C:
/// when the link is congested (arrivals A > C), alpha_new = alpha * C / F.
/// If policing accepted too much (F > C) alpha shrinks; too little (F < C)
/// it grows — equilibrium at F = C. When uncongested, alpha rises to the
/// largest label observed so nobody is dropped.
class FairShareEstimator {
 public:
  struct Config {
    std::uint64_t capacity_bytes_per_sec = 1'000'000;
    SimDuration window = 20 * kMillisecond;
  };

  FairShareEstimator() : FairShareEstimator(Config{}) {}
  explicit FairShareEstimator(const Config& config)
      : config_(config), alpha_(static_cast<double>(config.capacity_bytes_per_sec)) {}

  /// Record an arrival (pre-drop); updates alpha at window boundaries.
  void on_arrival(std::size_t bytes, std::uint32_t label, SimTime now);

  /// Record bytes that survived policing (post-drop).
  void on_accept(std::size_t bytes) noexcept { accepted_bytes_ += bytes; }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  Config config_;
  double alpha_;
  SimTime window_start_ = 0;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t accepted_bytes_ = 0;
  std::uint32_t max_label_ = 0;
};

/// F_dps (key 15). Stateful per core router: use per-node registries.
class DpsOp final : public core::OpModule {
 public:
  explicit DpsOp(FairShareEstimator::Config config, std::uint64_t seed = 1)
      : estimator_(config), rng_(seed) {}

  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kDps; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 3; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;

  [[nodiscard]] const FairShareEstimator& estimator() const noexcept {
    return estimator_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  FairShareEstimator estimator_;
  crypto::Xoshiro256 rng_;
  std::uint64_t dropped_ = 0;
};

/// Edge side: append a labeled F_dps field for `flow`.
void add_dps_fn(core::HeaderBuilder& builder, std::uint32_t flow, std::uint32_t label);

/// Read the label back (tests/receivers).
[[nodiscard]] std::uint32_t read_dps_label(std::span<const std::uint8_t> field) noexcept;

}  // namespace dip::qos
