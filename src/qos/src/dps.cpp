#include "dip/qos/dps.hpp"

#include <algorithm>
#include <cmath>

namespace dip::qos {

std::uint32_t EdgeLabeler::label(std::uint32_t flow, std::size_t size, SimTime now) {
  FlowState& state = flows_[flow];
  if (state.last == 0 && state.rate == 0) {
    // First packet: bootstrap the estimate with something sane.
    state.rate = static_cast<double>(size) * 10.0;
    state.last = now;
    return static_cast<std::uint32_t>(state.rate);
  }
  const double gap_ns = static_cast<double>(now > state.last ? now - state.last : 1);
  // Classic CSFQ exponential average: r = (1 - e^{-T/K}) * size/T + e^{-T/K} * r.
  const double t_sec = gap_ns / static_cast<double>(kSecond);
  const double k_sec = static_cast<double>(config_.k) / static_cast<double>(kSecond);
  const double weight = std::exp(-t_sec / k_sec);
  const double instant = static_cast<double>(size) / std::max(t_sec, 1e-9);
  state.rate = (1.0 - weight) * instant + weight * state.rate;
  state.last = now;
  return static_cast<std::uint32_t>(std::min(state.rate, 4e9));
}

void FairShareEstimator::on_arrival(std::size_t bytes, std::uint32_t label,
                                    SimTime now) {
  max_label_ = std::max(max_label_, label);
  if (now - window_start_ >= config_.window) {
    const std::uint64_t window_ns = std::max<std::uint64_t>(config_.window, 1);
    const auto to_rate = [&](std::uint64_t b) {
      return static_cast<double>(b) * static_cast<double>(kSecond) /
             static_cast<double>(window_ns);
    };
    const double arrival = to_rate(window_bytes_);
    const double accepted = to_rate(accepted_bytes_);
    const auto capacity = static_cast<double>(config_.capacity_bytes_per_sec);
    if (arrival > capacity) {
      // Congested: steer the *accepted* rate toward capacity (CSFQ's
      // iterative update, bounded to avoid wild swings on empty windows).
      const double ratio =
          std::clamp(capacity / std::max(accepted, 1.0), 0.1, 10.0);
      alpha_ = std::clamp(alpha_ * ratio, 1.0, 4e9);
    } else {
      // Uncongested: no flow needs limiting; lift alpha to the largest
      // label seen so p = 0 for everyone.
      alpha_ = std::max(alpha_, static_cast<double>(max_label_));
    }
    window_start_ = now;
    window_bytes_ = 0;
    accepted_bytes_ = 0;
    max_label_ = 0;
  }
  window_bytes_ += bytes;
}

bytes::Status DpsOp::execute(core::OpContext& ctx) {
  const auto field = ctx.target_bytes();
  if (field.size() < kDpsFieldBytes) return bytes::Unexpected{bytes::Error::kMalformed};

  const std::uint32_t label = read_dps_label(field);
  const std::size_t size = ctx.locations.size() + ctx.payload.size();
  estimator_.on_arrival(size, label, ctx.now);

  if (label > 0) {
    const double p = 1.0 - estimator_.alpha() / static_cast<double>(label);
    if (p > 0 && rng_.uniform() < p) {
      ++dropped_;
      ctx.result->drop(core::DropReason::kRateExceeded);
      return {};
    }
  }
  estimator_.on_accept(size);
  return {};
}

void add_dps_fn(core::HeaderBuilder& builder, std::uint32_t flow, std::uint32_t label) {
  std::array<std::uint8_t, kDpsFieldBytes> field{};
  for (int i = 0; i < 4; ++i) {
    field[i] = static_cast<std::uint8_t>(label >> (8 * (3 - i)));
    field[4 + i] = static_cast<std::uint8_t>(flow >> (8 * (3 - i)));
  }
  builder.add_router_fn(core::OpKey::kDps, field);
}

std::uint32_t read_dps_label(std::span<const std::uint8_t> field) noexcept {
  if (field.size() < 4) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | field[i];
  return v;
}

}  // namespace dip::qos
