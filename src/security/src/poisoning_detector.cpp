#include "dip/security/poisoning_detector.hpp"

#include <algorithm>

#include "dip/crypto/siphash.hpp"

namespace dip::security {

bool PoisoningDetector::observe(std::uint64_t name_code,
                                std::span<const std::uint8_t> payload) {
  if (digests_.size() >= config_.max_tracked_names && !digests_.contains(name_code)) {
    return false;  // memory bound: stop tracking new names
  }
  const std::uint64_t digest = crypto::siphash24(crypto::process_sip_key(), payload);
  auto& seen = digests_[name_code];
  if (std::find(seen.begin(), seen.end(), digest) == seen.end()) {
    seen.push_back(digest);
  }
  if (seen.size() > config_.max_digests_per_name) {
    alarmed_ = true;
    return true;
  }
  return false;
}

}  // namespace dip::security
