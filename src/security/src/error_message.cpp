#include "dip/security/error_message.hpp"

#include "dip/core/ip.hpp"

namespace dip::security {

std::vector<std::uint8_t> FnUnsupportedError::serialize() const {
  return {
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(offending_key) >> 8),
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(offending_key)),
      static_cast<std::uint8_t>(reporter_node >> 8),
      static_cast<std::uint8_t>(reporter_node),
  };
}

bytes::Result<FnUnsupportedError> FnUnsupportedError::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kWireSize) return bytes::Err(bytes::Error::kTruncated);
  FnUnsupportedError e;
  e.offending_key =
      static_cast<core::OpKey>(static_cast<std::uint16_t>((data[0] << 8) | data[1]));
  e.reporter_node = static_cast<std::uint32_t>((data[2] << 8) | data[3]);
  return e;
}

std::optional<std::vector<std::uint8_t>> make_fn_unsupported_packet(
    const core::DipHeader& original, core::OpKey offending_key,
    std::uint32_t reporter_node) {
  const auto source_field = core::find_source_field(original.fns);
  if (!source_field) return std::nullopt;
  if (!bytes::fits(*source_field, original.locations.size())) return std::nullopt;

  // The notification swaps roles: the original source address becomes the
  // destination. The reporter has no meaningful source of its own in this
  // addressing family, so it echoes the same address (hosts recognize the
  // packet by its kDipError next-header, not by its source).
  bytes::Result<core::DipHeader> header = bytes::Err(bytes::Error::kMalformed);
  if (source_field->bit_length == 32) {
    fib::Ipv4Addr src;
    if (auto st = bytes::extract_bits(original.locations, *source_field, src.bytes); !st) {
      return std::nullopt;
    }
    header = core::make_dip32_header(src, src, core::NextHeader::kDipError);
  } else if (source_field->bit_length == 128) {
    fib::Ipv6Addr src;
    if (auto st = bytes::extract_bits(original.locations, *source_field, src.bytes); !st) {
      return std::nullopt;
    }
    header = core::make_dip128_header(src, src, core::NextHeader::kDipError);
  } else {
    return std::nullopt;  // exotic source widths: nobody to notify
  }
  if (!header) return std::nullopt;

  const FnUnsupportedError error{offending_key, reporter_node};
  std::vector<std::uint8_t> packet = header->serialize();
  const std::vector<std::uint8_t> body = error.serialize();
  packet.insert(packet.end(), body.begin(), body.end());
  return packet;
}

bool is_fn_unsupported(const core::DipHeader& header) noexcept {
  return header.basic.next_header == static_cast<std::uint8_t>(core::NextHeader::kDipError);
}

}  // namespace dip::security
