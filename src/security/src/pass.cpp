#include "dip/security/pass.hpp"

namespace dip::security {

bytes::Status PassOp::execute(core::OpContext& ctx) {
  if (!ctx.env->enforce_pass) return {};  // policy off: free pass (§2.4)
  if (ctx.field.bit_length != 128) return bytes::Unexpected{bytes::Error::kMalformed};

  const auto label_bytes = ctx.target_bytes();
  if (label_bytes.empty()) return bytes::Unexpected{bytes::Error::kMalformed};

  const crypto::Block expected =
      issue_label(ctx.env->pass_key, ctx.payload, ctx.env->mac_kind);
  if (!crypto::block_equal_ct(expected, crypto::block_from(label_bytes))) {
    ctx.result->drop(core::DropReason::kPolicyDenied);
  }
  return {};
}

crypto::Block issue_label(const crypto::Block& pass_key,
                          std::span<const std::uint8_t> payload, crypto::MacKind kind) {
  return crypto::make_mac(kind, pass_key)->compute(payload);
}

}  // namespace dip::security
