// FN-unsupported notification — the ICMP-like mechanism of §2.4.
//
// "If this FN requires all on-path ASes to participate (e.g., the FN
// designed for path authentication), the router should return an FN
// unsupported message to notify the source through a mechanism similar to
// ICMP."
//
// The notification is itself a DIP packet: a DIP-32/128 forwarding header
// addressed back to the original source (located via the original packet's
// F_source triple), carrying a small error payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/core/header.hpp"

namespace dip::security {

struct FnUnsupportedError {
  static constexpr std::size_t kWireSize = 4;

  core::OpKey offending_key{};
  std::uint32_t reporter_node = 0;  ///< 16-bit on the wire

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static bytes::Result<FnUnsupportedError> parse(
      std::span<const std::uint8_t> data);
};

/// Build the notification packet for `original` (a parsed DIP header whose
/// processing failed at `offending_key`). Returns nullopt when the original
/// carries no F_source triple of a supported width (32/128 bits) — then
/// there is nobody to notify and the packet is silently dropped.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> make_fn_unsupported_packet(
    const core::DipHeader& original, core::OpKey offending_key,
    std::uint32_t reporter_node);

/// True iff a DIP header is an FN-unsupported notification.
[[nodiscard]] bool is_fn_unsupported(const core::DipHeader& header) noexcept;

}  // namespace dip::security
