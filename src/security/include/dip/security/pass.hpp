// F_pass — source-label verification (§2.4 "Security").
//
// "An attacker can use both F_FIB and F_PIT in one packet and carry
// maliciously constructed data to pollute the node's content cache. Nodes
// can enable source label verification designs (e.g., [15], implemented as
// a new FN F_pass) to defend against this attack. Although enabling F_pass
// all the time is expensive, DIP allows the network operators to
// dynamically adjust security policies based on network conditions."
//
// Mechanism: the edge AS issues a 128-bit label = MAC_{pass_key}(payload)
// to authorized producers; the F_pass FN's target field carries the label;
// any AS router with enforce_pass on recomputes and compares. A poisoned
// data packet (foreign payload, no valid label) fails and is dropped before
// it can enter a content store — F_pass must precede F_PIT in the FN list.
#pragma once

#include <span>

#include "dip/core/op_module.hpp"
#include "dip/crypto/mac.hpp"

namespace dip::security {

/// F_pass (key 12).
class PassOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kPass; }
  /// Deliberately expensive (one MAC over the payload) — the §2.4 trade-off.
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 6; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// Control plane: the edge AS issues a label binding `payload` to this AS.
[[nodiscard]] crypto::Block issue_label(const crypto::Block& pass_key,
                                        std::span<const std::uint8_t> payload,
                                        crypto::MacKind kind = crypto::MacKind::kEm2);

}  // namespace dip::security
