// Content-poisoning detector — the §2.4 "enable F_pass on the fly" trigger.
//
// Heuristic: legitimate NDN content is immutable per name; if data packets
// for the same name code keep arriving with *different* payload digests,
// someone is racing bogus content into caches. The detector tracks recent
// (name, digest) observations and raises an alarm when the number of
// distinct digests for one name crosses a threshold, at which point the
// operator flips env.enforce_pass on.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace dip::security {

class PoisoningDetector {
 public:
  struct Config {
    std::size_t max_digests_per_name = 2;  ///< alarm above this
    std::size_t max_tracked_names = 4096;  ///< memory bound
  };

  PoisoningDetector() : PoisoningDetector(Config{}) {}
  explicit PoisoningDetector(const Config& config) : config_(config) {}

  /// Record a data packet; returns true when this observation trips the
  /// alarm for its name.
  bool observe(std::uint64_t name_code, std::span<const std::uint8_t> payload);

  [[nodiscard]] bool alarmed() const noexcept { return alarmed_; }
  void reset() noexcept {
    alarmed_ = false;
    digests_.clear();
  }

  [[nodiscard]] std::size_t tracked_names() const noexcept { return digests_.size(); }

 private:
  Config config_;
  bool alarmed_ = false;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> digests_;
};

}  // namespace dip::security
