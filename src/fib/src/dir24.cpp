#include "dip/fib/dir24.hpp"

namespace dip::fib {

namespace {
constexpr std::uint32_t kBaseEntries = 1u << 24;
}

Dir24::Dir24() : base_(kBaseEntries, kEmpty) {}

std::optional<NextHop> Dir24::do_insert(Prefix<32> prefix, NextHop nh) {
  if (nh > kMaxNextHop) return std::nullopt;
  prefix.normalize();

  const std::optional<NextHop> old_packed =
      shadow_.insert(prefix, pack(nh, prefix.length));
  if (!old_packed) ++size_;

  const std::uint32_t addr = ipv4_to_u32(prefix.addr);
  if (prefix.length <= 24) {
    const std::uint32_t first = addr >> 8;
    const std::uint32_t count = 1u << (24 - prefix.length);
    for (std::uint32_t b = first; b < first + count; ++b) {
      const std::uint32_t entry = base_[b];
      if (entry & kExtendedBit) {
        // Fold into every sub-entry not owned by a longer route.
        auto& ext = extensions_[entry & ~kExtendedBit];
        for (auto& e : ext) {
          if (e == kEmpty || unpack_len(e) <= prefix.length) e = pack(nh, prefix.length);
        }
      } else if (entry == kEmpty || unpack_len(entry) <= prefix.length) {
        base_[b] = pack(nh, prefix.length);
      }
    }
  } else {
    const std::uint32_t block = addr >> 8;
    const std::uint32_t ext_index = ensure_extension(block);
    auto& ext = extensions_[ext_index];
    const std::uint32_t first = addr & 0xff;
    const std::uint32_t count = 1u << (32 - prefix.length);
    for (std::uint32_t i = first; i < first + count; ++i) {
      if (ext[i] == kEmpty || unpack_len(ext[i]) <= prefix.length) {
        ext[i] = pack(nh, prefix.length);
      }
    }
  }
  return old_packed ? std::optional<NextHop>(unpack_nh(*old_packed)) : std::nullopt;
}

std::optional<NextHop> Dir24::do_remove(Prefix<32> prefix) {
  prefix.normalize();
  const std::optional<NextHop> old_packed = shadow_.remove(prefix);
  if (!old_packed) return std::nullopt;
  --size_;

  // Recompute every block the prefix covered from the shadow trie.
  const std::uint32_t addr = ipv4_to_u32(prefix.addr);
  const std::uint32_t first = addr >> 8;
  const std::uint32_t count = prefix.length <= 24 ? (1u << (24 - prefix.length)) : 1;
  for (std::uint32_t b = first; b < first + count; ++b) refresh_block(b);
  return unpack_nh(*old_packed);
}

std::optional<NextHop> Dir24::lookup(const Ipv4Addr& a) const {
  const std::uint32_t addr = ipv4_to_u32(a);
  const std::uint32_t entry = base_[addr >> 8];
  if (entry == kEmpty) return std::nullopt;
  if (entry & kExtendedBit) {
    const std::uint32_t e = extensions_[entry & ~kExtendedBit][addr & 0xff];
    if (e == kEmpty) return std::nullopt;
    return unpack_nh(e);
  }
  return unpack_nh(entry);
}

void Dir24::refresh_block(std::uint32_t block) {
  const std::uint32_t entry = base_[block];
  if (entry & kExtendedBit) {
    auto& ext = extensions_[entry & ~kExtendedBit];
    for (std::uint32_t i = 0; i < 256; ++i) {
      const auto best = shadow_.lookup(ipv4_from_u32((block << 8) | i));
      ext[i] = best ? *best : kEmpty;
    }
  } else {
    // No extension: no route longer than /24 covers this block, so the best
    // route is uniform across it.
    const auto best = shadow_.lookup(ipv4_from_u32(block << 8));
    base_[block] = best ? *best : kEmpty;
  }
}

std::uint32_t Dir24::ensure_extension(std::uint32_t block) {
  const std::uint32_t entry = base_[block];
  if (entry & kExtendedBit) return entry & ~kExtendedBit;

  const std::uint32_t index = static_cast<std::uint32_t>(extensions_.size());
  extensions_.emplace_back(256, entry);  // seed with the block's current route
  base_[block] = kExtendedBit | index;
  return index;
}

}  // namespace dip::fib
