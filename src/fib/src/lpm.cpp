#include "dip/fib/lpm.hpp"

#include "dip/fib/binary_trie.hpp"
#include "dip/fib/dir24.hpp"
#include "dip/fib/patricia.hpp"
#include "dip/fib/tree_bitmap.hpp"

namespace dip::fib {

template <std::size_t W>
std::unique_ptr<LpmTable<W>> make_lpm(LpmEngine engine) {
  switch (engine) {
    case LpmEngine::kBinaryTrie: return std::make_unique<BinaryTrie<W>>();
    case LpmEngine::kPatricia: return std::make_unique<PatriciaTrie<W>>();
    case LpmEngine::kDir24:
      if constexpr (W == 32) {
        return std::make_unique<Dir24>();
      } else {
        return nullptr;  // DIR-24-8 is IPv4-only
      }
    case LpmEngine::kTreeBitmap: return std::make_unique<TreeBitmap<W>>();
  }
  return nullptr;
}

template std::unique_ptr<LpmTable<32>> make_lpm<32>(LpmEngine);
template std::unique_ptr<LpmTable<128>> make_lpm<128>(LpmEngine);

}  // namespace dip::fib
