#include "dip/fib/xid_table.hpp"

namespace dip::fib {

std::optional<NextHop> XidTable::insert(XidType type, const Xid& xid, NextHop nh) {
  auto& table = tables_.at(index(type));
  const auto it = table.find(xid);
  if (it != table.end()) {
    const NextHop old = it->second;
    it->second = nh;
    return old;
  }
  table.emplace(xid, nh);
  return std::nullopt;
}

std::optional<NextHop> XidTable::remove(XidType type, const Xid& xid) {
  auto& table = tables_.at(index(type));
  const auto it = table.find(xid);
  if (it == table.end()) return std::nullopt;
  const NextHop old = it->second;
  table.erase(it);
  return old;
}

std::optional<NextHop> XidTable::lookup(XidType type, const Xid& xid) const {
  const auto& table = tables_.at(index(type));
  const auto it = table.find(xid);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::size_t XidTable::size() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tables_) n += t.size();
  return n;
}

}  // namespace dip::fib
