#include "dip/fib/name_fib.hpp"

#include "dip/crypto/siphash.hpp"

namespace dip::fib {

Name Name::parse(std::string_view text) {
  Name name;
  std::size_t pos = 0;
  if (!text.empty() && text.front() == '/') pos = 1;
  while (pos < text.size()) {
    const std::size_t slash = text.find('/', pos);
    const std::size_t end = slash == std::string_view::npos ? text.size() : slash;
    if (end == pos) return Name{};  // empty component: malformed
    name.append(std::string(text.substr(pos, end - pos)));
    pos = end + 1;
  }
  return name;
}

Name Name::prefix(std::size_t n) const {
  Name out;
  const std::size_t count = std::min(n, components_.size());
  out.components_.assign(components_.begin(),
                         components_.begin() + static_cast<std::ptrdiff_t>(count));
  return out;
}

bool Name::is_prefix_of(const Name& other) const {
  if (components_.size() > other.components_.size()) return false;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

std::string Name::to_string() const {
  if (components_.empty()) return "/";
  std::string out;
  for (const auto& c : components_) {
    out.push_back('/');
    out += c;
  }
  return out;
}

std::uint64_t NameFib::hash_prefix(const Name& name, std::size_t components) {
  // Hash components with length framing so ("ab","c") != ("a","bc").
  std::vector<std::uint8_t> buf;
  for (std::size_t i = 0; i < components; ++i) {
    const std::string& c = name.component(i);
    const auto len = static_cast<std::uint32_t>(c.size());
    for (int s = 24; s >= 0; s -= 8) buf.push_back(static_cast<std::uint8_t>(len >> s));
    buf.insert(buf.end(), c.begin(), c.end());
  }
  return crypto::siphash24(crypto::process_sip_key(), buf);
}

std::optional<NextHop> NameFib::insert(const Name& name, NextHop nh) {
  const std::size_t depth = name.component_count();
  if (by_depth_.size() <= depth) by_depth_.resize(depth + 1);
  auto& bucket = by_depth_[depth];
  const std::uint64_t h = hash_prefix(name, depth);
  auto [it, end] = bucket.equal_range(h);
  for (; it != end; ++it) {
    if (it->second.name == name) {
      const NextHop old = it->second.nh;
      it->second.nh = nh;
      return old;
    }
  }
  bucket.emplace(h, Entry{name, nh});
  ++size_;
  return std::nullopt;
}

std::optional<NextHop> NameFib::remove(const Name& name) {
  const std::size_t depth = name.component_count();
  if (by_depth_.size() <= depth) return std::nullopt;
  auto& bucket = by_depth_[depth];
  const std::uint64_t h = hash_prefix(name, depth);
  auto [it, end] = bucket.equal_range(h);
  for (; it != end; ++it) {
    if (it->second.name == name) {
      const NextHop old = it->second.nh;
      bucket.erase(it);
      --size_;
      return old;
    }
  }
  return std::nullopt;
}

std::optional<NextHop> NameFib::lookup(const Name& name) const {
  const std::size_t max_depth =
      std::min(name.component_count(), by_depth_.empty() ? 0 : by_depth_.size() - 1);
  for (std::size_t depth = max_depth + 1; depth-- > 0;) {
    if (depth >= by_depth_.size()) continue;
    const auto& bucket = by_depth_[depth];
    if (bucket.empty()) continue;
    const std::uint64_t h = hash_prefix(name, depth);
    auto [it, end] = bucket.equal_range(h);
    for (; it != end; ++it) {
      if (it->second.name.is_prefix_of(name)) return it->second.nh;
    }
  }
  return std::nullopt;
}

std::optional<NextHop> NameFib::exact(const Name& name) const {
  const std::size_t depth = name.component_count();
  if (by_depth_.size() <= depth) return std::nullopt;
  const auto& bucket = by_depth_[depth];
  const std::uint64_t h = hash_prefix(name, depth);
  auto [it, end] = bucket.equal_range(h);
  for (; it != end; ++it) {
    if (it->second.name == name) return it->second.nh;
  }
  return std::nullopt;
}

}  // namespace dip::fib
