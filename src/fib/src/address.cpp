#include "dip/fib/address.hpp"

#include <charconv>
#include <cstdio>
#include <vector>

namespace dip::fib {

std::optional<Ipv4Addr> parse_ipv4(std::string_view text) {
  Ipv4Addr a;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    unsigned value = 0;
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || value > 255 || ptr == begin) return std::nullopt;
    a.bytes[i] = static_cast<std::uint8_t>(value);
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return a;
}

std::string format_ipv4(const Ipv4Addr& a) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", a.bytes[0], a.bytes[1], a.bytes[2],
                a.bytes[3]);
  return buf;
}

std::optional<Ipv6Addr> parse_ipv6(std::string_view text) {
  // Split on "::" (at most once), then parse colon-separated 16-bit groups.
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool has_gap = false;

  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    std::size_t pos = 0;
    while (pos <= part.size()) {
      const std::size_t colon = part.find(':', pos);
      const std::string_view group =
          part.substr(pos, colon == std::string_view::npos ? std::string_view::npos
                                                           : colon - pos);
      if (group.empty() || group.size() > 4) return false;
      unsigned value = 0;
      const auto [ptr, ec] =
          std::from_chars(group.data(), group.data() + group.size(), value, 16);
      if (ec != std::errc{} || ptr != group.data() + group.size() || value > 0xffff) {
        return false;
      }
      out.push_back(static_cast<std::uint16_t>(value));
      if (colon == std::string_view::npos) break;
      pos = colon + 1;
      if (pos > part.size()) return false;
    }
    return true;
  };

  const std::size_t gap = text.find("::");
  if (gap != std::string_view::npos) {
    has_gap = true;
    if (text.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    if (!parse_groups(text.substr(0, gap), head)) return std::nullopt;
    if (!parse_groups(text.substr(gap + 2), tail)) return std::nullopt;
  } else {
    if (!parse_groups(text, head)) return std::nullopt;
  }

  const std::size_t total = head.size() + tail.size();
  if (has_gap ? total > 7 : total != 8) return std::nullopt;

  Ipv6Addr a;
  std::size_t idx = 0;
  for (std::uint16_t g : head) {
    a.bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    a.bytes[idx++] = static_cast<std::uint8_t>(g);
  }
  idx = 16 - tail.size() * 2;
  for (std::uint16_t g : tail) {
    a.bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    a.bytes[idx++] = static_cast<std::uint8_t>(g);
  }
  return a;
}

std::string format_ipv6(const Ipv6Addr& a) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%x:%x:%x:%x:%x:%x:%x:%x",
                (a.bytes[0] << 8) | a.bytes[1], (a.bytes[2] << 8) | a.bytes[3],
                (a.bytes[4] << 8) | a.bytes[5], (a.bytes[6] << 8) | a.bytes[7],
                (a.bytes[8] << 8) | a.bytes[9], (a.bytes[10] << 8) | a.bytes[11],
                (a.bytes[12] << 8) | a.bytes[13], (a.bytes[14] << 8) | a.bytes[15]);
  return buf;
}

}  // namespace dip::fib
