// DIR-24-8: flat two-level lookup table for IPv4 LPM.
//
// Classic Gupta/Lin/McKeown design: a 2^24-entry base table indexed by the
// top 24 address bits; blocks containing routes longer than /24 spill into
// 256-entry extension tables indexed by the low 8 bits. Lookup is one or two
// dependent loads — the fastest engine in ablation A3, at the cost of ~64 MiB
// and slower updates.
//
// Limitation (as in the original hardware design): next-hop ids must fit in
// 25 bits; insert() rejects larger values by returning nullopt and not
// installing the route.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dip/fib/binary_trie.hpp"
#include "dip/fib/lpm.hpp"

namespace dip::fib {

class Dir24 final : public LpmTable<32> {
 public:
  static constexpr NextHop kMaxNextHop = (1u << 25) - 1;

  Dir24();
  /// Deep copy (base + extension tables + shadow trie), adopting the
  /// source's generation via the LpmTable protected copy constructor.
  Dir24(const Dir24&) = default;

  [[nodiscard]] std::optional<NextHop> lookup(const Ipv4Addr& addr) const override;

  /// Pull the base-slab entry for `addr` into cache ahead of lookup()
  /// (the first — and usually only — dependent load of the walk).
  void prefetch(const Ipv4Addr& addr) const noexcept override {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&base_[ipv4_to_u32(addr) >> 8], 0, 2);
#else
    (void)addr;
#endif
  }

  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] std::unique_ptr<LpmTable<32>> clone() const override {
    return std::make_unique<Dir24>(*this);
  }

  /// The fixed 64 MiB base slab plus extension blocks plus the shadow trie
  /// that backs incremental updates — the whole-footprint number; the slab
  /// dominates until ~10M routes.
  [[nodiscard]] std::size_t memory_bytes() const override {
    std::size_t ext = extensions_.capacity() * sizeof(extensions_[0]);
    for (const auto& e : extensions_) ext += e.capacity() * sizeof(std::uint32_t);
    return sizeof(*this) + base_.capacity() * sizeof(std::uint32_t) + ext +
           shadow_.memory_bytes();
  }

  /// One base-slab load, plus one more when the block spills to an
  /// extension table.
  [[nodiscard]] std::size_t lookup_depth(const Ipv4Addr& addr) const override {
    return (base_[ipv4_to_u32(addr) >> 8] & kExtendedBit) != 0 ? 2 : 1;
  }

 protected:
  std::optional<NextHop> do_insert(Prefix<32> prefix, NextHop nh) override;
  std::optional<NextHop> do_remove(Prefix<32> prefix) override;

 private:
  // Entry encoding: bit 31 set -> extension table index in low 24 bits;
  // otherwise a packed {len:6, nh:25} route, or kEmpty.
  static constexpr std::uint32_t kExtendedBit = 0x8000'0000u;
  static constexpr std::uint32_t kEmpty = 0x7fff'ffffu;

  static constexpr std::uint32_t pack(NextHop nh, std::uint8_t len) noexcept {
    return (static_cast<std::uint32_t>(len) << 25) | (nh & 0x01ff'ffffu);
  }
  static constexpr NextHop unpack_nh(std::uint32_t e) noexcept { return e & 0x01ff'ffffu; }
  static constexpr std::uint8_t unpack_len(std::uint32_t e) noexcept {
    return static_cast<std::uint8_t>((e >> 25) & 0x3f);
  }

  /// Recompute one base-table entry (or every sub-entry of its extension)
  /// from the shadow trie.
  void refresh_block(std::uint32_t block);
  std::uint32_t ensure_extension(std::uint32_t block);

  std::vector<std::uint32_t> base_;                     // 2^24 entries
  std::vector<std::vector<std::uint32_t>> extensions_;  // 256 entries each

  // Shadow trie mapping prefix -> pack(nh, len); source of truth for
  // incremental updates and removals.
  BinaryTrie<32> shadow_;
  std::size_t size_ = 0;
};

}  // namespace dip::fib
