// Longest-prefix-match table interface.
//
// F_32_match, F_128_match and F_FIB all reduce to LPM over some key space;
// the engines behind this interface are the subject of ablation A3
// (bench_fib) and the scale sweep (bench_fib_scale): binary trie vs
// Patricia trie vs DIR-24-8 vs tree bitmap. docs/FIB.md is the catalogue.
//
// The base class tracks a route-table *generation*: every mutation bumps it,
// and the router's flow cache stamps each memoized verdict with the
// generation it was computed under. A cached verdict whose stamp no longer
// matches is dead — route changes invalidate the cache without any flush.
// Engines implement do_insert/do_remove; the non-virtual insert/remove
// wrappers own the bump so no engine can forget it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "dip/fib/address.hpp"

namespace dip::fib {

template <std::size_t W>
class LpmTable {
 public:
  virtual ~LpmTable() = default;

  /// Insert or replace a route. Returns the previous next hop if replaced.
  std::optional<NextHop> insert(Prefix<W> prefix, NextHop nh) {
    generation_.fetch_add(1, std::memory_order_relaxed);
    return do_insert(prefix, nh);
  }

  /// Remove a route. Returns the removed next hop if present.
  std::optional<NextHop> remove(Prefix<W> prefix) {
    generation_.fetch_add(1, std::memory_order_relaxed);
    return do_remove(prefix);
  }

  /// Longest-prefix match.
  [[nodiscard]] virtual std::optional<NextHop> lookup(const Address<W>& addr) const = 0;

  /// Hint that lookup(addr) is imminent: engines with a predictable first
  /// touch (DIR-24-8's base slab) pull it into cache; default is a no-op.
  /// The burst pipeline issues these one packet ahead on flow-cache misses.
  virtual void prefetch(const Address<W>& addr) const noexcept { (void)addr; }

  /// Number of routes installed.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Resident bytes of the structure (nodes, slabs, shadow state — the
  /// number bench_fib_scale divides by size() for bytes/prefix). Pointer
  /// engines walk their nodes, so this is O(size); call it off the fast
  /// path (exposition, bench counters).
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// Nodes (dependent loads) a lookup of `addr` touches — the
  /// memory-system cost model behind the dip_fib_lookup_depth series.
  [[nodiscard]] virtual std::size_t lookup_depth(const Address<W>& addr) const = 0;

  /// Deep copy, *inheriting the generation*. The control plane clones the
  /// live snapshot as the base for a delta build; the applied deltas then
  /// bump the copy's generation past the original's, so flow-cache entries
  /// stamped under the old snapshot die when the new one is published.
  [[nodiscard]] virtual std::unique_ptr<LpmTable<W>> clone() const = 0;

  /// Mutation epoch; bumped by every insert/remove (relaxed — readers that
  /// share the table must only mutate it while the data path is quiesced).
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }

 protected:
  LpmTable() = default;
  /// Copy adopts the source's generation (see clone()); the atomic member
  /// makes the implicit copy constructor unavailable, so engines' copy
  /// constructors delegate here.
  LpmTable(const LpmTable& other) : generation_(other.generation()) {}

  virtual std::optional<NextHop> do_insert(Prefix<W> prefix, NextHop nh) = 0;
  virtual std::optional<NextHop> do_remove(Prefix<W> prefix) = 0;

 private:
  std::atomic<std::uint64_t> generation_{0};
};

enum class LpmEngine : std::uint8_t {
  kBinaryTrie,   ///< one node per prefix bit — simple, slow, memory-hungry
  kPatricia,     ///< path-compressed trie — the default at small scale
  kDir24,        ///< DIR-24-8 flat lookup (IPv4 only) — fastest lookup, but a
                 ///< fixed ~64 MiB slab and O(block) updates; clone cost makes
                 ///< it a poor fit for the journal's copy-on-write churn path
  kTreeBitmap,   ///< stride-4 bitmap-compressed trie — the Internet-scale
                 ///< choice: lowest bytes/prefix, near-Dir24 lookups at 1M
                 ///< routes, and memcpy-cheap clone() for churn publishing
                 ///< (see docs/FIB.md for the selection guide)
};

/// Factory. kDir24 is only valid for W == 32.
template <std::size_t W>
[[nodiscard]] std::unique_ptr<LpmTable<W>> make_lpm(LpmEngine engine);

using Ipv4Lpm = LpmTable<32>;
using Ipv6Lpm = LpmTable<128>;

}  // namespace dip::fib
