// Longest-prefix-match table interface.
//
// F_32_match, F_128_match and F_FIB all reduce to LPM over some key space;
// the engines behind this interface are the subject of ablation A3
// (bench_fib): binary trie vs Patricia trie vs DIR-24-8.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dip/fib/address.hpp"

namespace dip::fib {

template <std::size_t W>
class LpmTable {
 public:
  virtual ~LpmTable() = default;

  /// Insert or replace a route. Returns the previous next hop if replaced.
  virtual std::optional<NextHop> insert(Prefix<W> prefix, NextHop nh) = 0;

  /// Remove a route. Returns the removed next hop if present.
  virtual std::optional<NextHop> remove(Prefix<W> prefix) = 0;

  /// Longest-prefix match.
  [[nodiscard]] virtual std::optional<NextHop> lookup(const Address<W>& addr) const = 0;

  /// Number of routes installed.
  [[nodiscard]] virtual std::size_t size() const = 0;
};

enum class LpmEngine : std::uint8_t {
  kBinaryTrie,   ///< one node per prefix bit — simple, slow, memory-hungry
  kPatricia,     ///< path-compressed trie — the production default
  kDir24,        ///< DIR-24-8 flat lookup (IPv4 only) — fastest lookup
};

/// Factory. kDir24 is only valid for W == 32.
template <std::size_t W>
[[nodiscard]] std::unique_ptr<LpmTable<W>> make_lpm(LpmEngine engine);

using Ipv4Lpm = LpmTable<32>;
using Ipv6Lpm = LpmTable<128>;

}  // namespace dip::fib
