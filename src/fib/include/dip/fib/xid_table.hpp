// Per-principal XID routing tables for XIA.
//
// XIA routes on 160-bit eXpressive IDentifiers, each belonging to a
// principal type (AD = autonomous domain, HID = host, SID = service,
// CID = content). A router keeps one exact-match table per principal type;
// "fallback" traversal of the address DAG consults them in edge-priority
// order (Han et al., NSDI'12).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "dip/fib/address.hpp"

namespace dip::fib {

enum class XidType : std::uint8_t {
  kAd = 0x10,   ///< autonomous domain
  kHid = 0x11,  ///< host
  kSid = 0x12,  ///< service
  kCid = 0x13,  ///< content
};

[[nodiscard]] constexpr bool is_valid_xid_type(std::uint8_t v) noexcept {
  return v == 0x10 || v == 0x11 || v == 0x12 || v == 0x13;
}

/// A 160-bit identifier.
struct Xid {
  std::array<std::uint8_t, 20> bytes{};

  friend bool operator==(const Xid&, const Xid&) = default;
};

struct XidHash {
  std::size_t operator()(const Xid& x) const noexcept {
    // XIDs are hash outputs already; fold eight bytes.
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | x.bytes[i];
    return static_cast<std::size_t>(v);
  }
};

class XidTable {
 public:
  /// Install a route for (type, xid). Replaces and returns the old next hop.
  std::optional<NextHop> insert(XidType type, const Xid& xid, NextHop nh);

  std::optional<NextHop> remove(XidType type, const Xid& xid);

  [[nodiscard]] std::optional<NextHop> lookup(XidType type, const Xid& xid) const;

  /// Mark (type, xid) as locally owned (this node is the principal).
  void set_local(XidType type, const Xid& xid) { local_.at(index(type)).emplace(xid, 0); }

  [[nodiscard]] bool is_local(XidType type, const Xid& xid) const {
    return local_.at(index(type)).contains(xid);
  }

  [[nodiscard]] std::size_t size() const noexcept;

 private:
  static std::size_t index(XidType t) {
    return static_cast<std::size_t>(t) - 0x10;
  }

  using Table = std::unordered_map<Xid, NextHop, XidHash>;
  std::array<Table, 4> tables_;
  std::array<Table, 4> local_;
};

}  // namespace dip::fib
