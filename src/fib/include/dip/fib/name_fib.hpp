// Name FIB: component-wise longest-prefix match over hierarchical names.
//
// The control-plane counterpart of F_FIB for NDN-style names
// ("/org/hotnets/prog"). Routes are stored per component count in
// SipHash-keyed hash maps; lookup probes from the longest component prefix
// down, verifying the stored name on each hit to rule out hash collisions.
//
// The data-plane prototype carries only a 32-bit compressed name (§4.1); the
// ndn module's NameCodec maps hierarchical names onto 32-bit codes whose bit
// prefixes mirror component prefixes, so routers can reuse LpmTable<32>.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dip/fib/address.hpp"

namespace dip::fib {

/// A hierarchical name: ordered components, no empty components.
class Name {
 public:
  Name() = default;

  /// Parse "/a/b/c" (leading slash optional; empty components rejected by
  /// returning an empty name).
  static Name parse(std::string_view text);

  void append(std::string component) { components_.push_back(std::move(component)); }

  [[nodiscard]] std::size_t component_count() const noexcept { return components_.size(); }
  [[nodiscard]] bool empty() const noexcept { return components_.empty(); }
  [[nodiscard]] const std::string& component(std::size_t i) const { return components_[i]; }

  /// The first n components as a new name.
  [[nodiscard]] Name prefix(std::size_t n) const;

  /// True iff this name is a (non-strict) component prefix of `other`.
  [[nodiscard]] bool is_prefix_of(const Name& other) const;

  /// Canonical "/a/b/c" form ("/" for the empty name).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Name&, const Name&) = default;

 private:
  std::vector<std::string> components_;
};

/// Longest-prefix-match table over Names.
class NameFib {
 public:
  /// Insert or replace; returns the previous next hop if any.
  std::optional<NextHop> insert(const Name& name, NextHop nh);

  /// Remove an exact prefix entry.
  std::optional<NextHop> remove(const Name& name);

  /// Longest-prefix match for `name`.
  [[nodiscard]] std::optional<NextHop> lookup(const Name& name) const;

  /// Exact match only.
  [[nodiscard]] std::optional<NextHop> exact(const Name& name) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  struct Entry {
    Name name;  // collision guard
    NextHop nh;
  };

  static std::uint64_t hash_prefix(const Name& name, std::size_t components);

  // Buckets by component count; each maps prefix-hash -> entries.
  std::vector<std::unordered_multimap<std::uint64_t, Entry>> by_depth_;
  std::size_t size_ = 0;
};

}  // namespace dip::fib
