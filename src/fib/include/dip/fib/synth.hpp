// Realistic routing-table synthesis — shared by bench_fib_scale and the
// cross-engine parity tests in fib_test.
//
// Real FIBs are nothing like uniform random prefixes: lengths follow a
// sharply peaked histogram (/24 alone is ~a quarter of the IPv4 DFZ, /48
// similarly dominates IPv6) and addresses cluster under registry
// allocation blocks, which is what gives tries their branchy-top/stringy-
// bottom shape and makes DIR-24-8 extension tables rare. The generators
// here model both: a per-mille length histogram taken from public
// RouteViews/RIPE snapshots and a bounded set of super-blocks that most
// prefixes are carved from.
//
// Everything is seed-deterministic (self-contained splitmix64, no libc
// rand, no std::uniform_* whose mapping varies by platform) so bench runs
// and tests generate byte-identical tables everywhere.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "dip/fib/address.hpp"

namespace dip::fib::synth {

template <std::size_t W>
struct SynthRoute {
  Prefix<W> prefix;
  NextHop nh = 0;
};

class Splitmix64 {
 public:
  explicit constexpr Splitmix64(std::uint64_t seed) noexcept
      : state_(seed ^ 0x9e3779b97f4a7c15ull) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

 private:
  std::uint64_t state_;
};

namespace detail {

struct LengthBin {
  std::uint8_t length;
  std::uint16_t weight;  // per mille
};

// IPv4 DFZ length mix (rounded from RouteViews full-table snapshots):
// /24 dominates, /19–/23 carry most of the rest, a thin tail of short
// aggregates and a few host/deaggregated routes.
inline constexpr LengthBin kIpv4Bins[] = {
    {8, 4},   {9, 1},   {10, 2},  {11, 3},   {12, 6},   {13, 8},  {14, 14},
    {15, 15}, {16, 95}, {17, 45}, {18, 75},  {19, 95},  {20, 100},
    {21, 95}, {22, 125}, {23, 70}, {24, 240}, {28, 4},  {32, 3}};

// IPv6 DFZ length mix: /48 dominates, /32 (allocations) and /64 next.
inline constexpr LengthBin kIpv6Bins[] = {
    {29, 15}, {32, 110}, {36, 50}, {40, 70}, {44, 60},
    {48, 440}, {52, 25}, {56, 80}, {64, 140}, {128, 10}};

template <std::size_t N>
constexpr std::uint32_t total_weight(const LengthBin (&bins)[N]) {
  std::uint32_t total = 0;
  for (const auto& b : bins) total += b.weight;
  return total;
}

template <std::size_t N>
constexpr std::uint8_t pick_length(const LengthBin (&bins)[N], std::uint32_t roll) {
  for (const auto& b : bins) {
    if (roll < b.weight) return b.length;
    roll -= b.weight;
  }
  return bins[N - 1].length;
}

}  // namespace detail

/// Synthesize `count` distinct IPv4 routes. Short aggregates (<= /12) are
/// drawn uniformly; everything else is carved from count/128 registry-style
/// /12 super-blocks so the address space clusters the way the real DFZ
/// does. Draws that collide with an installed prefix (or land in an
/// exhausted short-length space) are simply redrawn.
inline std::vector<SynthRoute<32>> ipv4_table(std::size_t count,
                                              std::uint64_t seed = 1) {
  Splitmix64 rng(seed);
  constexpr std::uint32_t kTotal = detail::total_weight(detail::kIpv4Bins);

  const std::size_t nblocks = std::max<std::size_t>(4, count / 128);
  std::vector<std::uint32_t> blocks(nblocks);
  for (auto& b : blocks) {
    // /12 allocation bases spread over unicast space (1.0.0.0–223.x).
    const auto octet = static_cast<std::uint32_t>(1 + rng.below(223));
    b = (octet << 24) | (static_cast<std::uint32_t>(rng.below(16)) << 20);
  }

  std::vector<SynthRoute<32>> out;
  out.reserve(count);
  std::set<Prefix<32>> seen;
  while (out.size() < count) {
    const auto len = detail::pick_length(
        detail::kIpv4Bins, static_cast<std::uint32_t>(rng.below(kTotal)));
    std::uint32_t addr;
    if (len <= 12) {
      addr = static_cast<std::uint32_t>(rng.next());
    } else {
      addr = blocks[rng.below(blocks.size())] |
             (static_cast<std::uint32_t>(rng.next()) & 0x000f'ffffu);
    }
    Prefix<32> p{ipv4_from_u32(addr), len};
    p.normalize();
    if (!seen.insert(p).second) continue;
    out.push_back({p, static_cast<NextHop>(1 + rng.below(255))});
  }
  return out;
}

/// Synthesize `count` distinct IPv6 routes under 2000::/3 (global unicast),
/// clustered beneath count/64 /24 super-blocks.
inline std::vector<SynthRoute<128>> ipv6_table(std::size_t count,
                                               std::uint64_t seed = 1) {
  Splitmix64 rng(seed);
  constexpr std::uint32_t kTotal = detail::total_weight(detail::kIpv6Bins);

  const std::size_t nblocks = std::max<std::size_t>(4, count / 64);
  std::vector<std::array<std::uint8_t, 3>> blocks(nblocks);
  for (auto& b : blocks) {
    b[0] = static_cast<std::uint8_t>(0x20 | rng.below(0x20));
    b[1] = static_cast<std::uint8_t>(rng.next());
    b[2] = static_cast<std::uint8_t>(rng.next());
  }

  std::vector<SynthRoute<128>> out;
  out.reserve(count);
  std::set<Prefix<128>> seen;
  while (out.size() < count) {
    const auto len = detail::pick_length(
        detail::kIpv6Bins, static_cast<std::uint32_t>(rng.below(kTotal)));
    Address<128> a{};
    for (auto& byte : a.bytes) byte = static_cast<std::uint8_t>(rng.next());
    if (len >= 24) {
      const auto& b = blocks[rng.below(blocks.size())];
      a.bytes[0] = b[0];
      a.bytes[1] = b[1];
      a.bytes[2] = b[2];
    } else {
      a.bytes[0] = static_cast<std::uint8_t>(0x20 | (a.bytes[0] & 0x1f));
    }
    Prefix<128> p{a, len};
    p.normalize();
    if (!seen.insert(p).second) continue;
    out.push_back({p, static_cast<NextHop>(1 + rng.below(255))});
  }
  return out;
}

/// Probe addresses against a synthesized table: even slots land inside an
/// installed prefix (hits, random host bits), odd slots are uniform random
/// (mostly covered only by short aggregates or nothing).
template <std::size_t W>
inline std::vector<Address<W>> probes(const std::vector<SynthRoute<W>>& routes,
                                      std::size_t count, std::uint64_t seed = 7) {
  Splitmix64 rng(seed);
  std::vector<Address<W>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Address<W> a{};
    for (auto& byte : a.bytes) byte = static_cast<std::uint8_t>(rng.next());
    if (i % 2 == 0 && !routes.empty()) {
      const Prefix<W>& p = routes[rng.below(routes.size())].prefix;
      for (std::size_t b = 0; b < p.length; ++b) a.set_bit(b, p.addr.bit(b));
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace dip::fib::synth
