// Tree bitmap (Eatherton/Dixon/Varghese) compressed LPM — the scale engine.
//
// Multibit trie with stride 4 where each node is 12 bytes: a 15-bit
// *internal* bitmap holding the prefixes that end inside the node (lengths
// 0..3 past the node's depth, heap-ordered), a 16-bit *external* bitmap
// marking which of the 16 child branches exist, and two arena offsets.
// Children of a node and its next hops are stored as contiguous runs in
// flat arenas and addressed by popcount rank, so there are no per-node
// pointers at all — the CRAM-lens representation trade: a little popcount
// arithmetic per level buys ~an order of magnitude less memory than the
// pointer tries at Internet scale, and a table that clones by vector copy.
//
// That last property is what makes this the engine of choice under churn:
// RouteJournal::flush() clones the live snapshot before applying deltas, so
// copy cost *is* publish latency. Cloning here is three memcpy-ish vector
// copies instead of a million node allocations (see docs/FIB.md and
// bench_fib_scale's churn leg).
//
// Updates rewrite one child run and one result run per affected node
// (allocate run of n±1, copy, recycle the old run through a per-size free
// list). That makes inserts slower than Patricia's pointer splice but keeps
// the arenas compact across flap-heavy workloads without a compaction pass.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "dip/fib/lpm.hpp"

namespace dip::fib {

template <std::size_t W>
class TreeBitmap final : public LpmTable<W> {
  static_assert(W % 4 == 0, "tree bitmap uses a fixed stride of 4 bits");

 public:
  static constexpr std::size_t kStride = 4;
  static constexpr std::size_t kLevels = W / kStride;  // child levels below root

  TreeBitmap() { nodes_.emplace_back(); }
  /// Deep copy by arena copy (the cheap clone the journal relies on);
  /// adopts the source's generation via the LpmTable protected copy ctor.
  TreeBitmap(const TreeBitmap&) = default;

  [[nodiscard]] std::unique_ptr<LpmTable<W>> clone() const override {
    return std::make_unique<TreeBitmap>(*this);
  }

  [[nodiscard]] std::optional<NextHop> lookup(const Address<W>& addr) const override {
    std::optional<NextHop> best;
    std::uint32_t cur = 0;
    for (std::size_t k = 0;; ++k) {
      const Node& n = nodes_[cur];
      const std::uint32_t v = k < kLevels ? stride_at(addr, k) : 0;
      if (n.internal != 0) {
        // Longest prefix ending in this node: start at the length-3 slot
        // for these stride bits and climb the heap toward the node root.
        std::uint32_t i = k < kLevels ? 7u + (v >> 1) : 0u;
        while (true) {
          if (n.internal & (1u << i)) {
            best = results_[n.result_base + rank16(n.internal, i)];
            break;
          }
          if (i == 0) break;
          i = (i - 1) >> 1;
        }
      }
      if (k >= kLevels) break;
      const std::uint32_t bit = 1u << v;
      if ((n.external & bit) == 0) break;
      cur = n.child_base + rank16(n.external, v);
    }
    return best;
  }

  /// Pull the root's child for addr's first stride — the first load of the
  /// walk that can miss (the root node itself is always hot).
  void prefetch(const Address<W>& addr) const noexcept override {
#if defined(__GNUC__) || defined(__clang__)
    const Node& root = nodes_[0];
    const std::uint32_t v = stride_at(addr, 0);
    if (root.external & (1u << v)) {
      __builtin_prefetch(&nodes_[root.child_base + rank16(root.external, v)], 0, 2);
    }
#else
    (void)addr;
#endif
  }

  [[nodiscard]] std::size_t size() const override { return size_; }

  [[nodiscard]] std::size_t memory_bytes() const override {
    std::size_t free_lists = 0;
    for (const auto& fl : free_node_runs_) free_lists += fl.capacity() * sizeof(std::uint32_t);
    for (const auto& fl : free_result_runs_) free_lists += fl.capacity() * sizeof(std::uint32_t);
    return sizeof(*this) + nodes_.capacity() * sizeof(Node) +
           results_.capacity() * sizeof(NextHop) + free_lists;
  }

  [[nodiscard]] std::size_t lookup_depth(const Address<W>& addr) const override {
    std::size_t depth = 1;  // root
    std::uint32_t cur = 0;
    for (std::size_t k = 0; k < kLevels; ++k) {
      const Node& n = nodes_[cur];
      const std::uint32_t bit = 1u << stride_at(addr, k);
      if ((n.external & bit) == 0) break;
      cur = n.child_base + rank16(n.external, stride_at(addr, k));
      ++depth;
    }
    return depth;
  }

 protected:
  std::optional<NextHop> do_insert(Prefix<W> prefix, NextHop nh) override {
    prefix.normalize();
    const std::size_t levels = prefix.length / kStride;
    std::uint32_t cur = 0;
    for (std::size_t k = 0; k < levels; ++k) {
      cur = child_or_create(cur, stride_at(prefix.addr, k));
    }
    const std::uint32_t bit = 1u << internal_index(prefix, levels);
    if (nodes_[cur].internal & bit) {
      NextHop& slot =
          results_[nodes_[cur].result_base + rank16_bit(nodes_[cur].internal, bit)];
      const NextHop old = slot;
      slot = nh;
      return old;
    }
    grow_results(cur, rank16_bit(nodes_[cur].internal, bit), nh);
    nodes_[cur].internal = static_cast<std::uint16_t>(nodes_[cur].internal | bit);
    ++size_;
    return std::nullopt;
  }

  std::optional<NextHop> do_remove(Prefix<W> prefix) override {
    prefix.normalize();
    const std::size_t levels = prefix.length / kStride;
    std::array<std::uint32_t, kLevels + 1> path;
    std::array<std::uint32_t, kLevels> branch;
    path[0] = 0;
    for (std::size_t k = 0; k < levels; ++k) {
      const Node& n = nodes_[path[k]];
      const std::uint32_t v = stride_at(prefix.addr, k);
      if ((n.external & (1u << v)) == 0) return std::nullopt;
      branch[k] = v;
      path[k + 1] = n.child_base + rank16(n.external, v);
    }
    const std::uint32_t tail = path[levels];
    const std::uint32_t bit = 1u << internal_index(prefix, levels);
    if ((nodes_[tail].internal & bit) == 0) return std::nullopt;
    const NextHop old =
        results_[nodes_[tail].result_base + rank16_bit(nodes_[tail].internal, bit)];
    shrink_results(tail, rank16_bit(nodes_[tail].internal, bit));
    nodes_[tail].internal = static_cast<std::uint16_t>(nodes_[tail].internal & ~bit);
    --size_;
    // Prune the now-empty tail of the path (a pruned node owns no runs:
    // its last result run was freed above, child runs when children left).
    for (std::size_t k = levels; k > 0; --k) {
      const Node& n = nodes_[path[k]];
      if (n.internal != 0 || n.external != 0) break;
      remove_child(path[k - 1], branch[k - 1]);
    }
    return old;
  }

 private:
  struct Node {
    std::uint16_t internal = 0;   // heap-ordered intra-node prefixes, 15 bits
    std::uint16_t external = 0;   // child present per 4-bit branch value
    std::uint32_t child_base = 0;   // arena run of popcount(external) nodes
    std::uint32_t result_base = 0;  // arena run of popcount(internal) next hops
  };

  /// Stride k of an address: bits [4k, 4k+4) as a value, MSB-first.
  static constexpr std::uint32_t stride_at(const Address<W>& a, std::size_t k) noexcept {
    return (a.bytes[k >> 1] >> ((k & 1) ? 0 : 4)) & 0xFu;
  }

  /// Rank of `bit_or_index` inside a bitmap: entries below it that are set.
  /// Overload on the raw bit for external (value v) vs heap index i use.
  static constexpr std::uint32_t rank16(std::uint32_t bitmap, std::uint32_t index) noexcept {
    return static_cast<std::uint32_t>(std::popcount(bitmap & ((1u << index) - 1u)));
  }

  /// Heap slot of the prefix inside its node: lengths 0..3 map to the
  /// classic 15-slot complete binary heap, (1<<len)-1 + value.
  static std::uint32_t internal_index(const Prefix<W>& prefix, std::size_t levels) noexcept {
    const std::size_t rem = prefix.length % kStride;
    std::uint32_t value = 0;
    for (std::size_t b = 0; b < rem; ++b) {
      value = (value << 1) | static_cast<std::uint32_t>(prefix.addr.bit(levels * kStride + b));
    }
    return (1u << rem) - 1u + value;
  }

  // rank16 above takes a heap/branch *index*; insert paths often have the
  // bit instead — rank relative to a bit is rank of its index.
  static constexpr std::uint32_t rank16_bit(std::uint32_t bitmap, std::uint32_t bit) noexcept {
    return static_cast<std::uint32_t>(std::popcount(bitmap & (bit - 1u)));
  }

  // -- arena run management ------------------------------------------------
  // Runs are recycled by exact size; no splitting or coalescing. Sizes are
  // bounded (<=16 nodes, <=15 results) so fragmentation is bounded too.

  std::uint32_t alloc_nodes(std::uint32_t count) {
    auto& fl = free_node_runs_[count];
    if (!fl.empty()) {
      const std::uint32_t base = fl.back();
      fl.pop_back();
      return base;
    }
    const auto base = static_cast<std::uint32_t>(nodes_.size());
    nodes_.resize(nodes_.size() + count);
    return base;
  }

  void free_nodes(std::uint32_t base, std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) nodes_[base + i] = Node{};
    free_node_runs_[count].push_back(base);
  }

  std::uint32_t alloc_results(std::uint32_t count) {
    auto& fl = free_result_runs_[count];
    if (!fl.empty()) {
      const std::uint32_t base = fl.back();
      fl.pop_back();
      return base;
    }
    const auto base = static_cast<std::uint32_t>(results_.size());
    results_.resize(results_.size() + count);
    return base;
  }

  void free_results(std::uint32_t base, std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) results_[base + i] = kNoRoute;
    free_result_runs_[count].push_back(base);
  }

  /// Child of nodes_[pi] for branch v, creating it (and rewriting the
  /// parent's child run) if absent. All access is index-based: alloc_nodes
  /// may grow the arena and invalidate references.
  std::uint32_t child_or_create(std::uint32_t pi, std::uint32_t v) {
    const std::uint32_t bit = 1u << v;
    const std::uint32_t ebm = nodes_[pi].external;
    const std::uint32_t rank = rank16_bit(ebm, bit);
    if (ebm & bit) return nodes_[pi].child_base + rank;
    const auto count = static_cast<std::uint32_t>(std::popcount(ebm));
    const std::uint32_t nb = alloc_nodes(count + 1);
    const std::uint32_t ob = nodes_[pi].child_base;
    for (std::uint32_t i = 0; i < rank; ++i) nodes_[nb + i] = nodes_[ob + i];
    nodes_[nb + rank] = Node{};
    for (std::uint32_t i = rank; i < count; ++i) nodes_[nb + i + 1] = nodes_[ob + i];
    if (count != 0) free_nodes(ob, count);
    nodes_[pi].external = static_cast<std::uint16_t>(ebm | bit);
    nodes_[pi].child_base = nb;
    return nb + rank;
  }

  void remove_child(std::uint32_t pi, std::uint32_t v) {
    const std::uint32_t bit = 1u << v;
    const std::uint32_t ebm = nodes_[pi].external;
    const auto count = static_cast<std::uint32_t>(std::popcount(ebm));
    const std::uint32_t rank = rank16_bit(ebm, bit);
    const std::uint32_t ob = nodes_[pi].child_base;
    std::uint32_t nb = 0;
    if (count > 1) {
      nb = alloc_nodes(count - 1);
      for (std::uint32_t i = 0, j = 0; i < count; ++i) {
        if (i == rank) continue;
        nodes_[nb + j++] = nodes_[ob + i];
      }
    }
    free_nodes(ob, count);
    nodes_[pi].external = static_cast<std::uint16_t>(ebm & ~bit);
    nodes_[pi].child_base = nb;
  }

  /// Insert `nh` at `rank` into nodes_[ni]'s result run (run grows by one).
  /// Called *before* the internal bit is set, so popcount is the old count.
  void grow_results(std::uint32_t ni, std::uint32_t rank, NextHop nh) {
    const auto count = static_cast<std::uint32_t>(std::popcount(
        static_cast<std::uint32_t>(nodes_[ni].internal)));
    const std::uint32_t nb = alloc_results(count + 1);
    const std::uint32_t ob = nodes_[ni].result_base;
    for (std::uint32_t i = 0; i < rank; ++i) results_[nb + i] = results_[ob + i];
    results_[nb + rank] = nh;
    for (std::uint32_t i = rank; i < count; ++i) results_[nb + i + 1] = results_[ob + i];
    if (count != 0) free_results(ob, count);
    nodes_[ni].result_base = nb;
  }

  /// Drop the result at `rank`. Called *before* the internal bit is
  /// cleared, so popcount is the count including the victim.
  void shrink_results(std::uint32_t ni, std::uint32_t rank) {
    const auto count = static_cast<std::uint32_t>(std::popcount(
        static_cast<std::uint32_t>(nodes_[ni].internal)));
    const std::uint32_t ob = nodes_[ni].result_base;
    std::uint32_t nb = 0;
    if (count > 1) {
      nb = alloc_results(count - 1);
      for (std::uint32_t i = 0, j = 0; i < count; ++i) {
        if (i == rank) continue;
        results_[nb + j++] = results_[ob + i];
      }
    }
    free_results(ob, count);
    nodes_[ni].result_base = nb;
  }

  std::vector<Node> nodes_;       // index 0 = root
  std::vector<NextHop> results_;
  std::array<std::vector<std::uint32_t>, 17> free_node_runs_;    // by run size
  std::array<std::vector<std::uint32_t>, 16> free_result_runs_;  // by run size
  std::size_t size_ = 0;
};

}  // namespace dip::fib
