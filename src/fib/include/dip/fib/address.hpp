// Address and prefix types for the FIB substrate.
//
// F_32_match / F_128_match (Table 1, keys 1-2) operate on 32- and 128-bit
// address fields; both are represented as fixed-size big-endian byte arrays
// so the same trie code serves IPv4, IPv6, and any future field width.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dip::fib {

/// Big-endian address of W bits (W % 8 == 0).
template <std::size_t W>
struct Address {
  static constexpr std::size_t kBits = W;
  static constexpr std::size_t kBytes = W / 8;
  std::array<std::uint8_t, kBytes> bytes{};

  /// Bit i, MSB-first (bit 0 is the top bit of bytes[0]).
  [[nodiscard]] constexpr bool bit(std::size_t i) const noexcept {
    return (bytes[i / 8] >> (7 - (i % 8))) & 1u;
  }

  constexpr void set_bit(std::size_t i, bool v) noexcept {
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - (i % 8)));
    if (v) {
      bytes[i / 8] |= mask;
    } else {
      bytes[i / 8] &= static_cast<std::uint8_t>(~mask);
    }
  }

  auto operator<=>(const Address&) const = default;
};

using Ipv4Addr = Address<32>;
using Ipv6Addr = Address<128>;

/// Build an IPv4 address from a host-order u32.
[[nodiscard]] constexpr Ipv4Addr ipv4_from_u32(std::uint32_t v) noexcept {
  Ipv4Addr a;
  for (int i = 0; i < 4; ++i) a.bytes[i] = static_cast<std::uint8_t>(v >> (8 * (3 - i)));
  return a;
}

/// Host-order u32 of an IPv4 address.
[[nodiscard]] constexpr std::uint32_t ipv4_to_u32(const Ipv4Addr& a) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | a.bytes[i];
  return v;
}

/// Parse dotted-quad ("192.0.2.1").
[[nodiscard]] std::optional<Ipv4Addr> parse_ipv4(std::string_view text);

/// Format dotted-quad.
[[nodiscard]] std::string format_ipv4(const Ipv4Addr& a);

/// Parse a *full-form* IPv6 literal of 8 colon-separated hex groups, plus the
/// "::" shorthand. ("2001:db8::1")
[[nodiscard]] std::optional<Ipv6Addr> parse_ipv6(std::string_view text);

/// Format IPv6 as 8 full hex groups (no zero compression; stable for tests).
[[nodiscard]] std::string format_ipv6(const Ipv6Addr& a);

/// A routing prefix: the top `length` bits of `addr` (rest must be zero-able;
/// insert() normalizes).
template <std::size_t W>
struct Prefix {
  Address<W> addr{};
  std::uint8_t length = 0;  ///< 0..W

  /// Zero all bits beyond `length` so equal prefixes compare equal.
  constexpr void normalize() noexcept {
    for (std::size_t i = length; i < W; ++i) addr.set_bit(i, false);
  }

  /// True iff `a` falls inside this prefix.
  [[nodiscard]] constexpr bool matches(const Address<W>& a) const noexcept {
    for (std::size_t i = 0; i < length; ++i) {
      if (addr.bit(i) != a.bit(i)) return false;
    }
    return true;
  }

  auto operator<=>(const Prefix&) const = default;
};

using Ipv4Prefix = Prefix<32>;
using Ipv6Prefix = Prefix<128>;

/// Next-hop handle: an egress face/port id. kNoRoute means "no entry".
using NextHop = std::uint32_t;
inline constexpr NextHop kNoRoute = 0xffffffffu;

}  // namespace dip::fib
