// Path-compressed (Patricia/radix) trie LPM — the production engine.
//
// Each node stores the full prefix from the root; chains of single-child
// nodes are collapsed, so depth is bounded by the number of *distinct*
// branch points, not the address width.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>

#include "dip/fib/lpm.hpp"

namespace dip::fib {

template <std::size_t W>
class PatriciaTrie final : public LpmTable<W> {
 protected:
  std::optional<NextHop> do_insert(Prefix<W> prefix, NextHop nh) override {
    prefix.normalize();
    Node* node = &root_;
    while (true) {
      if (node->prefix.length == prefix.length) {
        std::optional<NextHop> old = node->next_hop;
        if (!old) ++size_;
        node->next_hop = nh;
        return old;
      }
      // Invariant: node->prefix is a proper prefix of `prefix`.
      const bool bit = prefix.addr.bit(node->prefix.length);
      auto& slot = node->child[bit];
      if (!slot) {
        slot = std::make_unique<Node>();
        slot->prefix = prefix;
        slot->next_hop = nh;
        ++size_;
        return std::nullopt;
      }

      const std::size_t diverge = first_divergence(slot->prefix, prefix);
      if (diverge == slot->prefix.length) {
        // slot->prefix is a prefix of `prefix`: descend.
        node = slot.get();
        continue;
      }
      if (diverge == prefix.length) {
        // `prefix` is a proper prefix of slot->prefix: insert above slot.
        auto fresh = std::make_unique<Node>();
        fresh->prefix = prefix;
        fresh->next_hop = nh;
        const bool down = slot->prefix.addr.bit(prefix.length);
        fresh->child[down] = std::move(slot);
        slot = std::move(fresh);
        ++size_;
        return std::nullopt;
      }
      // True divergence: split with a forwarding-less junction node.
      auto junction = std::make_unique<Node>();
      junction->prefix = prefix;
      junction->prefix.length = static_cast<std::uint8_t>(diverge);
      junction->prefix.normalize();
      auto leaf = std::make_unique<Node>();
      leaf->prefix = prefix;
      leaf->next_hop = nh;
      const bool old_bit = slot->prefix.addr.bit(diverge);
      junction->child[old_bit] = std::move(slot);
      junction->child[!old_bit] = std::move(leaf);
      slot = std::move(junction);
      ++size_;
      return std::nullopt;
    }
  }

  std::optional<NextHop> do_remove(Prefix<W> prefix) override {
    prefix.normalize();
    Node* parent = nullptr;
    Node* node = &root_;
    while (node->prefix.length < prefix.length) {
      const bool bit = prefix.addr.bit(node->prefix.length);
      Node* next = node->child[bit].get();
      if (!next || first_divergence(next->prefix, prefix) <
                       std::min<std::size_t>(next->prefix.length, prefix.length)) {
        return std::nullopt;
      }
      if (next->prefix.length > prefix.length) return std::nullopt;
      parent = node;
      node = next;
    }
    if (node->prefix != prefix || !node->next_hop) return std::nullopt;

    std::optional<NextHop> old = node->next_hop;
    node->next_hop.reset();
    --size_;
    splice(parent, node);
    return old;
  }

 public:
  PatriciaTrie() = default;
  PatriciaTrie(const PatriciaTrie& other)
      : LpmTable<W>(other), size_(other.size_) {
    copy_subtree(root_, other.root_);
  }

  [[nodiscard]] std::unique_ptr<LpmTable<W>> clone() const override {
    return std::make_unique<PatriciaTrie>(*this);
  }

  [[nodiscard]] std::optional<NextHop> lookup(const Address<W>& addr) const override {
    std::optional<NextHop> best = root_.next_hop;
    const Node* node = &root_;
    while (node->prefix.length < W) {
      const Node* next = node->child[addr.bit(node->prefix.length)].get();
      if (!next) break;
      // Verify the skipped bits actually match.
      if (!next->prefix.matches(addr)) break;
      if (next->next_hop) best = next->next_hop;
      node = next;
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const override { return size_; }

  [[nodiscard]] std::size_t memory_bytes() const override {
    return sizeof(*this) + (count_nodes(root_) - 1) * sizeof(Node);
  }

  [[nodiscard]] std::size_t lookup_depth(const Address<W>& addr) const override {
    std::size_t depth = 1;
    const Node* node = &root_;
    while (node->prefix.length < W) {
      const Node* next = node->child[addr.bit(node->prefix.length)].get();
      if (!next || !next->prefix.matches(addr)) break;
      ++depth;
      node = next;
    }
    return depth;
  }

 private:
  struct Node {
    Prefix<W> prefix{};  // full path from root
    std::optional<NextHop> next_hop;
    std::unique_ptr<Node> child[2];
  };

  static std::size_t count_nodes(const Node& n) {
    std::size_t count = 1;
    for (int b = 0; b < 2; ++b) {
      if (n.child[b]) count += count_nodes(*n.child[b]);
    }
    return count;
  }

  static void copy_subtree(Node& dst, const Node& src) {
    dst.prefix = src.prefix;
    dst.next_hop = src.next_hop;
    for (int b = 0; b < 2; ++b) {
      if (src.child[b]) {
        dst.child[b] = std::make_unique<Node>();
        copy_subtree(*dst.child[b], *src.child[b]);
      }
    }
  }

  /// First bit position where the two prefixes differ, capped at the shorter
  /// length.
  static std::size_t first_divergence(const Prefix<W>& a, const Prefix<W>& b) noexcept {
    const std::size_t limit = std::min<std::size_t>(a.length, b.length);
    for (std::size_t i = 0; i < limit; ++i) {
      if (a.addr.bit(i) != b.addr.bit(i)) return i;
    }
    return limit;
  }

  /// Remove now-useless structure after clearing node's next hop.
  void splice(Node* parent, Node* node) {
    if (!parent) return;  // root is never spliced
    const bool has0 = static_cast<bool>(node->child[0]);
    const bool has1 = static_cast<bool>(node->child[1]);
    auto& slot = parent->child[parent_bit(parent, node)];
    if (!has0 && !has1) {
      slot.reset();
      // Parent may itself have become a useless junction; one level is
      // enough to restore the invariant for this removal.
      collapse_junction(parent);
    } else if (has0 != has1) {
      slot = std::move(node->child[has1 ? 1 : 0]);
    }
    // Two children: node stays as junction.
  }

  static bool parent_bit(const Node* parent, const Node* node) noexcept {
    return parent->child[1].get() == node;
  }

  void collapse_junction(Node* node) {
    if (node == &root_ || node->next_hop) return;
    const bool has0 = static_cast<bool>(node->child[0]);
    const bool has1 = static_cast<bool>(node->child[1]);
    if (has0 != has1) {
      // Splice node's single child into node by stealing its contents.
      std::unique_ptr<Node> child = std::move(node->child[has1 ? 1 : 0]);
      node->prefix = child->prefix;
      node->next_hop = child->next_hop;
      node->child[0] = std::move(child->child[0]);
      node->child[1] = std::move(child->child[1]);
    }
  }

  Node root_;  // prefix length 0
  std::size_t size_ = 0;
};

}  // namespace dip::fib
