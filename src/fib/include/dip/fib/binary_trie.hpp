// Uncompressed binary trie LPM — the reference engine.
//
// One node per prefix bit. Obviously correct, used as the oracle in property
// tests and as the ablation baseline in bench A3.
#pragma once

#include <memory>
#include <optional>

#include "dip/fib/lpm.hpp"

namespace dip::fib {

template <std::size_t W>
class BinaryTrie final : public LpmTable<W> {
 protected:
  std::optional<NextHop> do_insert(Prefix<W> prefix, NextHop nh) override {
    prefix.normalize();
    Node* node = &root_;
    for (std::size_t i = 0; i < prefix.length; ++i) {
      auto& child = node->child[prefix.addr.bit(i)];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    std::optional<NextHop> old = node->next_hop;
    if (!old) ++size_;
    node->next_hop = nh;
    return old;
  }

  std::optional<NextHop> do_remove(Prefix<W> prefix) override {
    prefix.normalize();
    Node* node = &root_;
    for (std::size_t i = 0; i < prefix.length; ++i) {
      auto& child = node->child[prefix.addr.bit(i)];
      if (!child) return std::nullopt;
      node = child.get();
    }
    std::optional<NextHop> old = node->next_hop;
    if (old) {
      node->next_hop.reset();
      --size_;
    }
    // Dangling chains are left in place; fine for a reference engine.
    return old;
  }

 public:
  BinaryTrie() = default;
  BinaryTrie(const BinaryTrie& other)
      : LpmTable<W>(other), size_(other.size_) {
    copy_subtree(root_, other.root_);
  }

  [[nodiscard]] std::unique_ptr<LpmTable<W>> clone() const override {
    return std::make_unique<BinaryTrie>(*this);
  }

  [[nodiscard]] std::optional<NextHop> lookup(const Address<W>& addr) const override {
    std::optional<NextHop> best = root_.next_hop;
    const Node* node = &root_;
    for (std::size_t i = 0; i < W; ++i) {
      node = node->child[addr.bit(i)].get();
      if (!node) break;
      if (node->next_hop) best = node->next_hop;
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const override { return size_; }

  [[nodiscard]] std::size_t memory_bytes() const override {
    return sizeof(*this) + (count_nodes(root_) - 1) * sizeof(Node);
  }

  [[nodiscard]] std::size_t lookup_depth(const Address<W>& addr) const override {
    std::size_t depth = 1;
    const Node* node = &root_;
    for (std::size_t i = 0; i < W; ++i) {
      node = node->child[addr.bit(i)].get();
      if (!node) break;
      ++depth;
    }
    return depth;
  }

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<NextHop> next_hop;
  };

  static std::size_t count_nodes(const Node& n) {
    std::size_t count = 1;
    for (int b = 0; b < 2; ++b) {
      if (n.child[b]) count += count_nodes(*n.child[b]);
    }
    return count;
  }

  static void copy_subtree(Node& dst, const Node& src) {
    dst.next_hop = src.next_hop;
    for (int b = 0; b < 2; ++b) {
      if (src.child[b]) {
        dst.child[b] = std::make_unique<Node>();
        copy_subtree(*dst.child[b], *src.child[b]);
      }
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace dip::fib
