#include "dip/refmodel/refmodel.hpp"

#include <algorithm>
#include <cstring>

#include "dip/bytes/bitfield.hpp"

namespace dip::refmodel {

namespace {

// ---------------------------------------------------------------------------
// Spec constants, restated from the paper / DESIGN.md (not included from
// core — redeclaring them here is the point of an independent model).
// ---------------------------------------------------------------------------

constexpr std::size_t kBasicHeaderBytes = 6;
constexpr std::size_t kFnTripleBytes = 6;
constexpr std::uint8_t kMaxWireFns = 16;  // HeaderView::kMaxFns in production

// Op keys (Table 1 + extensions).
constexpr std::uint16_t kMatch32 = 1;
constexpr std::uint16_t kMatch128 = 2;
constexpr std::uint16_t kSource = 3;
constexpr std::uint16_t kFib = 4;
constexpr std::uint16_t kPit = 5;
constexpr std::uint16_t kParm = 6;
constexpr std::uint16_t kMac = 7;
constexpr std::uint16_t kMark = 8;
constexpr std::uint16_t kVer = 9;
constexpr std::uint16_t kDag = 10;
constexpr std::uint16_t kIntent = 11;
constexpr std::uint16_t kPass = 12;
constexpr std::uint16_t kTelemetry = 13;
constexpr std::uint16_t kCc = 14;
constexpr std::uint16_t kDps = 15;
constexpr std::uint16_t kHvf = 16;
constexpr std::uint16_t kCustody = 17;
constexpr std::uint16_t kBundleFrag = 18;

[[nodiscard]] bool known_key(std::uint16_t key) { return key >= 1 && key <= 18; }

/// §2.4 heterogeneous configuration: path-critical FNs error back to the
/// source when a node cannot honor them; others are silently skipped.
[[nodiscard]] bool requires_full_path(std::uint16_t key) {
  return key == kParm || key == kMac || key == kMark || key == kVer || key == kHvf;
}

/// §2.2 modular parallelism: only FNs with no cross-FN coupling commute.
[[nodiscard]] bool order_independent(std::uint16_t key) {
  return key == kMatch32 || key == kMatch128 || key == kSource ||
         key == kTelemetry || key == kBundleFrag;
}

/// Abstract per-invocation cost units charged against the packet budget
/// (§2.4); must equal what each production module's cost() declares.
[[nodiscard]] std::uint32_t cost_of(std::uint16_t key) {
  switch (key) {
    case kMatch32: return 2;
    case kMatch128: return 3;
    case kSource: return 1;
    case kFib: return 2;
    case kPit: return 2;
    case kParm: return 2;
    case kMac: return 8;
    case kMark: return 2;
    case kDag: return 4;
    case kIntent: return 2;
    case kPass: return 6;
    case kTelemetry: return 2;
    case kDps: return 3;
    case kHvf: return 5;
    case kCustody: return 5;
    case kBundleFrag: return 1;
    default: return 1;
  }
}

[[nodiscard]] std::uint8_t header_checksum(std::span<const std::uint8_t> first5) {
  std::uint8_t x = 0xDB;  // domain separator (all-zero headers must not verify)
  for (std::size_t i = 0; i < 5 && i < first5.size(); ++i) x ^= first5[i];
  return x;
}

// -- OPT block layout (§3 / DESIGN.md §5) -----------------------------------
constexpr std::size_t kOptPvfToOpv = 16;  // OPV sits 16 bytes after the PVF

// -- EPIC block layout (§1 example / src/epic docs) -------------------------
constexpr std::size_t kEpicSessionOffset = 16;
constexpr std::size_t kEpicHopIndexOffset = 36;
constexpr std::size_t kEpicHopCountOffset = 37;
constexpr std::size_t kEpicFixedBytes = 40;
constexpr std::size_t kEpicHvfBytes = 4;
constexpr std::size_t kEpicMaxHops = 8;
constexpr std::uint8_t kEpicTagValidate = 0x00;
constexpr std::uint8_t kEpicTagProof = 0x50;

/// trunc4(MAC_{key}(DataHash|SessionID|Timestamp|hop|flavor)).
std::array<std::uint8_t, kEpicHvfBytes> epic_hop_tag(const crypto::Block& key,
                                                     std::span<const std::uint8_t> block,
                                                     std::uint8_t hop,
                                                     std::uint8_t flavor,
                                                     crypto::MacKind kind) {
  std::array<std::uint8_t, 38> input{};
  std::memcpy(input.data(), block.data(), 36);
  input[36] = hop;
  input[37] = flavor;
  const crypto::Block mac = crypto::make_mac(kind, key)->compute(input);
  std::array<std::uint8_t, kEpicHvfBytes> out{};
  std::memcpy(out.data(), mac.data(), kEpicHvfBytes);
  return out;
}

// -- XIA DAG wire format (src/xia docs §) -----------------------------------
constexpr std::size_t kDagHeaderBytes = 8;
constexpr std::size_t kDagNodeBytes = 26;  // type:1 xid:20 degree:1 edges:4
constexpr std::size_t kDagMaxNodes = 8;
constexpr std::size_t kDagMaxEdges = 4;
constexpr std::uint8_t kDagSourceCursor = 0xfe;
constexpr std::uint8_t kXidAd = 0x10;
constexpr std::uint8_t kXidCid = 0x13;

struct RefDagNode {
  std::uint8_t type = 0;
  std::array<std::uint8_t, 20> xid{};
  std::vector<std::uint8_t> edges;
};

struct RefDag {
  std::uint8_t cursor = kDagSourceCursor;
  std::uint8_t intent = 0;
  std::vector<std::uint8_t> source_edges;
  std::vector<RefDagNode> nodes;

  [[nodiscard]] std::span<const std::uint8_t> edges_of(std::uint8_t at) const {
    if (at == kDagSourceCursor) return source_edges;
    if (at >= nodes.size()) return {};
    return nodes[at].edges;
  }
};

/// Parse + validate a DAG exactly as the spec demands: bounded counts,
/// valid XID types, in-range edges, acyclic (DFS), sane cursor.
std::optional<RefDag> parse_ref_dag(std::span<const std::uint8_t> data) {
  if (data.size() < kDagHeaderBytes) return std::nullopt;
  RefDag dag;
  const std::uint8_t node_count = data[0];
  dag.cursor = data[1];
  dag.intent = data[2];
  const std::uint8_t src_degree = data[3];
  if (node_count > kDagMaxNodes || src_degree > kDagMaxEdges) return std::nullopt;
  if (data.size() < kDagHeaderBytes + node_count * kDagNodeBytes) return std::nullopt;
  for (std::uint8_t i = 0; i < src_degree; ++i) dag.source_edges.push_back(data[4 + i]);

  std::size_t off = kDagHeaderBytes;
  for (std::uint8_t n = 0; n < node_count; ++n) {
    RefDagNode node;
    node.type = data[off];
    if (node.type < kXidAd || node.type > kXidCid) return std::nullopt;
    std::memcpy(node.xid.data(), data.data() + off + 1, 20);
    const std::uint8_t degree = data[off + 21];
    if (degree > kDagMaxEdges) return std::nullopt;
    for (std::uint8_t i = 0; i < degree; ++i) node.edges.push_back(data[off + 22 + i]);
    dag.nodes.push_back(std::move(node));
    off += kDagNodeBytes;
  }

  if (dag.intent >= dag.nodes.size()) return std::nullopt;
  for (std::uint8_t e : dag.source_edges) {
    if (e >= dag.nodes.size()) return std::nullopt;
  }
  for (const RefDagNode& n : dag.nodes) {
    for (std::uint8_t e : n.edges) {
      if (e >= dag.nodes.size()) return std::nullopt;
    }
  }

  // Acyclicity via 3-color DFS over node edges.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(dag.nodes.size(), Color::kWhite);
  struct Frame {
    std::uint8_t node;
    std::size_t edge = 0;
  };
  for (std::uint8_t start = 0; start < dag.nodes.size(); ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack{{start, 0}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& edges = dag.nodes[f.node].edges;
      if (f.edge < edges.size()) {
        const std::uint8_t next = edges[f.edge++];
        if (color[next] == Color::kGray) return std::nullopt;  // cycle
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back({next, 0});
        }
      } else {
        color[f.node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }

  if (dag.cursor != kDagSourceCursor && dag.cursor >= dag.nodes.size()) {
    return std::nullopt;
  }
  return dag;
}

[[nodiscard]] std::uint64_t ref_xid_code(const std::array<std::uint8_t, 20>& xid) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | xid[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Table setup
// ---------------------------------------------------------------------------

void RefNode::add_route32(std::uint32_t addr, std::uint8_t prefix_len, std::uint32_t nh) {
  const std::uint32_t mask =
      prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  const std::uint32_t canonical = addr & mask;
  for (Route32& r : fib32_) {
    if (r.addr == canonical && r.len == prefix_len) {
      r.nh = nh;
      return;
    }
  }
  fib32_.push_back({canonical, prefix_len, nh});
}

void RefNode::add_route128(const std::array<std::uint8_t, 16>& addr,
                           std::uint8_t prefix_len, std::uint32_t nh) {
  std::array<std::uint8_t, 16> canonical{};
  for (std::size_t bit = 0; bit < prefix_len; ++bit) {
    const std::uint8_t b = addr[bit / 8] & static_cast<std::uint8_t>(0x80 >> (bit % 8));
    canonical[bit / 8] |= b;
  }
  for (Route128& r : fib128_) {
    if (r.addr == canonical && r.len == prefix_len) {
      r.nh = nh;
      return;
    }
  }
  fib128_.push_back({canonical, prefix_len, nh});
}

void RefNode::remove_route32(std::uint32_t addr, std::uint8_t prefix_len) {
  const std::uint32_t mask =
      prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  const std::uint32_t canonical = addr & mask;
  for (auto it = fib32_.begin(); it != fib32_.end(); ++it) {
    if (it->addr == canonical && it->len == prefix_len) {
      fib32_.erase(it);
      return;
    }
  }
}

void RefNode::remove_route128(const std::array<std::uint8_t, 16>& addr,
                              std::uint8_t prefix_len) {
  std::array<std::uint8_t, 16> canonical{};
  for (std::size_t bit = 0; bit < prefix_len; ++bit) {
    const std::uint8_t b = addr[bit / 8] & static_cast<std::uint8_t>(0x80 >> (bit % 8));
    canonical[bit / 8] |= b;
  }
  for (auto it = fib128_.begin(); it != fib128_.end(); ++it) {
    if (it->addr == canonical && it->len == prefix_len) {
      fib128_.erase(it);
      return;
    }
  }
}

void RefNode::add_xid_route(std::uint8_t type, const std::array<std::uint8_t, 20>& xid,
                            std::uint32_t nh) {
  xid_routes_[{type, xid}] = nh;
}

void RefNode::set_xid_local(std::uint8_t type, const std::array<std::uint8_t, 20>& xid) {
  xid_local_.insert({type, xid});
}

void RefNode::store_content(std::uint64_t name_code,
                            std::span<const std::uint8_t> payload) {
  cs_insert(name_code, payload);
}

std::optional<std::uint32_t> RefNode::lookup32(std::uint32_t addr) const {
  std::optional<std::uint32_t> best;
  int best_len = -1;
  for (const Route32& r : fib32_) {
    const std::uint32_t mask = r.len == 0 ? 0 : ~std::uint32_t{0} << (32 - r.len);
    if ((addr & mask) == r.addr && r.len > best_len) {
      best = r.nh;
      best_len = r.len;
    }
  }
  return best;
}

std::optional<std::uint32_t> RefNode::lookup128(
    const std::array<std::uint8_t, 16>& addr) const {
  std::optional<std::uint32_t> best;
  int best_len = -1;
  for (const Route128& r : fib128_) {
    bool match = true;
    for (std::size_t bit = 0; bit < r.len && match; ++bit) {
      const auto mask = static_cast<std::uint8_t>(0x80 >> (bit % 8));
      match = (addr[bit / 8] & mask) == (r.addr[bit / 8] & mask);
    }
    if (match && r.len > best_len) {
      best = r.nh;
      best_len = r.len;
    }
  }
  return best;
}

void RefNode::pit_expire(SimTime now) {
  for (auto it = pit_.begin(); it != pit_.end();) {
    if (it->second.expiry <= now) {
      it = pit_.erase(it);
    } else {
      ++it;
    }
  }
}

bool RefNode::cs_contains(std::uint64_t code) const {
  for (const auto& [key, payload] : cs_lru_) {
    if (key == code) return true;
  }
  return false;
}

void RefNode::cs_insert(std::uint64_t code, std::span<const std::uint8_t> payload) {
  if (cfg_.content_store_capacity == 0) return;  // caching disabled
  for (auto it = cs_lru_.begin(); it != cs_lru_.end(); ++it) {
    if (it->first == code) {
      it->second.assign(payload.begin(), payload.end());
      cs_lru_.splice(cs_lru_.begin(), cs_lru_, it);  // refresh recency
      return;
    }
  }
  if (cs_lru_.size() >= cfg_.content_store_capacity) cs_lru_.pop_back();  // evict LRU
  cs_lru_.emplace_front(code, std::vector<std::uint8_t>(payload.begin(), payload.end()));
}

// ---------------------------------------------------------------------------
// Wire parsing
// ---------------------------------------------------------------------------

std::optional<RefNode::RefHeader> RefNode::bind(std::span<std::uint8_t> packet) {
  if (packet.size() < kBasicHeaderBytes) return std::nullopt;
  if (packet[5] != header_checksum(packet.subspan(0, 5))) return std::nullopt;

  RefHeader h;
  h.raw = packet;
  h.next_header = packet[0];
  h.fn_num = packet[1];
  h.hop_limit = packet[2];
  const auto param = static_cast<std::uint16_t>((packet[3] << 8) | packet[4]);
  h.parallel = (param & 0x0001u) != 0;
  h.loc_len = static_cast<std::uint16_t>((param >> 1) & 0x03ffu);

  if (h.fn_num > kMaxWireFns) return std::nullopt;
  const std::size_t fns_bytes = h.fn_num * kFnTripleBytes;
  const std::size_t header_size = kBasicHeaderBytes + fns_bytes + h.loc_len;
  if (packet.size() < header_size) return std::nullopt;

  for (std::size_t i = 0; i < h.fn_num; ++i) {
    const std::size_t off = kBasicHeaderBytes + i * kFnTripleBytes;
    RefFn fn;
    fn.loc = static_cast<std::uint16_t>((packet[off] << 8) | packet[off + 1]);
    fn.len = static_cast<std::uint16_t>((packet[off + 2] << 8) | packet[off + 3]);
    fn.op = static_cast<std::uint16_t>((packet[off + 4] << 8) | packet[off + 5]);
    // Every FN must address a non-empty bit range inside the locations block.
    if (!bytes::fits({fn.loc, fn.len}, h.loc_len)) return std::nullopt;
    h.fns.push_back(fn);
  }
  h.locations = packet.subspan(kBasicHeaderBytes + fns_bytes, h.loc_len);
  h.payload = packet.subspan(header_size);
  return h;
}

std::span<std::uint8_t> RefNode::field_bytes(const RefFn& fn, RefHeader& h) {
  if (fn.loc % 8 != 0 || fn.len % 8 != 0) return {};  // not byte-aligned
  return h.locations.subspan(fn.loc / 8, fn.len / 8);
}

std::optional<std::uint64_t> RefNode::field_uint(const RefFn& fn, const RefHeader& h) {
  const auto v = bytes::extract_uint(h.locations, {fn.loc, fn.len});
  if (!v) return std::nullopt;
  return *v;
}

// ---------------------------------------------------------------------------
// Algorithm 1
// ---------------------------------------------------------------------------

RefVerdict RefNode::process(std::span<std::uint8_t> packet, std::uint32_t ingress,
                            SimTime now) {
  RefVerdict v;
  auto h = bind(packet);
  if (!h) {
    // Byte damage. Strict mode treats it as a protocol violation; lenient
    // mode quarantines it for offline inspection.
    if (cfg_.lenient) {
      ++quarantined_;
      v.drop(RefDrop::kCorruptQuarantine);
    } else {
      v.drop(RefDrop::kMalformed);
    }
    ledger_.note(v);
    return v;
  }

  // §2.4 hard per-packet FN-count limit.
  if (h->fns.size() > cfg_.max_fn_per_packet) {
    v.drop(RefDrop::kBudgetExhausted);
    ledger_.note(v);
    return v;
  }

  // Hop limit: a packet arriving with 0 was never forwardable (no rewrite);
  // one arriving with 1 is decremented on the wire *then* dropped.
  if (h->hop_limit == 0) {
    v.drop(RefDrop::kHopLimitExceeded);
    ledger_.note(v);
    return v;
  }
  --h->hop_limit;
  packet[2] = h->hop_limit;
  packet[5] = header_checksum(packet.subspan(0, 5));
  const std::uint8_t live_floor = cfg_.mutation == Mutation::kHopOffByOne ? 1 : 0;
  if (h->hop_limit <= live_floor) {
    v.drop(RefDrop::kHopLimitExceeded);
    ledger_.note(v);
    return v;
  }

  dispatch(*h, ingress, now, v);

  // No match FN decided an egress: default port, else drop.
  if (v.action == RefAction::kForward && v.egress.empty()) {
    if (cfg_.default_egress) {
      v.egress.push_back(*cfg_.default_egress);
    } else {
      v.drop(RefDrop::kNoRoute);
    }
  }
  ledger_.note(v);
  return v;
}

bool RefNode::relax_eligible(const RefHeader& h) const {
  for (std::size_t i = 0; i < h.fns.size(); ++i) {
    if (h.fns[i].host_tagged()) continue;  // routers skip these in any order
    const std::uint16_t key = h.fns[i].key();
    if (!known_key(key) || !order_independent(key)) return false;
    const std::uint32_t a_lo = h.fns[i].loc;
    const std::uint32_t a_hi = a_lo + h.fns[i].len;
    for (std::size_t j = i + 1; j < h.fns.size(); ++j) {
      if (h.fns[j].host_tagged()) continue;
      const std::uint32_t b_lo = h.fns[j].loc;
      const std::uint32_t b_hi = b_lo + h.fns[j].len;
      if (a_lo < b_hi && b_lo < a_hi) return false;  // overlapping fields
    }
  }
  return true;
}

void RefNode::dispatch(RefHeader& h, std::uint32_t ingress, SimTime now, RefVerdict& v) {
  std::uint32_t budget = cfg_.per_packet_budget;
  Scratch scratch;
  if (h.parallel && relax_eligible(h)) {
    // §2.2: the sender asserted independence and the router verified it —
    // any schedule is legal. Run back to front (the observably different
    // schedule the production batch path uses).
    for (std::size_t i = h.fns.size(); i-- > 0;) {
      if (!run_fn(h.fns[i], h, ingress, now, budget, scratch, v)) return;
    }
    return;
  }
  for (const RefFn& fn : h.fns) {
    if (!run_fn(fn, h, ingress, now, budget, scratch, v)) return;
  }
}

bool RefNode::run_fn(const RefFn& fn, RefHeader& h, std::uint32_t ingress, SimTime now,
                     std::uint32_t& budget, Scratch& scratch, RefVerdict& v) {
  // Algorithm 1 line 5: host-tagged operations are skipped by routers.
  if (fn.host_tagged()) {
    ledger_.op_keys_seen.insert(fn.key());
    return true;
  }
  const std::uint16_t key = fn.key();
  ledger_.op_keys_seen.insert(key);

  const bool modeled =
      key == kMatch32 || key == kMatch128 || key == kSource || key == kFib ||
      key == kPit || key == kParm || key == kMac || key == kMark || key == kDag ||
      key == kIntent || key == kPass || key == kTelemetry || key == kHvf ||
      (key == kDps && cfg_.dps_enabled) ||
      ((key == kCustody || key == kBundleFrag) && cfg_.custody_enabled);
  if (!modeled) {
    // §2.4: unsupported path-critical FN -> error back to the source;
    // anything else is skipped.
    if (known_key(key) && requires_full_path(key)) {
      v.action = RefAction::kError;
      v.reason = RefDrop::kUnsupportedFn;
      v.offending_key = key;
      v.egress.clear();
      return false;
    }
    return true;
  }

  // §2.4 per-packet processing budget, charged before execution.
  const std::uint32_t cost = cost_of(key);
  if (cost > budget) {
    v.drop(RefDrop::kBudgetExhausted);
    return false;
  }
  budget -= cost;

  ledger_.op_keys_executed.insert(key);
  bool status_ok = true;
  switch (key) {
    case kMatch32: status_ok = op_match32(fn, h, v); break;
    case kMatch128: status_ok = op_match128(fn, h, v); break;
    case kSource: break;  // F_source carries data; routers do nothing
    case kFib: status_ok = op_fib(fn, h, ingress, now, v); break;
    case kPit: status_ok = op_pit(fn, h, now, v); break;
    case kParm: status_ok = op_parm(fn, h, scratch); break;
    case kMac: status_ok = op_mac(fn, h, scratch); break;
    case kMark: status_ok = op_mark(fn, h, scratch); break;
    case kDag: status_ok = op_dag(fn, h, v); break;
    case kIntent: status_ok = op_intent(fn, h, ingress, v); break;
    case kPass: status_ok = op_pass(fn, h, v); break;
    case kTelemetry: status_ok = op_telemetry(fn, h, ingress, now); break;
    case kDps: status_ok = op_dps(fn, h, now, v); break;
    case kHvf: status_ok = op_hvf(fn, h, v); break;
    case kCustody: status_ok = op_custody(fn, h, v); break;
    case kBundleFrag: status_ok = op_bundlefrag(fn, h); break;
    default: break;
  }
  if (!status_ok) {
    // A status error means the composition itself is broken (bad field
    // length, missing F_parm, non-aligned slice...): malformed.
    v.drop(RefDrop::kMalformed);
    return false;
  }
  return v.action == RefAction::kForward;
}

// ---------------------------------------------------------------------------
// Op modules
// ---------------------------------------------------------------------------

bool RefNode::op_match32(const RefFn& fn, RefHeader& h, RefVerdict& v) {
  if (fn.len != 32) return false;
  const auto value = field_uint(fn, h);
  if (!value) return false;
  const auto nh = lookup32(static_cast<std::uint32_t>(*value));
  if (!nh) {
    v.drop(cfg_.mutation == Mutation::kWrongNoRouteReason ? RefDrop::kMalformed
                                                          : RefDrop::kNoRoute);
    return true;
  }
  v.egress.assign(1, *nh);
  return true;
}

bool RefNode::op_match128(const RefFn& fn, RefHeader& h, RefVerdict& v) {
  if (fn.len != 128) return false;
  std::array<std::uint8_t, 16> addr{};
  if (const auto aligned = field_bytes(fn, h); !aligned.empty()) {
    std::copy(aligned.begin(), aligned.end(), addr.begin());
  } else if (!bytes::extract_bits(h.locations, {fn.loc, fn.len}, addr)) {
    return false;
  }
  const auto nh = lookup128(addr);
  if (!nh) {
    v.drop(RefDrop::kNoRoute);
    return true;
  }
  v.egress.assign(1, *nh);
  return true;
}

bool RefNode::op_fib(const RefFn& fn, RefHeader& h, std::uint32_t ingress, SimTime now,
                     RefVerdict& v) {
  if (fn.len != 32) return false;
  const auto code = field_uint(fn, h);
  if (!code) return false;
  const auto name_code = static_cast<std::uint32_t>(*code);

  // Footnote 2: match the local content store before the FIB. A cache hit
  // answers the interest outright — no PIT state is created.
  if (cs_contains(name_code)) {
    v.respond_from_cache = true;
    v.egress.assign(1, ingress);
    return true;
  }

  // Record the receiving face in the PIT (§3).
  auto it = pit_.find(name_code);
  if (it != pit_.end() && it->second.expiry <= now) {
    pit_.erase(it);  // stale entry: treat as absent
    it = pit_.end();
  }
  if (it == pit_.end()) {
    if (pit_.size() >= cfg_.pit_max_entries) {
      pit_expire(now);
      if (pit_.size() >= cfg_.pit_max_entries) {
        v.drop(RefDrop::kBudgetExhausted);  // PIT full (§2.4 state limit)
        return true;
      }
    }
    pit_[name_code] = PitEntry{{ingress}, now + cfg_.pit_lifetime};
  } else if (std::find(it->second.faces.begin(), it->second.faces.end(), ingress) !=
             it->second.faces.end()) {
    v.drop(RefDrop::kDuplicate);  // same interest, same face: likely a loop
    return true;
  } else {
    it->second.faces.push_back(ingress);
    it->second.expiry = now + cfg_.pit_lifetime;
    v.drop(RefDrop::kAggregated);  // suppressed; face recorded for fan-out
    return true;
  }

  const auto nh = lookup32(name_code);
  if (!nh) {
    v.drop(RefDrop::kNoRoute);
    return true;
  }
  v.egress.assign(1, *nh);
  return true;
}

bool RefNode::op_pit(const RefFn& fn, RefHeader& h, SimTime now, RefVerdict& v) {
  if (fn.len != 32) return false;
  const auto code = field_uint(fn, h);
  if (!code) return false;
  const auto name_code = static_cast<std::uint32_t>(*code);

  auto it = pit_.find(name_code);
  if (it == pit_.end() || it->second.expiry <= now) {
    if (it != pit_.end()) pit_.erase(it);
    v.drop(RefDrop::kPitMiss);  // unsolicited data
    return true;
  }
  std::vector<std::uint32_t> faces = std::move(it->second.faces);
  pit_.erase(it);
  cs_insert(name_code, h.payload);
  v.egress = std::move(faces);
  return true;
}

bool RefNode::op_parm(const RefFn& fn, RefHeader& h, Scratch& scratch) {
  if (fn.len != 128) return false;
  const auto sid_bytes = field_bytes(fn, h);
  if (sid_bytes.empty()) return false;
  // §3: "the router will derive a dynamic key from session ID in the packet
  // header with its local key" — AES as the DRKey PRF.
  scratch.dynamic_key =
      crypto::Aes128(cfg_.node_secret).encrypt_copy(crypto::block_from(sid_bytes));
  return true;
}

bool RefNode::op_mac(const RefFn& fn, RefHeader& h, Scratch& scratch) {
  if (!scratch.dynamic_key) return false;  // F_MAC without a preceding F_parm
  const auto covered = field_bytes(fn, h);
  if (covered.empty()) return false;
  scratch.mac = crypto::make_mac(cfg_.mac_kind, *scratch.dynamic_key)->compute(covered);
  return true;
}

bool RefNode::op_mark(const RefFn& fn, RefHeader& h, Scratch& scratch) {
  if (!scratch.mac) return false;  // F_mark without a preceding F_MAC
  if (fn.len != 128) return false;
  const auto pvf = field_bytes(fn, h);
  if (pvf.empty()) return false;

  // PVF_i = m_i (the chain holds because F_MAC covered PVF_{i-1}).
  crypto::block_to(*scratch.mac, pvf);

  // OPV accumulates every hop's tag; it sits 16 bytes after the PVF in the
  // same OPT block, addressed relative to the PVF's own offset.
  const std::size_t opv_byte = fn.loc / 8 + kOptPvfToOpv;
  if (opv_byte + 16 > h.locations.size()) return false;
  auto opv = h.locations.subspan(opv_byte, 16);
  for (std::size_t i = 0; i < 16; ++i) opv[i] ^= (*scratch.mac)[i];
  return true;
}

bool RefNode::op_dag(const RefFn& fn, RefHeader& h, RefVerdict& v) {
  const auto target = field_bytes(fn, h);
  if (target.empty()) return false;
  const auto parsed = parse_ref_dag(target);
  if (!parsed) {
    v.drop(RefDrop::kMalformed);
    return true;
  }
  const RefDag& dag = *parsed;
  std::uint8_t cursor = dag.cursor;

  // Traversal: locally owned nodes are entered (cursor advances, written
  // back to the wire); otherwise forward toward the first routable edge in
  // priority order. Acyclicity bounds the walk.
  for (std::size_t hops = 0; hops <= dag.nodes.size(); ++hops) {
    if (cursor != kDagSourceCursor) {
      const RefDagNode& at = dag.nodes[cursor];
      if (cursor == dag.intent && xid_local_.contains({at.type, at.xid})) {
        return true;  // at the local intent: F_intent decides
      }
    }
    bool advanced = false;
    for (const std::uint8_t next_index : dag.edges_of(cursor)) {
      const RefDagNode& candidate = dag.nodes[next_index];
      if (xid_local_.contains({candidate.type, candidate.xid})) {
        cursor = next_index;
        target[1] = next_index;  // write back last_visited
        advanced = true;
        break;
      }
      if (const auto route = xid_routes_.find({candidate.type, candidate.xid});
          route != xid_routes_.end()) {
        v.egress.assign(1, route->second);
        return true;
      }
    }
    if (!advanced) break;
  }
  v.drop(RefDrop::kNoRoute);  // no edge routable: XIA drops
  return true;
}

bool RefNode::op_intent(const RefFn& fn, RefHeader& h, std::uint32_t ingress,
                        RefVerdict& v) {
  const auto target = field_bytes(fn, h);
  if (target.empty()) return false;
  const auto parsed = parse_ref_dag(target);
  if (!parsed) {
    v.drop(RefDrop::kMalformed);
    return true;
  }
  const RefDag& dag = *parsed;
  if (dag.cursor != dag.intent) return true;  // not at the intent yet

  const RefDagNode& intent = dag.nodes[dag.intent];
  if (!xid_local_.contains({intent.type, intent.xid})) {
    return true;  // somebody else's intent; F_DAG already set the egress
  }

  if (intent.type == kXidCid) {
    // Content intent: serve from the content store when possible.
    if (cs_contains(ref_xid_code(intent.xid))) {
      v.respond_from_cache = true;
      v.egress.assign(1, ingress);
      return true;
    }
    v.drop(RefDrop::kNoRoute);  // content not present
    return true;
  }
  // Service/host/AD intent: deliver to the registered face, else treat the
  // node itself as the sink.
  if (const auto route = xid_routes_.find({intent.type, intent.xid});
      route != xid_routes_.end()) {
    v.egress.assign(1, route->second);
  } else {
    v.egress.assign(1, ingress);
  }
  return true;
}

bool RefNode::op_pass(const RefFn& fn, RefHeader& h, RefVerdict& v) {
  if (!cfg_.enforce_pass) return true;  // policy off: free pass (§2.4)
  if (fn.len != 128) return false;
  const auto label = field_bytes(fn, h);
  if (label.empty()) return false;
  const crypto::Block expected =
      crypto::make_mac(cfg_.mac_kind, cfg_.pass_key)->compute(h.payload);
  if (!crypto::block_equal_ct(expected, crypto::block_from(label))) {
    v.drop(RefDrop::kPolicyDenied);
  }
  return true;
}

bool RefNode::op_telemetry(const RefFn& fn, RefHeader& h, std::uint32_t ingress,
                           SimTime now) {
  const auto field = field_bytes(fn, h);
  if (field.size() < 2) return false;
  const std::uint8_t count = field[0];
  const std::size_t offset = 2 + count * std::size_t{8};
  if (offset + 8 > field.size()) {
    field[1] |= 0x80;  // overflow: record dropped, packet unharmed
    return true;
  }
  const auto node = static_cast<std::uint16_t>(cfg_.node_id);
  const auto face = static_cast<std::uint16_t>(ingress);
  const auto ts = static_cast<std::uint32_t>(now);
  field[offset + 0] = static_cast<std::uint8_t>(node >> 8);
  field[offset + 1] = static_cast<std::uint8_t>(node);
  field[offset + 2] = static_cast<std::uint8_t>(face >> 8);
  field[offset + 3] = static_cast<std::uint8_t>(face);
  for (int i = 0; i < 4; ++i) {
    field[offset + 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(ts >> (8 * (3 - i)));
  }
  field[0] = static_cast<std::uint8_t>(count + 1);
  return true;
}

bool RefNode::op_hvf(const RefFn& fn, RefHeader& h, RefVerdict& v) {
  const auto block = field_bytes(fn, h);
  if (block.size() < kEpicFixedBytes) return false;
  const std::uint8_t hop_index = block[kEpicHopIndexOffset];
  const std::uint8_t hop_count = block[kEpicHopCountOffset];
  if (hop_count > kEpicMaxHops ||
      block.size() < kEpicFixedBytes + hop_count * kEpicHvfBytes) {
    return false;
  }
  if (hop_index >= hop_count) {
    // More routers on the path than hop fields: the source lied — drop.
    v.drop(RefDrop::kAuthFailed);
    return true;
  }

  const crypto::Block sid = crypto::block_from(block.subspan(kEpicSessionOffset, 16));
  const crypto::Block key = crypto::Aes128(cfg_.node_secret).encrypt_copy(sid);

  auto hvf = block.subspan(kEpicFixedBytes + hop_index * kEpicHvfBytes, kEpicHvfBytes);
  const auto expected =
      epic_hop_tag(key, block, hop_index, kEpicTagValidate, cfg_.mac_kind);
  if (!std::equal(hvf.begin(), hvf.end(), expected.begin())) {
    v.drop(RefDrop::kAuthFailed);  // forged traffic dies here
    return true;
  }
  const auto proof = epic_hop_tag(key, block, hop_index, kEpicTagProof, cfg_.mac_kind);
  std::copy(proof.begin(), proof.end(), hvf.begin());
  block[kEpicHopIndexOffset] = static_cast<std::uint8_t>(hop_index + 1);
  return true;
}

bool RefNode::op_dps(const RefFn& fn, RefHeader& h, SimTime now, RefVerdict& v) {
  const auto field = field_bytes(fn, h);
  if (field.size() < 8) return false;
  std::uint32_t label = 0;
  for (int i = 0; i < 4; ++i) label = (label << 8) | field[static_cast<std::size_t>(i)];
  const std::size_t size = h.locations.size() + h.payload.size();

  // CSFQ fair-share estimator (§5): windowed alpha update on arrival. The
  // arithmetic mirrors the production estimator operation for operation so
  // the doubles come out bit-identical.
  dps_max_label_ = std::max(dps_max_label_, label);
  if (now - dps_window_start_ >= cfg_.dps_window) {
    const std::uint64_t window_ns = std::max<std::uint64_t>(cfg_.dps_window, 1);
    const auto to_rate = [&](std::uint64_t b) {
      return static_cast<double>(b) * static_cast<double>(kSecond) /
             static_cast<double>(window_ns);
    };
    const double arrival = to_rate(dps_window_bytes_);
    const double accepted = to_rate(dps_accepted_bytes_);
    const auto capacity = static_cast<double>(cfg_.dps_capacity_bytes_per_sec);
    if (arrival > capacity) {
      const double ratio = std::clamp(capacity / std::max(accepted, 1.0), 0.1, 10.0);
      dps_alpha_ = std::clamp(dps_alpha_ * ratio, 1.0, 4e9);
    } else {
      dps_alpha_ = std::max(dps_alpha_, static_cast<double>(dps_max_label_));
    }
    dps_window_start_ = now;
    dps_window_bytes_ = 0;
    dps_accepted_bytes_ = 0;
    dps_max_label_ = 0;
  }
  dps_window_bytes_ += size;

  if (label > 0) {
    const double p = 1.0 - dps_alpha_ / static_cast<double>(label);
    if (p > 0 && dps_rng_.uniform() < p) {
      v.drop(RefDrop::kRateExceeded);
      return true;
    }
  }
  dps_accepted_bytes_ += size;
  return true;
}

bool RefNode::op_custody(const RefFn& fn, RefHeader& h, RefVerdict& v) {
  // DESIGN.md / docs/DTN.md custody tag (32 bytes):
  //   [0]      flags (bit0 request, bit1 ack)
  //   [1]      chain length
  //   [2,4)    previous custodian (low 16 bits, stamped on accept)
  //   [4,8)    bundle id          (BE32)
  //   [8,12)   current custodian  (BE32)
  //   [12,16)  chain digest       (BE32, FNV-style mix per accept)
  //   [16,32)  MAC over [0,16) under the shared custody key
  const auto field = field_bytes(fn, h);
  if (field.size() < 32) return false;
  // A custody-capable but non-accepting node carries the tag untouched
  // (the overlay half of the §2.4 heterogeneous-deployment rule).
  if (!cfg_.custody_accept) return true;

  const crypto::Block expected =
      crypto::make_mac(cfg_.mac_kind, cfg_.custody_key)->compute(field.subspan(0, 16));
  if (!crypto::block_equal_ct(expected, crypto::block_from(field.subspan(16, 16)))) {
    v.drop(RefDrop::kAuthFailed);  // forged/corrupted custody chain
    return true;
  }
  const std::uint8_t flags = field[0];
  const bool requested = (flags & 0x01u) != 0;
  const bool is_ack = (flags & 0x02u) != 0;
  if (is_ack || !requested) return true;  // nothing to accept

  // Accept: remember the previous holder in [2,4), stamp ourselves as
  // custodian, extend the chain, mix the digest, re-MAC.
  field[2] = field[10];  // previous custodian, low 16 bits
  field[3] = field[11];
  for (int i = 0; i < 4; ++i) {
    field[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(cfg_.node_id >> (8 * (3 - i)));
  }
  field[1] = static_cast<std::uint8_t>(field[1] + 1);
  std::uint32_t digest = 0;
  for (int i = 0; i < 4; ++i) digest = (digest << 8) | field[12 + std::size_t(i)];
  digest = (digest ^ cfg_.node_id) * 0x01000193u;
  for (int i = 0; i < 4; ++i) {
    field[12 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(digest >> (8 * (3 - i)));
  }
  const crypto::Block mac =
      crypto::make_mac(cfg_.mac_kind, cfg_.custody_key)->compute(field.subspan(0, 16));
  crypto::block_to(mac, field.subspan(16, 16));
  return true;
}

bool RefNode::op_bundlefrag(const RefFn& fn, RefHeader& h) {
  // Fragment metadata ([0,2) index, [2,4) total, [4,8) bundle id, all BE) is
  // carried for the receiving host; routers only bounds-check the geometry.
  const auto field = field_bytes(fn, h);
  if (field.size() < 8) return false;
  const std::uint16_t index = static_cast<std::uint16_t>((field[0] << 8) | field[1]);
  const std::uint16_t total = static_cast<std::uint16_t>((field[2] << 8) | field[3]);
  return total != 0 && index < total;
}

}  // namespace dip::refmodel
