// Executable-spec reference model of the DIP router (Algorithm 1).
//
// This is the *oracle* for the conformance harness: a deliberately simple,
// allocation-happy reimplementation of the fixed router loop and every op
// module, written straight from PAPER.md / DESIGN.md. It shares NO code with
// src/core/ — only the dip::bytes substrate (bit addressing, time) and the
// dip::crypto primitives (AES, CMAC, Xoshiro) which both sides treat as
// axioms. Everything the production router does observably — verdicts, drop
// reasons, egress sets, in-place header rewrites — this model must reproduce
// byte for byte; everything it does for speed (flow cache, batch phases,
// dense module tables, Patricia tries) this model deliberately omits and
// replaces with the dumbest data structure that is obviously correct
// (linear-scan FIBs, std::map PIT, std::list LRU).
//
// P4's methodology (Bosshart et al.) separates the protocol-independent
// spec from the target; tests/conformance_test.cpp validates the target
// against this spec over generated packet streams.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "dip/bytes/time.hpp"
#include "dip/crypto/aes.hpp"
#include "dip/crypto/mac.hpp"
#include "dip/crypto/random.hpp"

namespace dip::refmodel {

// ---------------------------------------------------------------------------
// Verdict vocabulary — redeclared here (not shared with core) so a core enum
// renumbering cannot silently re-align a divergence. The harness maps both
// sides into a common image by *name*.
// ---------------------------------------------------------------------------

enum class RefAction : std::uint8_t { kForward, kDrop, kError };

enum class RefDrop : std::uint8_t {
  kNone,
  kNoRoute,
  kPitMiss,
  kHopLimitExceeded,
  kAuthFailed,
  kBudgetExhausted,
  kUnsupportedFn,
  kMalformed,
  kDuplicate,
  kPolicyDenied,
  kAggregated,
  kRateExceeded,
  kOverloadShed,
  kCorruptQuarantine,
};

/// Everything observable about one packet's fate (the wire bytes themselves
/// are the other half — RefNode::process mutates the packet in place exactly
/// like the production router).
struct RefVerdict {
  RefAction action = RefAction::kForward;
  RefDrop reason = RefDrop::kNone;
  std::vector<std::uint32_t> egress;
  std::uint16_t offending_key = 0;  ///< op key for kUnsupportedFn errors
  bool respond_from_cache = false;

  // Spec: a drop clears the egress set but leaves the rest of the verdict
  // (notably respond_from_cache) untouched — mirrored from the production
  // ProcessResult contract.
  void drop(RefDrop r) {
    action = RefAction::kDrop;
    reason = r;
    egress.clear();
  }
};

/// Deliberate spec mutations for the self-test: the conformance harness
/// seeds one, proves the property test catches it, and shrinks the failing
/// packet to a minimal reproducer (ISSUE 4 acceptance criterion).
enum class Mutation : std::uint8_t {
  kNone,
  /// F_32_match FIB miss reports kMalformed instead of kNoRoute.
  kWrongNoRouteReason,
  /// Hop-limit check off by one (drops at hop_limit == 2).
  kHopOffByOne,
};

/// Spec-level node configuration. Field defaults restate the §2.4 resource
/// limits and the production RouterEnv defaults.
struct RefConfig {
  std::uint32_t node_id = 0;
  crypto::Block node_secret{};
  crypto::MacKind mac_kind = crypto::MacKind::kEm2;
  crypto::Block pass_key{};
  bool enforce_pass = false;
  bool lenient = false;  ///< ValidationMode::kLenient (quarantine byte damage)
  std::optional<std::uint32_t> default_egress;
  std::uint32_t per_packet_budget = 64;
  std::uint32_t max_fn_per_packet = 16;
  // NDN state (spec: PIT entries expire; hard per-node state limit).
  SimDuration pit_lifetime = 4 * kSecond;
  std::size_t pit_max_entries = std::size_t{1} << 20;
  std::size_t content_store_capacity = 0;  ///< 0 = caching disabled
  // F_dps (optional module; off in the default registry).
  bool dps_enabled = false;
  std::uint64_t dps_seed = 1;
  std::uint64_t dps_capacity_bytes_per_sec = 1'000'000;
  SimDuration dps_window = 20 * kMillisecond;
  // F_custody / F_frag (optional DTN modules; off in the default registry).
  bool custody_enabled = false;
  bool custody_accept = false;  ///< this node takes custody (env.accept_custody)
  crypto::Block custody_key{};
  Mutation mutation = Mutation::kNone;
};

// ---------------------------------------------------------------------------
// Coverage ledger — which spec paths a stream actually exercised.
// ---------------------------------------------------------------------------

struct RefLedger {
  std::set<std::uint16_t> op_keys_executed;  ///< router-side FNs that ran
  std::set<std::uint16_t> op_keys_seen;      ///< incl. skipped/unsupported
  std::set<std::uint8_t> actions;
  std::set<std::uint8_t> reasons;

  void note(const RefVerdict& v) {
    actions.insert(static_cast<std::uint8_t>(v.action));
    reasons.insert(static_cast<std::uint8_t>(v.reason));
  }
};

// ---------------------------------------------------------------------------
// The reference node.
// ---------------------------------------------------------------------------

class RefNode {
 public:
  explicit RefNode(RefConfig config) : cfg_(std::move(config)), dps_rng_(cfg_.dps_seed) {
    dps_alpha_ = static_cast<double>(cfg_.dps_capacity_bytes_per_sec);
  }

  // -- table setup (mirrors the production env the harness builds) ----------
  void add_route32(std::uint32_t addr, std::uint8_t prefix_len, std::uint32_t nh);
  void add_route128(const std::array<std::uint8_t, 16>& addr, std::uint8_t prefix_len,
                    std::uint32_t nh);
  /// Route withdrawal (exact prefix); no-op if absent. Mirrors the churn
  /// the conformance harness drives through ctrl::RouteJournal.
  void remove_route32(std::uint32_t addr, std::uint8_t prefix_len);
  void remove_route128(const std::array<std::uint8_t, 16>& addr, std::uint8_t prefix_len);
  void add_xid_route(std::uint8_t type, const std::array<std::uint8_t, 20>& xid,
                     std::uint32_t nh);
  void set_xid_local(std::uint8_t type, const std::array<std::uint8_t, 20>& xid);
  void store_content(std::uint64_t name_code, std::span<const std::uint8_t> payload);

  /// Algorithm 1, spec edition: validate, decrement hop limit, run each FN
  /// front to back (back to front under verified modular parallelism), then
  /// fall back to the default egress. Mutates `packet` in place (hop limit,
  /// checksum, telemetry, PVF/OPV, HVF, DAG cursor) exactly as a conforming
  /// router must.
  RefVerdict process(std::span<std::uint8_t> packet, std::uint32_t ingress,
                     SimTime now);

  [[nodiscard]] const RefLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] std::uint64_t quarantined() const noexcept { return quarantined_; }
  [[nodiscard]] const RefConfig& config() const noexcept { return cfg_; }

 private:
  struct RefFn {
    std::uint16_t loc = 0;
    std::uint16_t len = 0;
    std::uint16_t op = 0;
    [[nodiscard]] bool host_tagged() const { return (op & 0x8000u) != 0; }
    [[nodiscard]] std::uint16_t key() const { return op & 0x7fffu; }
  };
  struct RefHeader {
    std::uint8_t next_header = 0;
    std::uint8_t fn_num = 0;
    std::uint8_t hop_limit = 0;
    bool parallel = false;
    std::uint16_t loc_len = 0;
    std::vector<RefFn> fns;
    std::span<std::uint8_t> raw;        // whole packet
    std::span<std::uint8_t> locations;  // FN-locations block
    std::span<std::uint8_t> payload;    // bytes after the header
  };
  struct Scratch {
    std::optional<crypto::Block> dynamic_key;
    std::optional<crypto::Block> mac;
  };

  // Wire (§2.2 / DESIGN.md §3): 6-byte basic header, 6-byte FN triples,
  // FN-locations block, payload. Returns nullopt on any byte damage.
  static std::optional<RefHeader> bind(std::span<std::uint8_t> packet);

  void dispatch(RefHeader& h, std::uint32_t ingress, SimTime now, RefVerdict& v);
  [[nodiscard]] bool relax_eligible(const RefHeader& h) const;
  /// Runs one FN; returns false when processing must stop.
  bool run_fn(const RefFn& fn, RefHeader& h, std::uint32_t ingress, SimTime now,
              std::uint32_t& budget, Scratch& scratch, RefVerdict& v);

  // Op modules, one method each, written from the spec. Each returns false
  // for a *status error* (malformed composition -> kMalformed drop); verdict
  // changes (drops with a protocol reason, egress sets) go through `v`.
  bool op_match32(const RefFn& fn, RefHeader& h, RefVerdict& v);
  bool op_match128(const RefFn& fn, RefHeader& h, RefVerdict& v);
  bool op_fib(const RefFn& fn, RefHeader& h, std::uint32_t ingress, SimTime now,
              RefVerdict& v);
  bool op_pit(const RefFn& fn, RefHeader& h, SimTime now, RefVerdict& v);
  bool op_parm(const RefFn& fn, RefHeader& h, Scratch& scratch);
  bool op_mac(const RefFn& fn, RefHeader& h, Scratch& scratch);
  bool op_mark(const RefFn& fn, RefHeader& h, Scratch& scratch);
  bool op_dag(const RefFn& fn, RefHeader& h, RefVerdict& v);
  bool op_intent(const RefFn& fn, RefHeader& h, std::uint32_t ingress, RefVerdict& v);
  bool op_pass(const RefFn& fn, RefHeader& h, RefVerdict& v);
  bool op_telemetry(const RefFn& fn, RefHeader& h, std::uint32_t ingress,
                    SimTime now);
  bool op_hvf(const RefFn& fn, RefHeader& h, RefVerdict& v);
  bool op_dps(const RefFn& fn, RefHeader& h, SimTime now, RefVerdict& v);
  bool op_custody(const RefFn& fn, RefHeader& h, RefVerdict& v);
  bool op_bundlefrag(const RefFn& fn, RefHeader& h);

  // Field slicing helpers (spec: FN fields are bit ranges into the
  // locations block; byte-aligned ranges slice in place).
  static std::span<std::uint8_t> field_bytes(const RefFn& fn, RefHeader& h);
  static std::optional<std::uint64_t> field_uint(const RefFn& fn, const RefHeader& h);

  // -- simple-as-possible state ---------------------------------------------
  struct Route32 {
    std::uint32_t addr;
    std::uint8_t len;
    std::uint32_t nh;
  };
  struct Route128 {
    std::array<std::uint8_t, 16> addr;
    std::uint8_t len;
    std::uint32_t nh;
  };
  struct PitEntry {
    std::vector<std::uint32_t> faces;
    SimTime expiry = 0;
  };

  std::optional<std::uint32_t> lookup32(std::uint32_t addr) const;
  std::optional<std::uint32_t> lookup128(const std::array<std::uint8_t, 16>& addr) const;
  void pit_expire(SimTime now);
  bool cs_contains(std::uint64_t code) const;
  void cs_insert(std::uint64_t code, std::span<const std::uint8_t> payload);

  RefConfig cfg_;
  std::vector<Route32> fib32_;
  std::vector<Route128> fib128_;
  std::map<std::pair<std::uint8_t, std::array<std::uint8_t, 20>>, std::uint32_t> xid_routes_;
  std::set<std::pair<std::uint8_t, std::array<std::uint8_t, 20>>> xid_local_;
  std::map<std::uint64_t, PitEntry> pit_;
  std::list<std::pair<std::uint64_t, std::vector<std::uint8_t>>> cs_lru_;  // front = MRU
  // F_dps fair-share estimator state (CSFQ, §5).
  crypto::Xoshiro256 dps_rng_;
  double dps_alpha_ = 0;
  SimTime dps_window_start_ = 0;
  std::uint64_t dps_window_bytes_ = 0;
  std::uint64_t dps_accepted_bytes_ = 0;
  std::uint32_t dps_max_label_ = 0;

  RefLedger ledger_;
  std::uint64_t quarantined_ = 0;
};

}  // namespace dip::refmodel
