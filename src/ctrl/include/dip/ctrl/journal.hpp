// RouteJournal — the single writer behind one node's ControlTables.
//
// The control plane enqueues route operations as they are decided; the
// journal *coalesces* them per key (ten flaps of the same prefix between
// two publishes collapse to the final state) and, on flush(), builds each
// dirty table's replacement copy-on-write: clone the live snapshot, apply
// the pending deltas, publish, and reclaim whatever grace periods have
// elapsed. Publishing at a configurable cadence instead of per-operation is
// what keeps snapshot/reclamation cost proportional to the *publish* rate,
// not the churn rate — the CRAM/BGP-churn regime the bench sweeps.
//
// Thread contract: all methods are single-writer (one control thread);
// data-plane readers never touch the journal.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "dip/ctrl/tables.hpp"
#include "dip/fib/address.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/fib/name_fib.hpp"
#include "dip/fib/xid_table.hpp"

namespace dip::ctrl {

struct JournalConfig {
  /// Engines used when a table is built from scratch (no snapshot published
  /// yet and no seed); clones inherit the seed's engine regardless.
  fib::LpmEngine engine32 = fib::LpmEngine::kPatricia;
  fib::LpmEngine engine128 = fib::LpmEngine::kPatricia;
};

struct JournalStats {
  std::uint64_t ops_enqueued = 0;    ///< every add_/remove_/set_ call
  std::uint64_t ops_coalesced = 0;   ///< ops absorbed by a pending same-key op
  std::uint64_t updates_applied = 0; ///< coalesced deltas applied at flush
  std::uint64_t snapshots_published = 0;  ///< per-table publishes
  std::uint64_t flushes = 0;         ///< flush() calls that published
  // Publish latency: wall time of the clone + apply + publish section of a
  // flush() that published at least one table. This is the churn-side cost
  // the tree-bitmap engine's cheap clone() exists to bound (dip_fib_publish_
  // latency series; swept by bench_fib_scale's churn leg).
  std::uint64_t last_flush_ns = 0;   ///< most recent publishing flush
  std::uint64_t max_flush_ns = 0;    ///< worst publishing flush
  std::uint64_t total_flush_ns = 0;  ///< sum over publishing flushes
};

class RouteJournal {
 public:
  explicit RouteJournal(std::shared_ptr<ControlTables> tables,
                        JournalConfig config = {});

  /// Publish initial snapshots cloned from existing (static) tables; null
  /// arguments are skipped. Call once before traffic if the node starts
  /// with pre-installed routes.
  void seed(const fib::Ipv4Lpm* fib32, const fib::Ipv6Lpm* fib128 = nullptr,
            const fib::XidTable* xid = nullptr,
            const fib::NameFib* names = nullptr);

  // -- pending operations (last write per key wins) ----------------------
  void add_route32(fib::Prefix<32> prefix, fib::NextHop nh);
  void remove_route32(fib::Prefix<32> prefix);
  void add_route128(fib::Prefix<128> prefix, fib::NextHop nh);
  void remove_route128(fib::Prefix<128> prefix);
  void add_xid_route(fib::XidType type, const fib::Xid& xid, fib::NextHop nh);
  void remove_xid_route(fib::XidType type, const fib::Xid& xid);
  void set_xid_local(fib::XidType type, const fib::Xid& xid);
  void add_name_route(const fib::Name& name, fib::NextHop nh);
  void remove_name_route(const fib::Name& name);

  /// Any pending operations not yet published?
  [[nodiscard]] bool dirty() const noexcept;
  /// Number of coalesced pending operations.
  [[nodiscard]] std::size_t pending() const noexcept;

  /// Copy-on-write build + publish for every dirty table, then reclaim
  /// elapsed grace periods. Returns the number of tables published.
  std::size_t flush();

  [[nodiscard]] const JournalStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ControlTables& tables() noexcept { return *tables_; }
  [[nodiscard]] std::shared_ptr<ControlTables> tables_ptr() const noexcept {
    return tables_;
  }

 private:
  template <typename K, typename V>
  void put(std::map<K, V>& map, K key, V value);

  std::shared_ptr<ControlTables> tables_;
  JournalConfig config_;
  JournalStats stats_;

  // Pending delta maps: nullopt value = remove. Ordered keys make the apply
  // order deterministic (Prefix has operator<=>; Xid keys order by bytes).
  using XidKey = std::pair<std::uint8_t, std::array<std::uint8_t, 20>>;
  std::map<fib::Prefix<32>, std::optional<fib::NextHop>> pending32_;
  std::map<fib::Prefix<128>, std::optional<fib::NextHop>> pending128_;
  std::map<XidKey, std::optional<fib::NextHop>> pending_xid_;
  std::map<XidKey, bool> pending_xid_local_;
  std::map<std::string, std::optional<fib::NextHop>> pending_names_;
};

}  // namespace dip::ctrl
