// RCU-style snapshot tables with quiescent-state grace-period reclamation.
//
// The data plane reads route tables on every packet; the control plane
// replaces them at churn rates that are orders of magnitude lower. The
// classic answer is read-copy-update: readers dereference a raw snapshot
// pointer with no locks and no reference-count traffic, writers publish a
// fully built replacement table with one atomic store, and the old table is
// freed only after a *grace period* — once every reader has passed through a
// quiescent state (a burst boundary) at least once since the publish.
//
// Reader protocol (QSBR — quiescent-state-based reclamation):
//   - Each reader (RouterPool worker, or the calling thread for a scalar
//     Router) owns a ReaderSlot registered with the QsbrDomain.
//   - Between quiescent announcements the reader may hold raw pointers
//     obtained from SnapshotTable<T>::read(); it must drop them all before
//     announcing.
//   - At each burst boundary it calls QsbrDomain::quiesce(slot), which
//     copies the domain's current version into the slot.
//   - A reader that parks (blocks on a condvar with no packets in flight)
//     calls park(slot) first — setting the kIdle sentinel — so an idle
//     worker can never stall reclamation. On wakeup, resume(slot) re-joins
//     the protocol *before* any table read.
//
// Writer protocol:
//   - Build the replacement off to the side (clone + apply deltas).
//   - SnapshotTable<T>::publish() stores the new raw pointer (seq_cst) and
//     retires the old owning shared_ptr into the domain tagged with the
//     post-bump version.
//   - QsbrDomain::try_reclaim() frees every retired table whose tag is <=
//     the minimum version announced by all non-idle readers.
//
// Memory-order note: the publish store, the reader's snapshot load, the
// reader's quiesce/resume stores, and the reclaimer's slot loads are all
// seq_cst on purpose. The park/resume race (worker resumes and loads the
// *old* snapshot while the writer concurrently publishes and reclaims)
// is excluded by the seq_cst total order: if the resumed reader's load
// returned the old table, its `seen` store is ordered before the
// reclaimer's read of it, so the reclaimer observes seen < tag and keeps
// the table alive. We deliberately use seq_cst atomics rather than
// standalone fences; the cost is irrelevant at burst granularity and
// ThreadSanitizer reasons about atomics far better than about fences.
//
// Single-writer rule: publish/retire/try_reclaim must come from one control
// thread at a time (RouteJournal enforces this); readers are unlimited.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

namespace dip::ctrl {

/// One reader's announcement word. Heap-allocated and shared so a slot can
/// outlive either side (worker teardown vs domain teardown) safely.
struct ReaderSlot {
  /// Version sentinel meaning "parked / not reading": never blocks a grace
  /// period. Also the initial state — a reader that has never run a burst
  /// holds no pointers.
  static constexpr std::uint64_t kIdle =
      std::numeric_limits<std::uint64_t>::max();

  std::atomic<std::uint64_t> seen{kIdle};
};

using ReaderHandle = std::shared_ptr<ReaderSlot>;

/// Grace-period tracker shared by every SnapshotTable of one control domain
/// (one per node: its fib32/fib128/xid/name tables retire into the same
/// domain, so one quiesce per burst covers all four).
class QsbrDomain {
 public:
  /// Current global version. Starts at 1 so kIdle (max) and "never
  /// announced" are distinguishable from any real version.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_seq_cst);
  }

  /// Register a reader. Thread-safe; typically called at pool start.
  [[nodiscard]] ReaderHandle register_reader() {
    auto slot = std::make_shared<ReaderSlot>();
    std::lock_guard lock(mu_);
    // Prune slots whose readers tore down, so reader churn against a
    // long-lived domain (repeated pool restarts) doesn't grow the vector
    // monotonically. Registration is the natural churn point.
    std::erase_if(slots_,
                  [](const std::weak_ptr<ReaderSlot>& w) { return w.expired(); });
    slots_.push_back(slot);
    return slot;
  }

  /// Reader-side: announce a quiescent state (no snapshot pointers held).
  void quiesce(const ReaderHandle& slot) const noexcept {
    slot->seen.store(version_.load(std::memory_order_seq_cst),
                     std::memory_order_seq_cst);
  }

  /// Reader-side: about to block with no packets in flight.
  static void park(const ReaderHandle& slot) noexcept {
    slot->seen.store(ReaderSlot::kIdle, std::memory_order_seq_cst);
  }

  /// Reader-side: waking up; must run before the first table read.
  void resume(const ReaderHandle& slot) const noexcept {
    slot->seen.exchange(version_.load(std::memory_order_seq_cst),
                        std::memory_order_seq_cst);
  }

  /// Writer-side: take ownership of a replaced object until its grace
  /// period elapses. Bumps the version; the retiree is freed once every
  /// non-idle reader has announced the post-bump version (or later).
  void retire(std::shared_ptr<const void> obj) {
    const std::uint64_t tag =
        version_.fetch_add(1, std::memory_order_seq_cst) + 1;
    std::lock_guard lock(mu_);
    retired_.push_back(Retired{std::move(obj), tag});
  }

  /// Writer-side: free every retiree whose grace period has elapsed.
  /// Returns how many objects were freed.
  std::size_t try_reclaim() {
    std::vector<std::shared_ptr<const void>> free_list;  // destroy unlocked
    std::size_t freed = 0;
    {
      std::lock_guard lock(mu_);
      const std::uint64_t horizon = min_seen_locked();
      auto it = retired_.begin();
      while (it != retired_.end()) {
        if (it->tag <= horizon) {
          free_list.push_back(std::move(it->obj));
          it = retired_.erase(it);
          ++freed;
        } else {
          ++it;
        }
      }
      reclaimed_total_ += freed;
    }
    return freed;
  }

  /// Retired-but-not-yet-freed object count (telemetry: reclamation backlog).
  [[nodiscard]] std::size_t backlog() const {
    std::lock_guard lock(mu_);
    return retired_.size();
  }

  /// Lifetime total of objects freed by try_reclaim (telemetry).
  [[nodiscard]] std::uint64_t reclaimed_total() const {
    std::lock_guard lock(mu_);
    return reclaimed_total_;
  }

 private:
  struct Retired {
    std::shared_ptr<const void> obj;
    std::uint64_t tag;  ///< version after the retiring bump
  };

  /// Minimum version announced across live, non-idle readers; the current
  /// version if every reader is idle or dead (then everything is safe).
  [[nodiscard]] std::uint64_t min_seen_locked() const {
    std::uint64_t min = version_.load(std::memory_order_seq_cst);
    for (const auto& weak : slots_) {
      auto slot = weak.lock();
      if (!slot) continue;  // reader torn down: holds nothing
      const std::uint64_t seen = slot->seen.load(std::memory_order_seq_cst);
      if (seen == ReaderSlot::kIdle) continue;  // parked: holds nothing
      if (seen < min) min = seen;
    }
    return min;
  }

  std::atomic<std::uint64_t> version_{1};
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<ReaderSlot>> slots_;
  std::vector<Retired> retired_;
  std::uint64_t reclaimed_total_ = 0;
};

/// One RCU-published table. Readers get a raw const pointer (no ref-count
/// cache-line bouncing on the per-packet path); the writer swaps in a new
/// snapshot and retires the old one into the domain.
template <typename T>
class SnapshotTable {
 public:
  SnapshotTable() = default;
  SnapshotTable(const SnapshotTable&) = delete;
  SnapshotTable& operator=(const SnapshotTable&) = delete;

  /// Reader-side: current snapshot, or nullptr before the first publish.
  /// Valid until the caller's next quiesce/park announcement.
  [[nodiscard]] const T* read() const noexcept {
    return current_.load(std::memory_order_seq_cst);
  }

  /// Control-side: share ownership of the current snapshot (e.g. to clone
  /// it as the base for the next delta build). Not for the per-packet path.
  [[nodiscard]] std::shared_ptr<const T> share() const {
    std::lock_guard lock(mu_);
    return owner_;
  }

  /// Writer-side (single writer): publish `next` and retire the previous
  /// snapshot into `domain` for grace-period reclamation.
  void publish(std::shared_ptr<const T> next, QsbrDomain& domain) {
    std::shared_ptr<const T> old;
    {
      std::lock_guard lock(mu_);
      old = std::move(owner_);
      owner_ = std::move(next);
      current_.store(owner_.get(), std::memory_order_seq_cst);
    }
    if (old) domain.retire(std::shared_ptr<const void>(std::move(old)));
  }

 private:
  std::atomic<const T*> current_{nullptr};
  mutable std::mutex mu_;        // guards owner_ for share()/publish()
  std::shared_ptr<const T> owner_;
};

}  // namespace dip::ctrl
