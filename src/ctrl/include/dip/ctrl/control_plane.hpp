// ControlPlane — netsim-driven route computation over RCU snapshots.
//
// The first subsystem where router state changes are driven by the network
// rather than by test setup: the control plane polls link state (PR-3
// blackout schedules are pure functions of simulated time), recomputes
// shortest paths over the managed topology on every transition, and pushes
// the per-node route deltas through each node's RouteJournal — data planes
// keep forwarding off the old snapshots until the new ones are published.
//
// Scope deliberately matches the experiments: destinations are IPv4
// prefixes anchored at a node (the paper's eval traffic), link metric is
// hop count, tie-breaks are by node id so the computation is deterministic.
// The machinery underneath (journal, snapshots, QSBR) is protocol-agnostic.
//
// Convergence accounting: when a poll observes a link transition, the
// transition's *event time* is reconstructed exactly from the blackout
// schedule (window start for down, window end for up); the convergence time
// reported for the following publish is publish_time - event_time, i.e. it
// includes detection latency — the end-to-end number a deployment cares
// about, not just the recompute cost.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dip/ctrl/journal.hpp"
#include "dip/ctrl/tables.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/network.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::ctrl {

struct ControlPlaneConfig {
  /// Link-state scan cadence (simulated time).
  SimDuration poll_interval = 100 * kMicrosecond;
  /// Minimum spacing between snapshot publishes per node; deltas decided
  /// inside the window stay pending (and coalesce) until it elapses. 0 =
  /// publish as soon as a recompute dirties a journal.
  SimDuration publish_interval = 0;
  /// Engine for control-built IPv4 tables when a node has no seed FIB.
  fib::LpmEngine engine32 = fib::LpmEngine::kPatricia;
};

struct ControlPlaneStats {
  std::uint64_t polls = 0;
  std::uint64_t link_down_events = 0;
  std::uint64_t link_up_events = 0;
  std::uint64_t recomputes = 0;          ///< SPF runs (one per transition batch)
  std::uint64_t routes_installed = 0;    ///< journal adds enqueued
  std::uint64_t routes_withdrawn = 0;    ///< journal removes enqueued
  std::uint64_t publishes = 0;           ///< flush rounds that published
  std::uint64_t convergences = 0;
  SimTime last_event_time = 0;           ///< reconstructed transition time
  SimDuration last_convergence_ns = 0;   ///< publish - event, end to end
};

class ControlPlane {
 public:
  explicit ControlPlane(netsim::Network& net, ControlPlaneConfig config = {});

  /// Put a router under management: create its ControlTables + journal,
  /// seed snapshots from the env's static tables, register the env as a
  /// reader, and switch its data path to the snapshot views. Call before
  /// traffic starts.
  void manage(netsim::DipRouterNode& node);

  /// Declare a destination: traffic matching `prefix` is routed toward
  /// `anchor`; the anchor itself forwards out of `delivery_face` (its host
  /// port). Takes effect on the next refresh().
  void add_destination(fib::Prefix<32> prefix, netsim::NodeId anchor,
                       core::FaceId delivery_face);

  /// Scan link state, recompute routes if anything changed (or `force`),
  /// enqueue deltas, and flush journals subject to publish_interval.
  void refresh(bool force = false);

  /// Self-rescheduling poll on net.loop() every poll_interval until
  /// `horizon`. Runs one forced refresh immediately to install the initial
  /// routes.
  void start(SimTime horizon);

  [[nodiscard]] const ControlPlaneStats& stats() const noexcept { return stats_; }
  /// The journal managing `node`, or nullptr if not managed.
  [[nodiscard]] RouteJournal* journal(netsim::NodeId node);

  /// `dip_ctrl_*` series (catalogue in docs/OBSERVABILITY.md): global
  /// poll/convergence counters plus per-node journal and QSBR gauges.
  void write_stats(telemetry::StatsWriter& w) const;
  /// write_stats as a StatsRegistry section named "control_plane".
  void register_stats(telemetry::StatsRegistry& registry) const;

 private:
  struct Managed {
    netsim::DipRouterNode* node = nullptr;
    std::unique_ptr<RouteJournal> journal;
    /// Last desired route set actually enqueued, keyed by prefix — diffed
    /// against each recompute so journals only see real changes.
    std::map<fib::Prefix<32>, fib::NextHop> desired;
  };

  struct Destination {
    fib::Prefix<32> prefix;
    netsim::NodeId anchor = 0;
    core::FaceId delivery_face = 0;
  };

  /// (node, face) -> link currently usable, for every managed-to-managed
  /// half-link. A link is usable only if *both* halves are out of blackout
  /// (either dark half blackholes one direction).
  [[nodiscard]] std::map<std::pair<netsim::NodeId, netsim::FaceId>, bool>
  scan_links() const;

  void recompute();
  void flush_journals();
  void start_tick(SimTime horizon);

  netsim::Network& net_;
  ControlPlaneConfig config_;
  ControlPlaneStats stats_;
  std::map<netsim::NodeId, Managed> managed_;
  std::vector<Destination> destinations_;
  std::map<std::pair<netsim::NodeId, netsim::FaceId>, bool> link_state_;
  bool have_link_state_ = false;
  SimTime last_publish_ = 0;
  bool ever_published_ = false;
  /// A transition was observed and routes republished for it is pending.
  bool convergence_pending_ = false;
};

}  // namespace dip::ctrl
