// ControlTables — one node's control-plane-owned route state.
//
// Bundles an RCU SnapshotTable for each table the six Table-1 compositions
// read (IPv4/IPv6 LPM, XID table, name FIB) behind a single QsbrDomain, so
// a data-plane reader announces quiescence once per burst and covers all
// four. RouterEnv holds a shared_ptr<ControlTables> (nullptr = the static
// pre-PR-5 configuration where tables are fixed at setup time); the
// RouteJournal is the single writer that publishes into it.
#pragma once

#include <memory>

#include "dip/ctrl/snapshot.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/fib/name_fib.hpp"
#include "dip/fib/xid_table.hpp"

namespace dip::ctrl {

struct ControlTables {
  QsbrDomain domain;
  SnapshotTable<fib::Ipv4Lpm> fib32;
  SnapshotTable<fib::Ipv6Lpm> fib128;
  SnapshotTable<fib::XidTable> xid;
  SnapshotTable<fib::NameFib> names;

  /// Register a data-plane reader (one per RouterPool worker, or one for
  /// the calling thread of a scalar Router).
  [[nodiscard]] ReaderHandle register_reader() {
    return domain.register_reader();
  }
};

}  // namespace dip::ctrl
