#include "dip/ctrl/control_plane.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace dip::ctrl {

ControlPlane::ControlPlane(netsim::Network& net, ControlPlaneConfig config)
    : net_(net), config_(config) {}

void ControlPlane::manage(netsim::DipRouterNode& node) {
  auto tables = std::make_shared<ControlTables>();
  auto journal = std::make_unique<RouteJournal>(
      tables, JournalConfig{config_.engine32, fib::LpmEngine::kPatricia});

  core::RouterEnv& env = node.env();
  // Carry the node's statically installed state into the first snapshots,
  // then retire the static pointers from the forwarding path.
  journal->seed(env.fib32.get(), env.fib128.get(), env.xid_table.get(),
                nullptr);
  env.control = tables;
  env.ctrl_reader = tables->register_reader();
  // The simulator thread is this node's reader; join the protocol now so
  // grace periods start tracking it.
  tables->domain.resume(env.ctrl_reader);

  Managed m;
  m.node = &node;
  m.journal = std::move(journal);
  managed_[node.id()] = std::move(m);
}

void ControlPlane::add_destination(fib::Prefix<32> prefix,
                                   netsim::NodeId anchor,
                                   core::FaceId delivery_face) {
  prefix.normalize();
  destinations_.push_back(Destination{prefix, anchor, delivery_face});
}

RouteJournal* ControlPlane::journal(netsim::NodeId node) {
  const auto it = managed_.find(node);
  return it == managed_.end() ? nullptr : it->second.journal.get();
}

std::map<std::pair<netsim::NodeId, netsim::FaceId>, bool>
ControlPlane::scan_links() const {
  std::map<std::pair<netsim::NodeId, netsim::FaceId>, bool> links;
  const SimTime now = net_.now();
  for (const auto& [id, m] : managed_) {
    const std::size_t faces = net_.face_count(id);
    for (netsim::FaceId f = 0; f < faces; ++f) {
      const netsim::LinkParams* params = net_.link_params(id, f);
      if (params == nullptr) continue;
      const auto peer = net_.peer_of(*m.node, f);
      if (!peer || !managed_.contains(peer->first)) continue;  // host port
      const netsim::LinkParams* back = net_.link_params(peer->first, peer->second);
      // Usable only if neither transmit half is inside a blackout window —
      // one dark half already blackholes a direction.
      const bool usable = !params->faults.in_blackout(now) &&
                          (back == nullptr || !back->faults.in_blackout(now));
      links[{id, f}] = usable;
    }
  }
  return links;
}

void ControlPlane::refresh(bool force) {
  ++stats_.polls;
  const SimTime now = net_.now();
  auto current = scan_links();

  bool changed = force || !have_link_state_;
  // Links that vanished since the last scan (face torn down) change the
  // topology even though no key in `current` flips.
  if (!changed) {
    for (const auto& [key, usable] : link_state_) {
      if (!current.contains(key)) {
        changed = true;
        break;
      }
    }
  }
  for (const auto& [key, usable] : current) {
    const auto prev = link_state_.find(key);
    if (prev == link_state_.end()) {
      // First sighting (a face connected after start()): there is no
      // up/down transition to account, but routes over it don't exist yet
      // — recompute or the new link stays unrouted forever.
      changed = true;
      continue;
    }
    if (prev->second == usable) continue;
    changed = true;
    // Both halves of a physical link transition together (usable is
    // computed symmetrically); account the event once, at the lower-id
    // endpoint.
    const auto peer = net_.peer_of(*managed_.at(key.first).node, key.second);
    if (peer && peer->first < key.first &&
        current.contains({peer->first, peer->second})) {
      continue;
    }
    // Reconstruct the transition instant from the blackout schedule of
    // whichever transmit half is (or was) dark: windows are
    // [k*period, k*period + duration), so with poll_interval shorter than
    // both the window and the gap, the current period holds the event.
    const netsim::LinkParams* halves[2] = {
        net_.link_params(key.first, key.second), nullptr};
    if (peer) {
      halves[1] = net_.link_params(peer->first, peer->second);
    }
    SimTime event = now;
    for (const netsim::LinkParams* p : halves) {
      if (p == nullptr || p->faults.blackout_period == 0 ||
          p->faults.blackout_duration == 0) {
        continue;
      }
      const SimDuration period = p->faults.blackout_period;
      const SimDuration duration = p->faults.blackout_duration;
      if (!usable && p->faults.in_blackout(now)) {
        event = std::min(event, (now / period) * period);  // window start
      } else if (usable && now % period >= duration) {
        event = std::min(event, (now / period) * period + duration);  // end
      }
    }
    if (usable) {
      ++stats_.link_up_events;
    } else {
      ++stats_.link_down_events;
    }
    stats_.last_event_time = event;
    convergence_pending_ = true;
  }
  link_state_ = std::move(current);
  have_link_state_ = true;

  if (changed) recompute();
  flush_journals();
}

void ControlPlane::recompute() {
  ++stats_.recomputes;

  // Adjacency over usable managed-to-managed links, neighbors ascending by
  // node id (deterministic tie-breaks).
  std::map<netsim::NodeId, std::vector<std::pair<netsim::NodeId, netsim::FaceId>>> adj;
  for (const auto& [key, usable] : link_state_) {
    if (!usable) continue;
    const auto peer = net_.peer_of(*managed_.at(key.first).node, key.second);
    if (!peer) continue;
    adj[key.first].emplace_back(peer->first, key.second);
  }
  for (auto& [id, neighbors] : adj) std::sort(neighbors.begin(), neighbors.end());

  // Desired route set per node across all destinations.
  std::map<netsim::NodeId, std::map<fib::Prefix<32>, fib::NextHop>> desired;
  constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
  for (const Destination& dest : destinations_) {
    if (!managed_.contains(dest.anchor)) continue;
    // BFS from the anchor (hop-count metric).
    std::map<netsim::NodeId, std::size_t> dist;
    std::deque<netsim::NodeId> queue;
    dist[dest.anchor] = 0;
    queue.push_back(dest.anchor);
    while (!queue.empty()) {
      const netsim::NodeId at = queue.front();
      queue.pop_front();
      const auto it = adj.find(at);
      if (it == adj.end()) continue;
      for (const auto& [nb, face] : it->second) {
        if (dist.contains(nb)) continue;
        dist[nb] = dist[at] + 1;
        queue.push_back(nb);
      }
    }
    for (const auto& [id, m] : managed_) {
      if (id == dest.anchor) {
        desired[id][dest.prefix] = dest.delivery_face;
        continue;
      }
      const auto dit = dist.find(id);
      if (dit == dist.end()) continue;  // unreachable: no route (blackhole)
      // Next hop: the lowest-id usable neighbor strictly closer to the
      // anchor; the route's next hop is this node's face toward it.
      netsim::NodeId best_nb = 0;
      netsim::FaceId best_face = 0;
      std::size_t best = kUnreached;
      const auto ait = adj.find(id);
      if (ait == adj.end()) continue;
      for (const auto& [nb, face] : ait->second) {
        const auto nit = dist.find(nb);
        if (nit == dist.end() || nit->second + 1 != dit->second) continue;
        if (best == kUnreached) {
          best_nb = nb;
          best_face = face;
          best = nit->second;
        }
      }
      if (best != kUnreached) desired[id][dest.prefix] = best_face;
    }
  }

  // Diff against what each journal last saw; enqueue only real changes.
  for (auto& [id, m] : managed_) {
    const auto& want = desired[id];
    for (const auto& [prefix, nh] : want) {
      const auto have = m.desired.find(prefix);
      if (have == m.desired.end() || have->second != nh) {
        m.journal->add_route32(prefix, nh);
        ++stats_.routes_installed;
      }
    }
    for (const auto& [prefix, nh] : m.desired) {
      if (!want.contains(prefix)) {
        m.journal->remove_route32(prefix);
        ++stats_.routes_withdrawn;
      }
    }
    m.desired = want;
  }
}

void ControlPlane::flush_journals() {
  const SimTime now = net_.now();
  // This tick runs on the simulator thread — the same thread that drives
  // every managed node's scalar Router — so each node's sim-thread reader
  // is between bursts right now and provably holds no snapshot pointers.
  // Announce quiescence on their behalf: a traffic-idle node otherwise
  // never quiesces (Router only announces at burst boundaries), pinning
  // its resume-time version and growing the retired backlog unboundedly.
  for (const auto& [id, m] : managed_) m.node->env().ctrl_quiesce();
  bool any_dirty = false;
  for (const auto& [id, m] : managed_) any_dirty |= m.journal->dirty();

  const bool rate_limited = ever_published_ && config_.publish_interval > 0 &&
                            now - last_publish_ < config_.publish_interval;
  if (any_dirty && !rate_limited) {
    std::size_t published = 0;
    for (auto& [id, m] : managed_) {
      if (m.journal->dirty()) published += m.journal->flush();
    }
    if (published != 0) {
      ++stats_.publishes;
      last_publish_ = now;
      ever_published_ = true;
      if (convergence_pending_) {
        ++stats_.convergences;
        stats_.last_convergence_ns = now - stats_.last_event_time;
        convergence_pending_ = false;
      }
    }
  } else {
    // Nothing to publish (or holding for the publish window): still drain
    // any grace periods that elapsed since the last poll.
    for (auto& [id, m] : managed_) m.journal->tables().domain.try_reclaim();
  }
}

void ControlPlane::start(SimTime horizon) {
  refresh(/*force=*/true);
  const SimTime next = net_.now() + config_.poll_interval;
  if (next > horizon) return;
  net_.loop().schedule_at(next, [this, horizon] { start_tick(horizon); });
}

void ControlPlane::start_tick(SimTime horizon) {
  refresh();
  const SimTime next = net_.now() + config_.poll_interval;
  if (next > horizon) return;
  net_.loop().schedule_at(next, [this, horizon] { start_tick(horizon); });
}

void ControlPlane::write_stats(telemetry::StatsWriter& w) const {
  w.counter("dip_ctrl_polls_total", {}, stats_.polls);
  const telemetry::Label down[] = {{"dir", "down"}};
  const telemetry::Label up[] = {{"dir", "up"}};
  w.counter("dip_ctrl_link_events_total", down, stats_.link_down_events);
  w.counter("dip_ctrl_link_events_total", up, stats_.link_up_events);
  w.counter("dip_ctrl_recomputes_total", {}, stats_.recomputes);
  w.counter("dip_ctrl_routes_installed_total", {}, stats_.routes_installed);
  w.counter("dip_ctrl_routes_withdrawn_total", {}, stats_.routes_withdrawn);
  w.counter("dip_ctrl_publishes_total", {}, stats_.publishes);
  w.counter("dip_ctrl_convergences_total", {}, stats_.convergences);
  w.counter("dip_ctrl_convergence_ns", {}, stats_.last_convergence_ns);

  for (const auto& [id, m] : managed_) {
    const std::string idx = std::to_string(id);
    const telemetry::Label labels[] = {{"node", idx}};
    const JournalStats& js = m.journal->stats();
    w.counter("dip_ctrl_updates_enqueued_total", labels, js.ops_enqueued);
    w.counter("dip_ctrl_updates_coalesced_total", labels, js.ops_coalesced);
    w.counter("dip_ctrl_updates_applied_total", labels, js.updates_applied);
    w.counter("dip_ctrl_snapshots_published_total", labels,
              js.snapshots_published);
    const ControlTables& tables = *m.node->env().control;
    const fib::Ipv4Lpm* fib = tables.fib32.read();
    w.counter("dip_ctrl_snapshot_generation", labels,
              fib != nullptr ? fib->generation() : 0);
    w.counter("dip_ctrl_reclaim_backlog", labels, tables.domain.backlog());
    w.counter("dip_ctrl_reclaimed_total", labels,
              tables.domain.reclaimed_total());
    // FIB shape of the live snapshot (catalogued in docs/OBSERVABILITY.md;
    // memory_bytes walks pointer engines, fine at exposition cadence).
    w.counter("dip_fib_entries", labels, fib != nullptr ? fib->size() : 0);
    w.counter("dip_fib_memory_bytes", labels,
              fib != nullptr ? fib->memory_bytes() : 0);
    w.counter("dip_fib_publish_latency_ns", labels, js.last_flush_ns);
    w.counter("dip_fib_publish_latency_max_ns", labels, js.max_flush_ns);
  }
}

void ControlPlane::register_stats(telemetry::StatsRegistry& registry) const {
  registry.add("control_plane",
               [this](telemetry::StatsWriter& w) { write_stats(w); });
}

}  // namespace dip::ctrl
