#include "dip/ctrl/journal.hpp"

#include <algorithm>
#include <chrono>

namespace dip::ctrl {

RouteJournal::RouteJournal(std::shared_ptr<ControlTables> tables,
                           JournalConfig config)
    : tables_(std::move(tables)), config_(config) {}

void RouteJournal::seed(const fib::Ipv4Lpm* fib32, const fib::Ipv6Lpm* fib128,
                        const fib::XidTable* xid, const fib::NameFib* names) {
  if (fib32 != nullptr) {
    tables_->fib32.publish(std::shared_ptr<const fib::Ipv4Lpm>(fib32->clone()),
                           tables_->domain);
  }
  if (fib128 != nullptr) {
    tables_->fib128.publish(std::shared_ptr<const fib::Ipv6Lpm>(fib128->clone()),
                            tables_->domain);
  }
  if (xid != nullptr) {
    tables_->xid.publish(std::make_shared<const fib::XidTable>(*xid),
                         tables_->domain);
  }
  if (names != nullptr) {
    tables_->names.publish(std::make_shared<const fib::NameFib>(*names),
                           tables_->domain);
  }
}

template <typename K, typename V>
void RouteJournal::put(std::map<K, V>& map, K key, V value) {
  ++stats_.ops_enqueued;
  const auto [it, inserted] = map.insert_or_assign(std::move(key), std::move(value));
  (void)it;
  if (!inserted) ++stats_.ops_coalesced;
}

void RouteJournal::add_route32(fib::Prefix<32> prefix, fib::NextHop nh) {
  prefix.normalize();
  put(pending32_, prefix, std::optional<fib::NextHop>{nh});
}

void RouteJournal::remove_route32(fib::Prefix<32> prefix) {
  prefix.normalize();
  put(pending32_, prefix, std::optional<fib::NextHop>{});
}

void RouteJournal::add_route128(fib::Prefix<128> prefix, fib::NextHop nh) {
  prefix.normalize();
  put(pending128_, prefix, std::optional<fib::NextHop>{nh});
}

void RouteJournal::remove_route128(fib::Prefix<128> prefix) {
  prefix.normalize();
  put(pending128_, prefix, std::optional<fib::NextHop>{});
}

void RouteJournal::add_xid_route(fib::XidType type, const fib::Xid& xid,
                                 fib::NextHop nh) {
  put(pending_xid_, XidKey{static_cast<std::uint8_t>(type), xid.bytes},
      std::optional<fib::NextHop>{nh});
}

void RouteJournal::remove_xid_route(fib::XidType type, const fib::Xid& xid) {
  put(pending_xid_, XidKey{static_cast<std::uint8_t>(type), xid.bytes},
      std::optional<fib::NextHop>{});
}

void RouteJournal::set_xid_local(fib::XidType type, const fib::Xid& xid) {
  put(pending_xid_local_, XidKey{static_cast<std::uint8_t>(type), xid.bytes},
      true);
}

void RouteJournal::add_name_route(const fib::Name& name, fib::NextHop nh) {
  put(pending_names_, name.to_string(), std::optional<fib::NextHop>{nh});
}

void RouteJournal::remove_name_route(const fib::Name& name) {
  put(pending_names_, name.to_string(), std::optional<fib::NextHop>{});
}

bool RouteJournal::dirty() const noexcept { return pending() != 0; }

std::size_t RouteJournal::pending() const noexcept {
  return pending32_.size() + pending128_.size() + pending_xid_.size() +
         pending_xid_local_.size() + pending_names_.size();
}

std::size_t RouteJournal::flush() {
  const auto start = std::chrono::steady_clock::now();
  std::size_t published = 0;

  if (!pending32_.empty()) {
    const auto base = tables_->fib32.share();
    std::unique_ptr<fib::Ipv4Lpm> next =
        base ? base->clone() : fib::make_lpm<32>(config_.engine32);
    for (const auto& [prefix, nh] : pending32_) {
      if (nh) {
        next->insert(prefix, *nh);
      } else {
        next->remove(prefix);
      }
    }
    stats_.updates_applied += pending32_.size();
    pending32_.clear();
    tables_->fib32.publish(
        std::shared_ptr<const fib::Ipv4Lpm>(std::move(next)), tables_->domain);
    ++published;
  }

  if (!pending128_.empty()) {
    const auto base = tables_->fib128.share();
    std::unique_ptr<fib::Ipv6Lpm> next =
        base ? base->clone() : fib::make_lpm<128>(config_.engine128);
    for (const auto& [prefix, nh] : pending128_) {
      if (nh) {
        next->insert(prefix, *nh);
      } else {
        next->remove(prefix);
      }
    }
    stats_.updates_applied += pending128_.size();
    pending128_.clear();
    tables_->fib128.publish(
        std::shared_ptr<const fib::Ipv6Lpm>(std::move(next)), tables_->domain);
    ++published;
  }

  if (!pending_xid_.empty() || !pending_xid_local_.empty()) {
    const auto base = tables_->xid.share();
    auto next = base ? std::make_unique<fib::XidTable>(*base)
                     : std::make_unique<fib::XidTable>();
    for (const auto& [key, nh] : pending_xid_) {
      const auto type = static_cast<fib::XidType>(key.first);
      const fib::Xid xid{key.second};
      if (nh) {
        next->insert(type, xid, *nh);
      } else {
        next->remove(type, xid);
      }
    }
    for (const auto& [key, local] : pending_xid_local_) {
      if (local) {
        next->set_local(static_cast<fib::XidType>(key.first),
                        fib::Xid{key.second});
      }
    }
    stats_.updates_applied += pending_xid_.size() + pending_xid_local_.size();
    pending_xid_.clear();
    pending_xid_local_.clear();
    tables_->xid.publish(
        std::shared_ptr<const fib::XidTable>(std::move(next)), tables_->domain);
    ++published;
  }

  if (!pending_names_.empty()) {
    const auto base = tables_->names.share();
    auto next = base ? std::make_unique<fib::NameFib>(*base)
                     : std::make_unique<fib::NameFib>();
    for (const auto& [text, nh] : pending_names_) {
      const fib::Name name = fib::Name::parse(text);
      if (nh) {
        next->insert(name, *nh);
      } else {
        next->remove(name);
      }
    }
    stats_.updates_applied += pending_names_.size();
    pending_names_.clear();
    tables_->names.publish(
        std::shared_ptr<const fib::NameFib>(std::move(next)), tables_->domain);
    ++published;
  }

  if (published != 0) {
    stats_.snapshots_published += published;
    ++stats_.flushes;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    stats_.last_flush_ns = ns;
    stats_.max_flush_ns = std::max(stats_.max_flush_ns, ns);
    stats_.total_flush_ns += ns;
  }
  // Reclaim even when nothing was published: readers may have quiesced past
  // earlier retirees since the last call.
  tables_->domain.try_reclaim();
  return published;
}

}  // namespace dip::ctrl
