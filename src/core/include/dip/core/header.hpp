// DIP packet header codec (§2.2, Figure 1).
//
// Layout on the wire:
//
//   +--------------------------- basic header (6 B) ---------------------+
//   | next_header:8 | fn_num:8 | hop_limit:8 | packet_param:16 | check:8 |
//   +---------------------------------------------------------------------
//   | fn_num x FnTriple (6 B each)                                        |
//   +---------------------------------------------------------------------
//   | FN locations block (packet_param.loc_len bytes)                     |
//   +---------------------------------------------------------------------
//   | payload ...                                                         |
//
// packet_param bits (16, msb..lsb): reserved:5 | loc_len:10 | parallel:1.
// The paper: "The lowest bit indicates whether the operation modules can be
// executed in parallel... the higher ten bits represent the length of FN
// locations and the remaining five bits are reserved."
//
// Header length is derived, never carried: 6 + 6*fn_num + loc_len (§2.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dip/bytes/cursor.hpp"
#include "dip/bytes/expected.hpp"
#include "dip/core/fn.hpp"

namespace dip::core {

/// Values for the basic header's next_header field.
enum class NextHeader : std::uint8_t {
  kNone = 59,  ///< no payload (mirrors IPv6 No Next Header)
  kUdp = 17,
  kTcp = 6,
  kDipError = 254,  ///< FN-unsupported notification payload (§2.4)
};

/// Parsed basic header fields.
struct BasicHeader {
  static constexpr std::size_t kWireSize = 6;
  static constexpr std::size_t kMaxLocLen = (1u << 10) - 1;  // 10-bit length

  std::uint8_t next_header = static_cast<std::uint8_t>(NextHeader::kNone);
  std::uint8_t fn_num = 0;
  std::uint8_t hop_limit = 64;
  bool parallel = false;        ///< modular-parallelism flag
  std::uint16_t loc_len = 0;    ///< FN locations length in bytes
  // reserved:5 always zero; checksum byte is computed, not stored here.
};

/// A fully parsed, owning DIP header (host side / tests).
struct DipHeader {
  BasicHeader basic;
  std::vector<FnTriple> fns;
  std::vector<std::uint8_t> locations;

  /// Total serialized size: 6 + 6*fn_num + loc_len.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return BasicHeader::kWireSize + fns.size() * FnTriple::kWireSize + locations.size();
  }

  /// Serialize into `out` (must be >= wire_size()). Fixes up fn_num/loc_len
  /// from the actual vectors.
  [[nodiscard]] bytes::Status serialize(std::span<std::uint8_t> out) const;

  /// Serialize into a fresh vector.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse from the front of `data` (copies triples and locations).
  [[nodiscard]] static bytes::Result<DipHeader> parse(std::span<const std::uint8_t> data);
};

/// XOR checksum over the first five basic-header bytes.
[[nodiscard]] inline std::uint8_t basic_header_checksum(
    std::span<const std::uint8_t> first5) noexcept {
  std::uint8_t x = 0xDB;  // domain separator so all-zero headers don't verify
  for (std::size_t i = 0; i < 5 && i < first5.size(); ++i) x ^= first5[i];
  return x;
}

namespace detail {

// packet_param bit layout (see the file comment).
inline constexpr std::uint16_t kParallelBit = 0x0001;
inline constexpr std::uint16_t kLocLenShift = 1;
inline constexpr std::uint16_t kLocLenMask = 0x03ff;

[[nodiscard]] inline std::uint16_t encode_packet_param(const BasicHeader& b) noexcept {
  return static_cast<std::uint16_t>((b.parallel ? kParallelBit : 0) |
                                    ((b.loc_len & kLocLenMask) << kLocLenShift));
}

inline void decode_packet_param(std::uint16_t param, BasicHeader& b) noexcept {
  b.parallel = (param & kParallelBit) != 0;
  b.loc_len = static_cast<std::uint16_t>((param >> kLocLenShift) & kLocLenMask);
}

}  // namespace detail

/// Zero-copy view of a DIP header inside a mutable packet buffer.
///
// The router's fast path: triples are decoded into a small fixed array and
// `locations` aliases the packet bytes so operation modules mutate fields
// in place (F_MAC/F_mark tag updates never copy the block).
class HeaderView {
 public:
  static constexpr std::size_t kMaxFns = 16;  ///< per-packet FN limit (§2.4)

  /// Bind a view to `packet` (the full DIP packet bytes). Validates
  /// structure and checksum.
  [[nodiscard]] static bytes::Result<HeaderView> bind(std::span<std::uint8_t> packet);

  /// In-place bind: writes the view directly into `out` (no by-value
  /// return, no second copy into batch scratch — the burst pipeline's
  /// phase 1a). On error `out` is unspecified. Inline: this runs once per
  /// packet on the batch fast path.
  [[nodiscard]] static bytes::Status bind_into(std::span<std::uint8_t> packet,
                                               HeaderView& v) {
    v.raw_ = packet;

    if (packet.size() < BasicHeader::kWireSize) {
      return bytes::Err(bytes::Error::kTruncated);
    }
    if (packet[5] != basic_header_checksum(packet.subspan(0, 5))) {
      return bytes::Err(bytes::Error::kChecksum);
    }
    v.basic_.next_header = packet[0];
    v.basic_.fn_num = packet[1];
    v.basic_.hop_limit = packet[2];
    detail::decode_packet_param(
        static_cast<std::uint16_t>((packet[3] << 8) | packet[4]), v.basic_);

    if (v.basic_.fn_num > kMaxFns) return bytes::Err(bytes::Error::kUnsupported);
    const std::size_t fns_bytes = v.basic_.fn_num * FnTriple::kWireSize;
    const std::size_t header_size =
        BasicHeader::kWireSize + fns_bytes + v.basic_.loc_len;
    if (packet.size() < header_size) return bytes::Err(bytes::Error::kTruncated);

    for (std::size_t i = 0; i < v.basic_.fn_num; ++i) {
      const std::size_t off = BasicHeader::kWireSize + i * FnTriple::kWireSize;
      FnTriple fn;
      fn.field_loc = static_cast<std::uint16_t>((packet[off] << 8) | packet[off + 1]);
      fn.field_len =
          static_cast<std::uint16_t>((packet[off + 2] << 8) | packet[off + 3]);
      fn.op = static_cast<std::uint16_t>((packet[off + 4] << 8) | packet[off + 5]);
      if (!bytes::fits(fn.range(), v.basic_.loc_len)) {
        return bytes::Err(bytes::Error::kMalformed);
      }
      v.fns_[i] = fn;
    }
    v.fn_count_ = v.basic_.fn_num;
    v.locations_ = packet.subspan(BasicHeader::kWireSize + fns_bytes, v.basic_.loc_len);
    v.payload_ = packet.subspan(header_size);
    return {};
  }

  [[nodiscard]] const BasicHeader& basic() const noexcept { return basic_; }
  [[nodiscard]] std::span<const FnTriple> fns() const noexcept {
    return {fns_.data(), fn_count_};
  }
  [[nodiscard]] std::span<std::uint8_t> locations() const noexcept { return locations_; }
  [[nodiscard]] std::span<std::uint8_t> payload() const noexcept { return payload_; }
  [[nodiscard]] std::size_t header_size() const noexcept {
    return BasicHeader::kWireSize + fn_count_ * FnTriple::kWireSize + locations_.size();
  }

  /// Decrement hop limit in place; false if it hit zero (drop). The XOR
  /// checksum updates incrementally (flip the old byte out, the new in) —
  /// this runs once per packet on the batch fast path.
  [[nodiscard]] bool decrement_hop_limit() noexcept {
    if (basic_.hop_limit == 0) return false;
    const std::uint8_t before = basic_.hop_limit;
    --basic_.hop_limit;
    raw_[2] = basic_.hop_limit;
    raw_[5] = static_cast<std::uint8_t>(raw_[5] ^ before ^ basic_.hop_limit);
    return basic_.hop_limit > 0;
  }

 private:
  BasicHeader basic_;
  std::array<FnTriple, kMaxFns> fns_{};
  std::size_t fn_count_ = 0;
  std::span<std::uint8_t> raw_;        // whole packet
  std::span<std::uint8_t> locations_;  // aliases raw_
  std::span<std::uint8_t> payload_;    // aliases raw_
};

}  // namespace dip::core
