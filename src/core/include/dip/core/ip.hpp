// IP forwarding realized with DIP (§3 "IP Forwarding").
//
// "We set the destination address in the lower 128/32 bits of the FN
// locations and the source address in the upper 128/32 bits, so the FN
// triples are (loc:0, len:32, F_32_match) + (loc:32, len:32, F_source) for
// DIP-32 and (loc:0, len:128, F_128_match) + (loc:128, len:128, F_source)
// for DIP-128."
//
// (The paper's running text swaps keys 1/2 relative to its own Table 1; we
// follow Table 1: key 1 = 32-bit match, key 2 = 128-bit match.)
#pragma once

#include <memory>

#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/fib/address.hpp"

namespace dip::core {

/// F_32_match (key 1): LPM the 32-bit target field in fib32, set egress.
class Match32Op final : public OpModule {
 public:
  [[nodiscard]] OpKey key() const noexcept override { return OpKey::kMatch32; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 2; }
  [[nodiscard]] bytes::Status execute(OpContext& ctx) override;
};

/// F_128_match (key 2): LPM the 128-bit target field in fib128, set egress.
class Match128Op final : public OpModule {
 public:
  [[nodiscard]] OpKey key() const noexcept override { return OpKey::kMatch128; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 3; }
  [[nodiscard]] bytes::Status execute(OpContext& ctx) override;
};

/// F_source (key 3): declares where the source address lives. Routers do not
/// act on it; it exists so other mechanisms (error notifications, F_pass)
/// can locate the source field.
class SourceOp final : public OpModule {
 public:
  [[nodiscard]] OpKey key() const noexcept override { return OpKey::kSource; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 1; }
  [[nodiscard]] bytes::Status execute(OpContext&) override { return {}; }
};

/// Compose a DIP-32 (IPv4-over-DIP) header. Total wire size: 26 bytes.
[[nodiscard]] bytes::Result<DipHeader> make_dip32_header(
    const fib::Ipv4Addr& dst, const fib::Ipv4Addr& src,
    NextHeader next = NextHeader::kNone, std::uint8_t hop_limit = 64);

/// Compose a DIP-128 (IPv6-over-DIP) header. Total wire size: 50 bytes.
[[nodiscard]] bytes::Result<DipHeader> make_dip128_header(
    const fib::Ipv6Addr& dst, const fib::Ipv6Addr& src,
    NextHeader next = NextHeader::kNone, std::uint8_t hop_limit = 64);

/// Locate the source-address field of a parsed DIP header (the first
/// F_source triple), if present.
[[nodiscard]] std::optional<bytes::BitRange> find_source_field(
    std::span<const FnTriple> fns) noexcept;

}  // namespace dip::core
