// RouterEnv — the per-node state that operation modules act on.
//
// Algorithm 1 dispatches FNs to operation modules; the modules themselves
// are (mostly) stateless and read/write the node state collected here:
// forwarding tables, PIT, content store, and the node's cryptographic
// secrets. One RouterEnv == one DIP-capable node's data plane state.
//
// Sharding note (RouterPool): the FIBs and XID table are shared_ptr so N
// worker environments can share one read-mostly route table, while PIT,
// content store, and the flow cache stay strictly per-worker — flow-affine
// sharding guarantees a flow only ever touches one worker's state.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>

#include "dip/bytes/time.hpp"
#include "dip/crypto/aes.hpp"
#include "dip/crypto/mac.hpp"
#include "dip/ctrl/tables.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/fib/xid_table.hpp"
#include "dip/pit/content_store.hpp"
#include "dip/pit/pit.hpp"
#include "dip/core/flow_cache.hpp"
#include "dip/core/fn.hpp"
#include "dip/telemetry/counters.hpp"
#include "dip/telemetry/stats.hpp"

namespace dip::core {

/// §2.4 security: hard limits on per-packet work and per-packet state.
struct ResourceLimits {
  std::uint32_t per_packet_budget = 64;  ///< abstract cost units per packet
  std::uint32_t max_fn_per_packet = 16;  ///< must not exceed HeaderView::kMaxFns
};

struct RouterEnv {
  // ---- identity -------------------------------------------------------
  std::uint32_t node_id = 0;

  // ---- forwarding state -------------------------------------------------
  // Static configuration: tables fixed before traffic starts, shareable
  // across RouterPool workers, and never mutated afterwards. Post-start
  // route churn must go through `control` below — mutating these shared
  // tables while workers forward is a data race.
  std::shared_ptr<fib::Ipv4Lpm> fib32;    ///< used by F_32_match and F_FIB
  std::shared_ptr<fib::Ipv6Lpm> fib128;   ///< used by F_128_match
  std::shared_ptr<fib::XidTable> xid_table;  ///< used by F_DAG / F_intent (XIA)

  // ---- control plane (docs/CONTROL_PLANE.md) ----------------------------
  /// RCU snapshot tables published by the control plane. nullptr (the
  /// default) keeps the static configuration above. When set, the data
  /// path reads exclusively through the *_view() accessors and the static
  /// pointers are ignored for forwarding.
  std::shared_ptr<ctrl::ControlTables> control;
  /// This environment's reader registration with control->domain; every
  /// RouterPool worker env (and the calling thread of a scalar Router)
  /// holds its own. Must be set whenever `control` is.
  ctrl::ReaderHandle ctrl_reader;

  /// Data-path table views: current RCU snapshot when under control-plane
  /// management, else the static table. Raw pointers are valid until this
  /// env's next ctrl_quiesce()/ctrl_park() announcement.
  [[nodiscard]] const fib::Ipv4Lpm* fib32_view() const noexcept {
    return control ? control->fib32.read() : fib32.get();
  }
  [[nodiscard]] const fib::Ipv6Lpm* fib128_view() const noexcept {
    return control ? control->fib128.read() : fib128.get();
  }
  [[nodiscard]] const fib::XidTable* xid_view() const noexcept {
    return control ? control->xid.read() : xid_table.get();
  }
  [[nodiscard]] const fib::NameFib* names_view() const noexcept {
    return control ? control->names.read() : nullptr;
  }

  /// Quiescent-state announcements (no-ops in static configuration). The
  /// router announces at burst boundaries; pool workers park/resume around
  /// their idle wait. See dip/ctrl/snapshot.hpp for the protocol.
  void ctrl_quiesce() const noexcept {
    if (control && ctrl_reader) control->domain.quiesce(ctrl_reader);
  }
  void ctrl_park() const noexcept {
    if (control && ctrl_reader) ctrl::QsbrDomain::park(ctrl_reader);
  }
  void ctrl_resume() const noexcept {
    if (control && ctrl_reader) control->domain.resume(ctrl_reader);
  }
  // Strictly per-worker flow state.
  pit::Pit pit;                           ///< used by F_PIT
  std::optional<pit::ContentStore> content_store;  ///< footnote-2 extension
  /// Exact-match memo in front of F_32_match/F_128_match (nullptr = off).
  std::unique_ptr<FlowCache> flow_cache;
  /// Fallback egress when no match FN decided (models the paper's one-hop
  /// port-wired eval topology); kNoRoute-like nullopt means "drop".
  std::optional<FaceId> default_egress;

  // ---- crypto state (OPT) ----------------------------------------------
  crypto::Block node_secret{};            ///< local secret for DRKey derivation
  crypto::MacKind mac_kind = crypto::MacKind::kEm2;
  /// AS-wide key for F_pass source-label verification (§2.4 security). The
  /// edge AS issues labels with it; every AS router can check them.
  crypto::Block pass_key{};
  /// F_pass enforcement toggle — operators "dynamically adjust security
  /// policies based on network conditions" (§2.4): when false, F_pass FNs
  /// are accepted without the (expensive) check.
  bool enforce_pass = false;

  // ---- disruption tolerance (docs/DTN.md) --------------------------------
  /// Overlay-wide key for F_custody chain-MAC verification and re-stamping
  /// (same trust model as pass_key: every custody-capable node holds it).
  crypto::Block custody_key{};
  /// Whether this node takes custody. When false, F_custody FNs are carried
  /// untouched — the node forwards the bundle but is not part of the DTN
  /// overlay, mirroring the §2.4 heterogeneous-deployment rule.
  bool accept_custody = false;
  /// The node's bounded dtn::CustodyStore, type-erased so core does not
  /// depend on dtn; dtn's node wrappers install and cast it.
  std::shared_ptr<void> custody_store;

  // ---- deployment configuration (§2.4) ----------------------------------
  /// FN keys this node refuses even if a module is linked in (heterogeneous
  /// AS configuration). Empty = support everything registered.
  std::set<OpKey> disabled_keys;

  // ---- security ----------------------------------------------------------
  ResourceLimits limits;

  // ---- bookkeeping ---------------------------------------------------------
  /// Relaxed-atomic counters (see dip/telemetry/counters.hpp): per-worker
  /// routers can expose them to a telemetry thread without data races.
  using Counters = telemetry::RouterCounters;
  Counters counters;

  /// Router-internal stats (latency histograms + trace ring); nullptr (the
  /// default) disables them — the hot path then pays one pointer test per
  /// burst and per FN, no clock reads, no allocation. Install with
  /// telemetry::make_router_stats(); a control thread may read the live
  /// block (see telemetry/stats.hpp for the ownership contract).
  std::unique_ptr<telemetry::RouterStats> stats;

  [[nodiscard]] std::uint64_t executions_of(OpKey key) const {
    return counters.fn_by_key[static_cast<std::size_t>(key) %
                              counters.fn_by_key.size()];
  }

  [[nodiscard]] bool supports(OpKey key) const {
    return !disabled_keys.contains(key);
  }
};

}  // namespace dip::core
