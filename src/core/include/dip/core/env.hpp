// RouterEnv — the per-node state that operation modules act on.
//
// Algorithm 1 dispatches FNs to operation modules; the modules themselves
// are (mostly) stateless and read/write the node state collected here:
// forwarding tables, PIT, content store, and the node's cryptographic
// secrets. One RouterEnv == one DIP-capable node's data plane state.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>

#include "dip/bytes/time.hpp"
#include "dip/crypto/aes.hpp"
#include "dip/crypto/mac.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/fib/xid_table.hpp"
#include "dip/pit/content_store.hpp"
#include "dip/pit/pit.hpp"
#include "dip/core/fn.hpp"

namespace dip::core {

/// §2.4 security: hard limits on per-packet work and per-packet state.
struct ResourceLimits {
  std::uint32_t per_packet_budget = 64;  ///< abstract cost units per packet
  std::uint32_t max_fn_per_packet = 16;  ///< must not exceed HeaderView::kMaxFns
};

struct RouterEnv {
  // ---- identity -------------------------------------------------------
  std::uint32_t node_id = 0;

  // ---- forwarding state -------------------------------------------------
  std::unique_ptr<fib::Ipv4Lpm> fib32;    ///< used by F_32_match and F_FIB
  std::unique_ptr<fib::Ipv6Lpm> fib128;   ///< used by F_128_match
  pit::Pit pit;                           ///< used by F_PIT
  std::unique_ptr<fib::XidTable> xid_table;  ///< used by F_DAG / F_intent (XIA)
  std::optional<pit::ContentStore> content_store;  ///< footnote-2 extension
  /// Fallback egress when no match FN decided (models the paper's one-hop
  /// port-wired eval topology); kNoRoute-like nullopt means "drop".
  std::optional<FaceId> default_egress;

  // ---- crypto state (OPT) ----------------------------------------------
  crypto::Block node_secret{};            ///< local secret for DRKey derivation
  crypto::MacKind mac_kind = crypto::MacKind::kEm2;
  /// AS-wide key for F_pass source-label verification (§2.4 security). The
  /// edge AS issues labels with it; every AS router can check them.
  crypto::Block pass_key{};
  /// F_pass enforcement toggle — operators "dynamically adjust security
  /// policies based on network conditions" (§2.4): when false, F_pass FNs
  /// are accepted without the (expensive) check.
  bool enforce_pass = false;

  // ---- deployment configuration (§2.4) ----------------------------------
  /// FN keys this node refuses even if a module is linked in (heterogeneous
  /// AS configuration). Empty = support everything registered.
  std::set<OpKey> disabled_keys;

  // ---- security ----------------------------------------------------------
  ResourceLimits limits;

  // ---- bookkeeping ---------------------------------------------------------
  struct Counters {
    std::uint64_t processed = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t errors = 0;
    std::uint64_t fn_executed = 0;
    std::uint64_t fn_skipped_host = 0;
    std::uint64_t fn_skipped_optional = 0;
    /// Executions per operation key (indexed by the low key bits).
    std::array<std::uint64_t, 32> fn_by_key{};
  } counters;

  [[nodiscard]] std::uint64_t executions_of(OpKey key) const {
    return counters.fn_by_key[static_cast<std::size_t>(key) %
                              counters.fn_by_key.size()];
  }

  [[nodiscard]] bool supports(OpKey key) const {
    return !disabled_keys.contains(key);
  }
};

}  // namespace dip::core
