// Operation-module registry.
//
// The paper's prototype "pre-writes the required operation modules on the
// data plane and uses the operation key to match these operation modules"
// (§4.1). The registry is that key→module match table. A node's supported
// FN set = registered modules minus env.disabled_keys.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "dip/core/op_module.hpp"

namespace dip::core {

class OpRegistry {
 public:
  /// Install a module; replaces any module with the same key. This is the
  /// §5 runtime-upgrade path: "the network providers can now support new
  /// services by only upgrading FNs, instead of replacing the underlying
  /// hardware" — deployments add/replace modules while traffic flows.
  void add(std::unique_ptr<OpModule> module);

  /// Uninstall the module for `key`; returns it (nullptr if absent) so a
  /// rollback can reinstate it.
  std::unique_ptr<OpModule> remove(OpKey key);

  /// Monotonic change counter: bumped by every add/remove. Bootstrap
  /// re-advertises capabilities when it observes a new epoch.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// nullptr if no module implements `key`.
  [[nodiscard]] OpModule* find(OpKey key) const noexcept;

  [[nodiscard]] bool contains(OpKey key) const noexcept { return find(key) != nullptr; }

  /// Keys of every registered module (bootstrap advertises these, §2.3).
  [[nodiscard]] std::vector<OpKey> keys() const;

  [[nodiscard]] std::size_t size() const noexcept { return modules_.size(); }

 private:
  std::unordered_map<std::uint16_t, std::unique_ptr<OpModule>> modules_;
  std::uint64_t epoch_ = 0;
};

}  // namespace dip::core
