// Per-packet processing outcome ("determine the packet fate", §2.1).
#pragma once

#include <cstdint>
#include <string_view>

#include "dip/core/burst.hpp"
#include "dip/core/fn.hpp"

namespace dip::core {

enum class Action : std::uint8_t {
  kForward,  ///< send out the egress face(s)
  kDrop,     ///< discard silently
  kError,    ///< discard and notify the source (FN-unsupported, §2.4)
};

enum class DropReason : std::uint8_t {
  kNone,
  kNoRoute,          ///< no match FN produced an egress
  kPitMiss,          ///< data packet with no pending interest (§3 NDN)
  kHopLimitExceeded,
  kAuthFailed,       ///< OPT tag verification failed
  kBudgetExhausted,  ///< §2.4 per-packet processing limit
  kUnsupportedFn,    ///< path-critical FN not supported by this node
  kMalformed,
  kDuplicate,        ///< looping interest (PIT duplicate)
  kPolicyDenied,     ///< F_pass rejected the source label
  kAggregated,       ///< interest suppressed; an upstream request is pending
  kRateExceeded,     ///< F_dps fair-share policing dropped the packet
  kOverloadShed,     ///< RouterPool ingress shed (bounded queue full)
  kCorruptQuarantine,  ///< lenient validation quarantined a corrupt FN list
};

[[nodiscard]] std::string_view to_string(DropReason r) noexcept;

/// The router's decision for one packet.
struct ProcessResult {
  Action action = Action::kForward;
  DropReason reason = DropReason::kNone;
  /// Egress faces; >1 means replicate (NDN data fan-out to all requesters).
  /// Small-inline with retained heap spill (burst.hpp): recycled result
  /// slots stop allocating once warmed up.
  EgressList egress;
  /// For kError: which FN could not be honored.
  OpKey offending_key{};
  /// Set by F_FIB on a content-store hit (footnote 2): the node can answer
  /// the interest itself; egress points back at the requester.
  bool respond_from_cache = false;

  [[nodiscard]] bool forwarded() const noexcept {
    return action == Action::kForward && !egress.empty();
  }

  /// Return the slot to its default state, keeping the egress vector's
  /// capacity (batch slots are recycled burst over burst).
  void reset() noexcept {
    action = Action::kForward;
    reason = DropReason::kNone;
    egress.clear();
    offending_key = {};
    respond_from_cache = false;
  }

  void drop(DropReason r) noexcept {
    action = Action::kDrop;
    reason = r;
    egress.clear();
  }

  void fail_unsupported(OpKey key) noexcept {
    action = Action::kError;
    reason = DropReason::kUnsupportedFn;
    offending_key = key;
    egress.clear();
  }
};

}  // namespace dip::core
