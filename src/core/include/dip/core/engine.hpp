// RouterEngine — a uniform seam over the three production packet paths.
//
// The conformance harness (tests/conformance_test.cpp) must drive the same
// packet stream through Router::process (scalar), Router::process_batch
// (burst) and RouterPool (sharded workers) and compare every verdict and
// every rewritten byte against the executable-spec reference model. This
// header gives those three paths one shape: feed N packets with per-packet
// timestamps/ingress faces, get N verdicts back, packets mutated in place.
//
// It is a test seam, not a data path: no hot-loop code moves through here.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "dip/core/env.hpp"
#include "dip/core/registry.hpp"
#include "dip/core/router.hpp"

namespace dip::core {

/// Builds worker i's environment (the pool engine calls it once per worker;
/// scalar/batch engines call it once with i = 0). Hand every worker the same
/// shared_ptr tables to model one router with sharded cores.
using EnvFactory = std::function<RouterEnv(std::size_t)>;

struct EngineConfig {
  /// Burst size for the batch and pool paths. Callers must keep the
  /// per-packet `nows`/`ingresses` constant within each batch_size-aligned
  /// block of the stream: a burst is processed with its first packet's
  /// timestamp and ingress face.
  std::size_t batch_size = 32;
  std::size_t pool_workers = 4;
  std::size_t pool_ring_capacity = 1024;
  ValidationMode validation = ValidationMode::kStrict;
  DispatchStrategy strategy = DispatchStrategy::kLoop;
};

class RouterEngine {
 public:
  virtual ~RouterEngine() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Process the whole stream in order; returns one verdict per packet.
  /// Packets are mutated in place (hop limit, checksum, tag fields) exactly
  /// as the underlying path rewrites them. `nows.size()` and
  /// `ingresses.size()` must equal `packets.size()`.
  virtual std::vector<ProcessResult> run(std::span<std::vector<std::uint8_t>> packets,
                                         std::span<const SimTime> nows,
                                         std::span<const FaceId> ingresses) = 0;
};

/// Router::process, one packet at a time.
[[nodiscard]] std::unique_ptr<RouterEngine> make_scalar_engine(
    const OpRegistry* registry, const EnvFactory& env_factory, EngineConfig config = {});

/// Router::process_batch over batch_size-aligned bursts.
[[nodiscard]] std::unique_ptr<RouterEngine> make_batch_engine(
    const OpRegistry* registry, const EnvFactory& env_factory, EngineConfig config = {});

/// RouterPool with pool_workers flow-affine workers. Each run() builds a
/// fresh pool, submits the stream in order, stops it, and maps completions
/// back to stream order via RouterPool::shard_of (per-worker FIFO order is
/// guaranteed by the SPSC rings).
[[nodiscard]] std::unique_ptr<RouterEngine> make_pool_engine(
    const OpRegistry* registry, const EnvFactory& env_factory, EngineConfig config = {});

}  // namespace dip::core
