// The Algorithm-1 router engine.
//
// Faithful to the paper's pseudocode:
//   1. parse basic DIP header (FN_Num, FN_LocLen)
//   2. parse FN[] according to FN_Num
//   3. extract FN_Loc according to FN_LocLen
//   4. for each FN: skip host-tagged; otherwise slice the target field and
//      dispatch on the operation key
//
// Two dispatch strategies are provided (ablation A1):
//   * kLoop      — the natural for-loop over FN[] (what the paper wanted);
//   * kUnrolled  — a fixed if-else ladder on FN_Num mirroring the Tofino
//                  compromise of §4.1 ("the simple if-else statement with
//                  FN_Num to determine how many field operations to perform").
#pragma once

#include <cstdint>
#include <span>

#include "dip/bytes/time.hpp"
#include "dip/core/env.hpp"
#include "dip/core/header.hpp"
#include "dip/core/registry.hpp"
#include "dip/core/verdict.hpp"

namespace dip::core {

enum class DispatchStrategy : std::uint8_t { kLoop, kUnrolled };

class Router {
 public:
  Router(RouterEnv env, const OpRegistry* registry,
         DispatchStrategy strategy = DispatchStrategy::kLoop)
      : env_(std::move(env)), registry_(registry), strategy_(strategy) {}

  /// Process one DIP packet in place (tag fields may be rewritten).
  /// `packet` is the full DIP packet: header + payload.
  [[nodiscard]] ProcessResult process(std::span<std::uint8_t> packet, FaceId ingress,
                                      SimTime now);

  [[nodiscard]] RouterEnv& env() noexcept { return env_; }
  [[nodiscard]] const RouterEnv& env() const noexcept { return env_; }
  [[nodiscard]] DispatchStrategy strategy() const noexcept { return strategy_; }
  void set_strategy(DispatchStrategy s) noexcept { strategy_ = s; }

 private:
  struct FnRunState {
    std::uint32_t budget = 0;
    OpScratch scratch;
  };

  /// Run one FN; returns false when processing must stop (drop/error).
  bool run_fn(const FnTriple& fn, HeaderView& view, FaceId ingress, SimTime now,
              FnRunState& state, ProcessResult& result);

  void dispatch_loop(HeaderView& view, FaceId ingress, SimTime now,
                     ProcessResult& result);
  void dispatch_unrolled(HeaderView& view, FaceId ingress, SimTime now,
                         ProcessResult& result);

  RouterEnv env_;
  const OpRegistry* registry_;
  DispatchStrategy strategy_;
};

}  // namespace dip::core
