// The Algorithm-1 router engine.
//
// Faithful to the paper's pseudocode:
//   1. parse basic DIP header (FN_Num, FN_LocLen)
//   2. parse FN[] according to FN_Num
//   3. extract FN_Loc according to FN_LocLen
//   4. for each FN: skip host-tagged; otherwise slice the target field and
//      dispatch on the operation key
//
// Two dispatch strategies are provided (ablation A1):
//   * kLoop      — the natural for-loop over FN[] (what the paper wanted);
//   * kUnrolled  — a fixed if-else ladder on FN_Num mirroring the Tofino
//                  compromise of §4.1 ("the simple if-else statement with
//                  FN_Num to determine how many field operations to perform").
//
// The fast path is process_batch: a run-to-completion, two-phase burst
// pipeline. Phase one binds every HeaderView and validates structure for
// the whole burst (branch-predictable, cache friendly); phase two
// dispatches FNs packet by packet. process() is a thin batch-of-one
// wrapper, so both paths share one semantics. Per-FN module lookup goes
// through a dense, registry-epoch-validated table instead of the hash map,
// and the match FNs consult the RouterEnv flow cache before walking the
// FIB (see flow_cache.hpp).
//
// Observability: when RouterEnv::stats is installed, process_batch records
// bind/validate/dispatch phase latencies (sampled per burst), per-OpKey
// module latencies, and trace-ring records for sampled packets (see
// telemetry/stats.hpp and docs/OBSERVABILITY.md). With stats disabled the
// path stays clock-free.
//
// A Router is single-threaded by design; RouterPool shards packets across
// N routers for multi-core operation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dip/bytes/time.hpp"
#include "dip/core/burst.hpp"
#include "dip/core/env.hpp"
#include "dip/core/header.hpp"
#include "dip/core/registry.hpp"
#include "dip/core/verdict.hpp"
#include "dip/crypto/drkey.hpp"

namespace dip::core {

enum class DispatchStrategy : std::uint8_t { kLoop, kUnrolled };

/// How the router treats structurally damaged packets (chaos links flip
/// bytes; see docs/FAULTS.md).
///   * kStrict  — bind failures drop as kMalformed (historical behaviour).
///   * kLenient — bind failures *and* FN slices that overrun the locations
///     block are quarantined: dropped as kCorruptQuarantine, counted in
///     counters.quarantined, and force-recorded into the TraceRing (the
///     sampler is bypassed so no corrupt packet escapes the ledger).
enum class ValidationMode : std::uint8_t { kStrict, kLenient };

/// One slot of a burst handed to Router::process_batch: a view over the
/// full mutable packet bytes (header + payload; tag fields are rewritten
/// in place).
struct PacketRef {
  std::span<std::uint8_t> bytes;

  PacketRef() = default;
  PacketRef(std::span<std::uint8_t> b) : bytes(b) {}
  PacketRef(std::vector<std::uint8_t>& owned) : bytes(owned) {}
};

class Router {
 public:
  Router(RouterEnv env, const OpRegistry* registry,
         DispatchStrategy strategy = DispatchStrategy::kLoop)
      : env_(std::move(env)), registry_(registry), strategy_(strategy) {}

  /// Process one DIP packet in place (tag fields may be rewritten).
  /// `packet` is the full DIP packet: header + payload. Thin wrapper over a
  /// batch of one.
  [[nodiscard]] ProcessResult process(std::span<std::uint8_t> packet, FaceId ingress,
                                      SimTime now);

  /// Process a burst run-to-completion; results[i] is packet[i]'s verdict.
  /// `results.size()` must be >= `packets.size()`; slots are reset (their
  /// egress capacity is reused, so a caller that keeps its results buffer
  /// across bursts never allocates on the steady path).
  void process_batch(std::span<const PacketRef> packets, FaceId ingress, SimTime now,
                     std::span<ProcessResult> results);

  /// Convenience overload allocating the result vector.
  [[nodiscard]] std::vector<ProcessResult> process_batch(
      std::span<const PacketRef> packets, FaceId ingress, SimTime now);

  [[nodiscard]] RouterEnv& env() noexcept { return env_; }
  [[nodiscard]] const RouterEnv& env() const noexcept { return env_; }
  [[nodiscard]] DispatchStrategy strategy() const noexcept { return strategy_; }
  void set_strategy(DispatchStrategy s) noexcept { strategy_ = s; }
  [[nodiscard]] ValidationMode validation() const noexcept { return validation_; }
  void set_validation(ValidationMode m) noexcept { validation_ = m; }

  /// Module-major (wave) burst dispatch toggle: phase 2 executes each FN
  /// position across the whole burst, key-grouped, instead of packet by
  /// packet (DESIGN.md §10). Defaults from the DIP_VECTOR environment knob
  /// ("0" disables); only the kLoop strategy uses it.
  [[nodiscard]] bool vector_dispatch() const noexcept { return vector_dispatch_; }
  void set_vector_dispatch(bool on) noexcept { vector_dispatch_ = on; }

  /// Software-prefetch toggle (header bytes one packet ahead, flow-cache
  /// slots, FIB root slabs). Defaults from the DIP_PREFETCH environment
  /// knob ("0" disables).
  [[nodiscard]] bool prefetch_enabled() const noexcept { return prefetch_; }
  void set_prefetch(bool on) noexcept { prefetch_ = on; }

 private:
  /// Dense module table size; OpKey values live well below this.
  static constexpr std::size_t kModuleTableSize = 64;

  struct FnRunState {
    std::uint32_t budget = 0;
    OpScratch scratch;
  };

  /// Run one FN; returns false when processing must stop (drop/error).
  bool run_fn(const FnTriple& fn, HeaderView& view, FaceId ingress, SimTime now,
              FnRunState& state, ProcessResult& result);

  /// Execute a match FN through the flow cache (memoized FIB verdict).
  bool run_match(const FnTriple& fn, OpModule* module, HeaderView& view,
                 FaceId ingress, SimTime now, FnRunState& state,
                 ProcessResult& result);

  /// Push one sampled packet's execution record into the stats trace ring.
  void record_trace(const HeaderView& view, FaceId ingress, SimTime now,
                    std::uint64_t t_start, const ProcessResult& result);

  /// Lenient-mode quarantine: tag the result, bump the quarantined counter,
  /// and force a trace-ring record (`view` may be null when bind failed).
  void quarantine(const HeaderView* view, FaceId ingress, SimTime now,
                  ProcessResult& result);

  /// True when every FN slice fits inside the locations block (lenient-mode
  /// structural check; corrupt loc/len triples fail this).
  [[nodiscard]] static bool fns_fit(const HeaderView& view) noexcept;

  /// Phase 2 of process_batch: classify the burst, run eligible packets
  /// through position-major waves (module-major within each wave), the
  /// rest through the legacy per-packet path. Accumulates the phase's
  /// action tallies into the caller's locals.
  /// `waves_allowed`/`exemplar`/`uniform` carry phase 1's uniform-program
  /// detection (exemplar == packet count when no packet bound).
  void dispatch_burst(std::span<const PacketRef> packets, FaceId ingress, SimTime now,
                      std::span<ProcessResult> results, telemetry::RouterStats* stats,
                      bool waves_allowed, std::size_t exemplar, bool uniform,
                      std::uint64_t& forwarded, std::uint64_t& dropped,
                      std::uint64_t& errors);

  /// Uniform-burst fast plan: every bound packet carries the identical FN
  /// program (same triples, no parallel bit, <=1 stateful FN), so each
  /// wave is one whole-burst group in arrival order — no per-packet
  /// classification and no counting sort. `exemplar` indexes the packet
  /// whose program stands for the burst.
  void dispatch_burst_uniform(std::size_t n, FaceId ingress, SimTime now,
                              std::span<ProcessResult> results,
                              telemetry::RouterStats* stats, std::size_t exemplar,
                              std::uint8_t* smp, std::uint8_t* alive,
                              FnRunState* states, std::uint64_t& forwarded,
                              std::uint64_t& dropped, std::uint64_t& errors);

  /// Route one same-key wave group to its kernel: the §2.4 unsupported
  /// handling once per group, then flow-cache match / batched crypto /
  /// per-item fallback.
  void wave_group(OpKey key, OpModule* module, std::size_t pos,
                  const std::uint16_t* items, std::size_t count, FaceId ingress,
                  SimTime now, FnRunState* states, std::uint8_t* alive,
                  const std::uint8_t* sampled, std::span<ProcessResult> results);

  // Wave-group kernels (contracts in router.cpp). `items` are packet
  // indices of one same-key group at FN position `pos`, in arrival order.
  void wave_match(OpKey key, OpModule* module, std::size_t pos,
                  const std::uint16_t* items, std::size_t count, FaceId ingress,
                  SimTime now, FnRunState* states, std::uint8_t* alive,
                  const std::uint8_t* sampled, std::span<ProcessResult> results);
  void wave_parm(OpModule* module, std::size_t pos, const std::uint16_t* items,
                 std::size_t count, FnRunState* states, std::uint8_t* alive,
                 const std::uint8_t* sampled, std::span<ProcessResult> results,
                 FaceId ingress, SimTime now);
  void wave_mac(OpModule* module, std::size_t pos, const std::uint16_t* items,
                std::size_t count, FnRunState* states, std::uint8_t* alive,
                const std::uint8_t* sampled, std::span<ProcessResult> results,
                FaceId ingress, SimTime now);
  /// Fallback kernel: run each item through run_fn (exact legacy per-FN
  /// semantics), in arrival order.
  void wave_run_items(std::size_t pos, const std::uint16_t* items, std::size_t count,
                      FaceId ingress, SimTime now, FnRunState* states,
                      std::uint8_t* alive, const std::uint8_t* sampled,
                      std::span<ProcessResult> results);

  /// Environment boolean knob: unset -> `dflt`, "0" -> false, else true.
  [[nodiscard]] static bool env_flag(const char* name, bool dflt) noexcept;

  void dispatch(HeaderView& view, FaceId ingress, SimTime now, ProcessResult& result);
  void dispatch_loop(HeaderView& view, FaceId ingress, SimTime now,
                     ProcessResult& result);
  void dispatch_unrolled(HeaderView& view, FaceId ingress, SimTime now,
                         ProcessResult& result);
  /// Relaxed-order schedule for the §2.2 parallel bit (any order is legal;
  /// we run the FN list back to front).
  void dispatch_relaxed(HeaderView& view, FaceId ingress, SimTime now,
                        ProcessResult& result);

  /// True when every router-side FN is order-independent and their target
  /// fields are pairwise disjoint — the safety condition for relaxing
  /// run_fn order under the parallel bit.
  [[nodiscard]] static bool relax_eligible(const HeaderView& view) noexcept;

  [[nodiscard]] OpModule* find_module(OpKey key) const noexcept;
  void refresh_module_table();

  RouterEnv env_;
  const OpRegistry* registry_;
  DispatchStrategy strategy_;
  ValidationMode validation_ = ValidationMode::kStrict;

  // Dense key->module table rebuilt when the registry epoch moves (the §5
  // runtime-upgrade path keeps working; steady-state lookups are one load).
  std::array<OpModule*, kModuleTableSize> module_table_{};
  std::uint64_t module_epoch_ = ~std::uint64_t{0};

  bool vector_dispatch_ = env_flag("DIP_VECTOR", true);
  bool prefetch_ = env_flag("DIP_PREFETCH", true);

  // Batch scratch, kept across bursts so the steady path never allocates.
  std::vector<HeaderView> views_;
  std::vector<std::uint8_t> bound_;

  /// Per-burst bump arena backing the wave scratch (work items, run states,
  /// crypto lanes); reset at every burst boundary, so warmed-up bursts
  /// never touch the heap.
  BurstArena arena_;

  /// Cached AES schedule for the F_parm wave (K = AES_{node_secret}(sid));
  /// rebuilt lazily when env_.node_secret changes. Router-local (one per
  /// pool worker), so caching here is safe where caching inside the
  /// registry-shared ParmOp module would race.
  std::optional<crypto::DrKey> drkey_;
  crypto::Block drkey_secret_{};
  // True while dispatching a packet the stats sampler picked: run_fn then
  // times module execution into env_.stats->fn_ns. Always false when stats
  // are disabled, so the per-FN cost is a single predictable branch.
  bool sample_this_packet_ = false;
};

}  // namespace dip::core
