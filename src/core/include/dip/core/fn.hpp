// Field Operation (FN) — the DIP protocol primitive (§2.1, §2.2).
//
// An FN is a triple carried in the packet header:
//   (field location, field length, operation key)
// The location/length address a bit range inside the packet's FN-locations
// block; the key selects an operation module. The key's highest bit is the
// *tag*: 1 = host-side operation (routers skip it), 0 = router-side.
//
// Wire encoding (6 bytes, big-endian): loc:16 | len:16 | tag:1 key:15.
// This 6-byte triple size is what makes the paper's Table 2 header sizes
// come out exactly (see DESIGN.md §3).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "dip/bytes/bitfield.hpp"

namespace dip::core {

/// Egress face / port identifier.
using FaceId = std::uint32_t;

/// Operation keys from Table 1 of the paper, plus the extension FNs the
/// paper discusses (F_pass in §2.4, telemetry in §5).
enum class OpKey : std::uint16_t {
  kMatch32 = 1,   ///< F_32_match  — 32-bit address LPM + forward
  kMatch128 = 2,  ///< F_128_match — 128-bit address LPM + forward
  kSource = 3,    ///< F_source    — carries the source address
  kFib = 4,       ///< F_FIB       — content-name FIB match (NDN interest)
  kPit = 5,       ///< F_PIT       — pending-interest match (NDN data)
  kParm = 6,      ///< F_parm      — derive dynamic key / load OPT parameters
  kMac = 7,       ///< F_MAC       — recompute authentication tags (2EM)
  kMark = 8,      ///< F_mark      — update the path-marking field (PVF)
  kVer = 9,       ///< F_ver       — destination verification (host side)
  kDag = 10,      ///< F_DAG       — parse the XIA directed acyclic graph
  kIntent = 11,   ///< F_intent    — handle the XIA intent node
  // Extensions beyond Table 1:
  kPass = 12,     ///< F_pass      — source-label verification (§2.4 security)
  kTelemetry = 13,///< F_int       — in-band telemetry collection (§5)
  kCc = 14,       ///< F_cc        — MAC-protected congestion-control tag
                  ///<               (the NetFence example of §2.1)
  kDps = 15,      ///< F_dps       — dynamic packet state for stateless
                  ///<               guaranteed services (§5, CSFQ-style)
  kHvf = 16,      ///< F_hvf       — EPIC-style per-hop verify-and-update
                  ///<               (the §1 EPIC example)
  kCustody = 17,  ///< F_custody   — DTN custody-transfer tag: request/accept
                  ///<               bits + custodian chain with a MAC over it
                  ///<               (store-and-forward, docs/DTN.md)
  kBundleFrag = 18,///< F_frag     — bundle fragment index/total for
                  ///<               store-and-forward reassembly (carried)
};

/// Table-1 notation for an operation key ("F_FIB"), or "F_?" if unknown.
[[nodiscard]] std::string_view op_key_name(OpKey key) noexcept;

/// One Field Operation as carried in the packet header.
struct FnTriple {
  static constexpr std::size_t kWireSize = 6;
  static constexpr std::uint16_t kHostTagBit = 0x8000;

  std::uint16_t field_loc = 0;  ///< bit offset into the FN-locations block
  std::uint16_t field_len = 0;  ///< field length in bits
  std::uint16_t op = 0;         ///< tag(1) | key(15)

  [[nodiscard]] constexpr bool host_tagged() const noexcept {
    return (op & kHostTagBit) != 0;
  }
  [[nodiscard]] constexpr OpKey key() const noexcept {
    return static_cast<OpKey>(op & ~kHostTagBit);
  }
  [[nodiscard]] constexpr bytes::BitRange range() const noexcept {
    return {field_loc, field_len};
  }

  /// Build a router-side FN.
  static constexpr FnTriple router(std::uint16_t loc, std::uint16_t len, OpKey key) {
    return {loc, len, static_cast<std::uint16_t>(key)};
  }
  /// Build a host-side FN (tag bit set; routers skip it, Algorithm 1 line 5).
  static constexpr FnTriple host(std::uint16_t loc, std::uint16_t len, OpKey key) {
    return {loc, len, static_cast<std::uint16_t>(static_cast<std::uint16_t>(key) |
                                                 kHostTagBit)};
  }

  friend constexpr bool operator==(const FnTriple&, const FnTriple&) = default;
};

/// Deployment metadata for an FN (used by bootstrap and the §2.4
/// heterogeneous-configuration rule).
struct FnInfo {
  OpKey key;
  std::string_view notation;        ///< Table-1 notation, e.g. "F_MAC"
  bool requires_full_path = false;  ///< if unsupported: error back to source
                                    ///< (true, e.g. path authentication) or
                                    ///< silently skippable (false)
  std::uint32_t base_cost = 1;      ///< abstract per-invocation cost units,
                                    ///< consumed from the packet's budget
  /// Whether executions of this FN commute with other order-independent FNs
  /// on disjoint fields (no OpScratch coupling, no cross-FN verdict or
  /// per-flow-state dependence). Gates the §2.2 modular-parallelism bit:
  /// the batch path may relax FN ordering only when every router-side FN in
  /// the packet is order-independent.
  bool order_independent = false;
  /// Whether executions of this FN on *different packets* commute: the
  /// module touches only its own packet's bytes/scratch/result, or shared
  /// state it treats as read-only/memoized (FIB walks, flow-cache fills —
  /// the cached verdict invariant makes hit/miss ordering unobservable in
  /// verdicts). Anything that mutates cross-packet state a later packet
  /// can observe (PIT, content store, DPS buckets, CC estimators) must
  /// stay in arrival order. This is what licenses the burst pipeline's
  /// module-major (wave) dispatch; distinct from order_independent, which
  /// is about FN order *within* one packet.
  bool burst_commutes = false;
};

/// Static registry of the FNs this prototype defines.
[[nodiscard]] std::optional<FnInfo> fn_info(OpKey key) noexcept;

/// The whole dense module table, in definition order — the introspection
/// seam for analysis layers (the PISA stage-budget compiler) that must bind
/// against exactly the table the router binds against, so the software and
/// hardware views of "what FNs exist" can never drift.
[[nodiscard]] std::span<const FnInfo> fn_table() noexcept;

/// Dense burst_commutes lookup — the wave-dispatch classification hot path
/// (one table load instead of a linear fn_info scan). False for any key
/// outside the static table: unknown modules are assumed stateful.
[[nodiscard]] bool op_burst_commutes(OpKey key) noexcept;

}  // namespace dip::core
