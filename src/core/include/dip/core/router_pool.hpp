// RouterPool — flow-affine sharding of the DIP data plane across workers.
//
// N worker threads each own a full Router (private PIT, content store, flow
// cache, OPT state) while sharing the read-mostly OpRegistry and route
// tables (RouterEnv's shared_ptr FIBs). Ingress packets are RSS-hashed on
// the first router-side FN's sliced field — the destination address for
// DIP-32/128, the name code for NDN interests AND data, the packet's flow
// identity in general — so every packet of a flow lands on the same worker.
// That affinity is what keeps stateful FNs correct without locks: the PIT
// entry an interest created is always on the worker its data packet hashes
// to, and OPT's per-flow chain state never migrates.
//
// Each worker consumes its SPSC ring in bursts of up to `max_batch` and
// runs Router::process_batch run-to-completion. The submit side is single
// threaded (one dispatcher, as one NIC rx queue would be).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "dip/core/ring.hpp"
#include "dip/core/router.hpp"
#include "dip/telemetry/counters.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::core {

/// What submit() does when the target worker's ring is full.
///   * kBlock — spin/yield until a slot frees (historical behaviour; the
///     dispatcher absorbs backpressure).
///   * kShed  — drop the packet immediately with a tagged verdict
///     (Action::kDrop, DropReason::kOverloadShed) delivered through the
///     completion callback, and count it in the shed ledger. A router that
///     sheds visibly beats one that stalls silently (docs/FAULTS.md).
enum class OverloadPolicy : std::uint8_t { kBlock, kShed };

struct RouterPoolConfig {
  /// Worker count; 0 = one per hardware thread.
  std::size_t workers = 1;
  /// Per-worker ingress ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 1024;
  /// Max packets a worker pulls per process_batch call.
  std::size_t max_batch = 32;
  /// Don't wake a parked worker until this many packets queue in its ring
  /// (drain() always flushes the tail). 0 = max_batch. Larger values trade
  /// latency for fewer wakeups — a throughput-oriented dispatcher that
  /// submits a chunk and drains can set this to the chunk size.
  std::size_t wake_batch = 0;
  DispatchStrategy strategy = DispatchStrategy::kLoop;
  OverloadPolicy overload = OverloadPolicy::kBlock;
};

class RouterPool {
 public:
  /// One queued unit of ingress work.
  struct Item {
    std::vector<std::uint8_t> packet;
    FaceId ingress = 0;
    SimTime now = 0;
  };

  /// Invoked on the worker's thread after each packet completes.
  using Completion =
      std::function<void(std::size_t worker, Item& item, ProcessResult& result)>;

  /// `env_factory(i)` builds worker i's environment (share FIBs across
  /// workers by handing each env the same shared_ptr tables).
  RouterPool(const OpRegistry* registry,
             const std::function<RouterEnv(std::size_t)>& env_factory,
             RouterPoolConfig config = {}, Completion on_complete = {});
  ~RouterPool();

  RouterPool(const RouterPool&) = delete;
  RouterPool& operator=(const RouterPool&) = delete;

  /// Enqueue one packet (single dispatcher thread only). When the target
  /// worker's ring is full: blocks under OverloadPolicy::kBlock, sheds
  /// under kShed. Returns the worker index chosen (also for shed packets —
  /// use try_submit to observe the shed).
  std::size_t submit(std::vector<std::uint8_t> packet, FaceId ingress, SimTime now);

  /// Non-blocking submit (single dispatcher thread only). Returns the
  /// worker index, or nullopt when the target ring was full and the packet
  /// was shed: the completion callback fires immediately *on the dispatcher
  /// thread* with DropReason::kOverloadShed and the shed ledger advances.
  std::optional<std::size_t> try_submit(std::vector<std::uint8_t> packet,
                                        FaceId ingress, SimTime now);

  /// Packets shed at ingress (all workers).
  [[nodiscard]] std::uint64_t shed_total() const noexcept;

  /// The worker a packet would shard to: RSS hash of the first router-side
  /// FN's sliced field (whole-packet hash when no usable field exists).
  [[nodiscard]] static std::size_t shard_of(std::span<const std::uint8_t> packet,
                                            std::size_t workers) noexcept;

  /// Block until every submitted packet has completed.
  void drain();

  /// Drain, then stop and join all workers. Idempotent; the destructor
  /// calls it.
  void stop();

  [[nodiscard]] std::size_t workers() const noexcept { return workers_.size(); }
  [[nodiscard]] Router& router(std::size_t worker) { return *workers_[worker]->router; }

  /// Aggregated snapshot of every worker's counters (safe while running).
  [[nodiscard]] telemetry::CounterSnapshot counters() const;

  /// A (possibly stale) occupancy estimate of one worker's ingress ring.
  [[nodiscard]] std::size_t queue_depth(std::size_t worker) const noexcept {
    return workers_[worker]->ring.size();
  }

  /// Render the pool's stats page: fleet counters, merged latency
  /// histograms (workers with RouterEnv::stats installed), then per-worker
  /// counter series (`worker` label) and queue depths. Safe while running;
  /// series catalogue in docs/OBSERVABILITY.md.
  void write_stats(telemetry::StatsWriter& w) const;

  /// write_stats as a StatsRegistry section named "router_pool".
  void register_stats(telemetry::StatsRegistry& registry) const;

  /// One-call text exposition of write_stats().
  [[nodiscard]] std::string dump_stats() const;

 private:
  struct Worker {
    explicit Worker(std::size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing<Item> ring;
    std::unique_ptr<Router> router;
    std::size_t index = 0;
    std::size_t wake_threshold = 1;
    std::uint64_t submitted = 0;  ///< dispatcher-side only
    telemetry::RelaxedCounter shed;  ///< ingress sheds (dispatcher bumps)
    std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> parked{false};
    std::mutex m;
    std::condition_variable cv;
    std::thread thread;
  };

  void worker_main(Worker& w);
  static void wake(Worker& w);
  /// Count + report one ingress shed (dispatcher thread).
  void shed(std::size_t worker, Item& item);

  RouterPoolConfig config_;
  std::atomic<bool> running_{true};
  std::vector<std::unique_ptr<Worker>> workers_;
  Completion on_complete_;
};

}  // namespace dip::core
