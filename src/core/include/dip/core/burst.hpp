// Zero-allocation burst machinery (DESIGN.md §10).
//
// Two pieces keep the batch fast path off the heap in steady state:
//
//  * BurstArena — a bump allocator the router resets at every burst
//    boundary. Scratch that lives exactly one burst (wave work items,
//    per-packet budgets/scratch, MAC batch staging) comes from here.
//    Storage is a chain of chunks, so growing NEVER moves memory a caller
//    already holds; after the first few bursts the chunk chain covers the
//    high-water mark and reset() is the only thing that ever runs.
//
//  * EgressList — the ProcessResult egress container: a small-inline
//    vector (kInlineFaces faces, the common unicast/NDN-fan-out sizes)
//    with a *retained-capacity* heap spill. Results outlive the burst
//    that produced them (callers keep result buffers across bursts), so
//    the spill cannot live in the arena; retaining its capacity across
//    reset()/clear() gives the same steady-state-zero-allocation
//    property by amortization.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <type_traits>
#include <vector>

#include "dip/core/fn.hpp"

namespace dip::core {

/// Per-burst bump allocator. Pointers stay valid until reset(); reset()
/// frees nothing, it just rewinds, so a warmed-up arena never touches the
/// heap again.
class BurstArena {
 public:
  BurstArena() = default;

  /// Rewind to empty. Every pointer handed out since the previous reset
  /// is dead after this. Capacity (the chunk chain) is retained.
  void reset() noexcept {
    chunk_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Allocate space for `n` objects of trivially-destructible type T
  /// (nothing is ever destroyed; the arena is rewound wholesale).
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is rewound, never destroyed");
    return reinterpret_cast<T*>(bump(n * sizeof(T), alignof(T)));
  }

  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  /// Largest used() ever observed — the dip_arena_high_water gauge.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  /// Total bytes owned by the chunk chain.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  static constexpr std::size_t kMinChunk = 4096;

  struct Chunk {
    std::unique_ptr<std::uint8_t[]> bytes;
    std::size_t size = 0;
  };

  std::uint8_t* bump(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (chunk_ < chunks_.size()) {
        Chunk& c = chunks_[chunk_];
        const auto base = reinterpret_cast<std::uintptr_t>(c.bytes.get());
        const std::size_t aligned =
            ((base + offset_ + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1)) -
            base;
        if (aligned + bytes <= c.size) {
          std::uint8_t* p = c.bytes.get() + aligned;
          used_ += (aligned - offset_) + bytes;
          if (used_ > high_water_) high_water_ = used_;
          offset_ = aligned + bytes;
          return p;
        }
        // This chunk is full: move on (its tail counts as used so the
        // high-water gauge reflects real demand).
        used_ += c.size - offset_;
        ++chunk_;
        offset_ = 0;
        continue;
      }
      // Out of chunks: grow the chain. Doubling against total capacity
      // keeps the chain short, so warmup converges in a handful of bursts.
      std::size_t size = kMinChunk;
      if (size < bytes + align) size = bytes + align;
      if (size < capacity_) size = capacity_;
      chunks_.push_back({std::make_unique<std::uint8_t[]>(size), size});
      capacity_ += size;
    }
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;
  std::size_t offset_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t capacity_ = 0;
};

/// Small-inline egress face list with retained-capacity heap spill.
/// Replaces std::vector<FaceId> in ProcessResult: the common verdicts
/// (unicast, small NDN fan-out) never leave the inline array, and a slot
/// that did spill keeps its buffer across clear(), so recycled result
/// buffers stop allocating once warmed up.
class EgressList {
 public:
  static constexpr std::uint32_t kInlineFaces = 4;

  using value_type = FaceId;
  using iterator = FaceId*;
  using const_iterator = const FaceId*;

  EgressList() noexcept = default;
  EgressList(const EgressList& o) { assign(o.begin(), o.end()); }
  EgressList(EgressList&& o) noexcept { steal(o); }
  EgressList(std::initializer_list<FaceId> il) { assign(il.begin(), il.end()); }

  EgressList& operator=(const EgressList& o) {
    if (this != &o) assign(o.begin(), o.end());
    return *this;
  }
  EgressList& operator=(EgressList&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  EgressList& operator=(std::initializer_list<FaceId> il) {
    assign(il.begin(), il.end());
    return *this;
  }

  ~EgressList() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Heap capacity is retained: a recycled slot never re-allocates for a
  /// burst no larger than its past peak.
  void clear() noexcept { size_ = 0; }

  [[nodiscard]] FaceId* data() noexcept {
    return cap_ == kInlineFaces ? inline_ : heap_;
  }
  [[nodiscard]] const FaceId* data() const noexcept {
    return cap_ == kInlineFaces ? inline_ : heap_;
  }
  [[nodiscard]] iterator begin() noexcept { return data(); }
  [[nodiscard]] iterator end() noexcept { return data() + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data(); }
  [[nodiscard]] const_iterator end() const noexcept { return data() + size_; }
  [[nodiscard]] FaceId& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const FaceId& operator[](std::size_t i) const noexcept {
    return data()[i];
  }

  void push_back(FaceId face) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = face;
  }

  void assign(std::size_t count, FaceId face) {
    if (count > cap_) grow(count);
    FaceId* d = data();
    for (std::size_t i = 0; i < count; ++i) d[i] = face;
    size_ = static_cast<std::uint32_t>(count);
  }

  template <typename It>
  void assign(It first, It last) {
    const auto count = static_cast<std::size_t>(std::distance(first, last));
    if (count > cap_) grow(count);
    FaceId* d = data();
    for (std::size_t i = 0; first != last; ++first, ++i) d[i] = *first;
    size_ = static_cast<std::uint32_t>(count);
  }

  /// Interop with the many call sites (tests, refmodel comparison) that
  /// speak std::vector.
  operator std::vector<FaceId>() const { return {begin(), end()}; }

  friend bool operator==(const EgressList& a, const EgressList& b) noexcept {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(FaceId)) == 0;
  }
  friend bool operator==(const EgressList& a, const std::vector<FaceId>& b) noexcept {
    return a.size_ == b.size() &&
           std::memcmp(a.data(), b.data(), a.size_ * sizeof(FaceId)) == 0;
  }
  friend bool operator==(const std::vector<FaceId>& a, const EgressList& b) noexcept {
    return b == a;
  }

 private:
  void grow(std::size_t want) {
    std::size_t cap = cap_ * 2;
    if (cap < want) cap = want;
    auto* fresh = new FaceId[cap];
    std::memcpy(fresh, data(), size_ * sizeof(FaceId));
    release();
    heap_ = fresh;
    cap_ = static_cast<std::uint32_t>(cap);
  }

  void release() noexcept {
    if (cap_ != kInlineFaces) delete[] heap_;
  }

  void steal(EgressList& o) noexcept {
    size_ = o.size_;
    cap_ = o.cap_;
    if (o.cap_ == kInlineFaces) {
      std::memcpy(inline_, o.inline_, sizeof(inline_));
    } else {
      heap_ = o.heap_;
      o.cap_ = kInlineFaces;
    }
    o.size_ = 0;
  }

  union {
    FaceId inline_[kInlineFaces];
    FaceId* heap_;
  };
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineFaces;
};

}  // namespace dip::core
