// Operation modules — the pluggable halves of Field Operations (§2.1).
//
// "The operation is a functional module that takes the field as input and
// performs pre-defined calculations or matches, and then modifies the packet
// field or determines the packet fate."
//
// A module receives an OpContext: the in-packet FN-locations block, the
// target bit range its triple addresses, and the node environment. Modules
// mutate the block in place (tag updates) and/or set the verdict.
#pragma once

#include <cstdint>
#include <span>

#include <optional>

#include "dip/bytes/bitfield.hpp"
#include "dip/bytes/expected.hpp"
#include "dip/bytes/time.hpp"
#include "dip/crypto/aes.hpp"
#include "dip/core/env.hpp"
#include "dip/core/verdict.hpp"

namespace dip::core {

/// Per-packet scratch shared by the FNs of one packet. FNs compose through
/// it: F_parm derives the dynamic key that F_MAC consumes, F_MAC leaves the
/// tag that F_mark writes back (§3, OPT). Cleared for every packet.
struct OpScratch {
  std::optional<crypto::Block> dynamic_key;  ///< set by F_parm
  std::optional<crypto::Block> mac;          ///< set by F_MAC
};

struct OpContext {
  /// The whole FN-locations block, aliasing the packet buffer (writes are
  /// visible on the wire immediately).
  std::span<std::uint8_t> locations;
  /// The target field this FN addresses (validated to fit `locations`).
  bytes::BitRange field;
  /// The full triple (modules rarely need more than `field`).
  FnTriple fn;
  /// Packet payload after the DIP header (read-only; F_PIT caches it).
  std::span<const std::uint8_t> payload;
  FaceId ingress = 0;
  SimTime now = 0;
  RouterEnv* env = nullptr;
  ProcessResult* result = nullptr;
  OpScratch* scratch = nullptr;

  /// Byte view of the target field; empty span if the field is not
  /// byte-aligned (use extract/inject then).
  [[nodiscard]] std::span<std::uint8_t> target_bytes() const noexcept {
    if (!field.byte_aligned()) return {};
    return locations.subspan(field.bit_offset / 8, field.bit_length / 8);
  }

  /// The target as an unsigned integer (fields up to 64 bits).
  [[nodiscard]] bytes::Result<std::uint64_t> target_uint() const noexcept {
    return bytes::extract_uint(locations, field);
  }
};

class OpModule {
 public:
  virtual ~OpModule() = default;

  /// The Table-1 operation key this module implements.
  [[nodiscard]] virtual OpKey key() const noexcept = 0;

  /// Abstract cost charged against the packet's processing budget (§2.4).
  [[nodiscard]] virtual std::uint32_t cost() const noexcept { return 1; }

  /// Execute on one packet. Structural failures return an error (the router
  /// drops as malformed); protocol decisions (no route, PIT miss, bad tag)
  /// are expressed through ctx.result.
  [[nodiscard]] virtual bytes::Status execute(OpContext& ctx) = 0;
};

}  // namespace dip::core
