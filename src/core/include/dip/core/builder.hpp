// Host-side DIP header construction (§2.3 "Host Constructions").
//
// "Before sending the data packets, the host needs to formulate appropriate
// FNs in the packet header considering both the required network services
// and the supported FNs."
//
// HeaderBuilder appends fields to the FN-locations block and FN triples that
// reference them; protocol composers (core/ip.hpp, ndn, opt, xia) are thin
// wrappers over it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/core/header.hpp"

namespace dip::core {

class HeaderBuilder {
 public:
  HeaderBuilder& next_header(NextHeader nh) {
    header_.basic.next_header = static_cast<std::uint8_t>(nh);
    return *this;
  }

  HeaderBuilder& hop_limit(std::uint8_t hops) {
    header_.basic.hop_limit = hops;
    return *this;
  }

  HeaderBuilder& parallel(bool flag) {
    header_.basic.parallel = flag;
    return *this;
  }

  /// Append `field` to the locations block; returns its bit offset.
  std::uint16_t add_location(std::span<const std::uint8_t> field) {
    const auto offset = static_cast<std::uint16_t>(header_.locations.size() * 8);
    header_.locations.insert(header_.locations.end(), field.begin(), field.end());
    return offset;
  }

  /// Append `n` zero bytes to the locations block; returns their bit offset.
  std::uint16_t add_zero_location(std::size_t n) {
    const auto offset = static_cast<std::uint16_t>(header_.locations.size() * 8);
    header_.locations.insert(header_.locations.end(), n, 0);
    return offset;
  }

  /// Add an FN referencing an existing location range.
  HeaderBuilder& add_fn(FnTriple fn) {
    header_.fns.push_back(fn);
    return *this;
  }

  /// Append `field` and a router-side FN covering exactly that field.
  HeaderBuilder& add_router_fn(OpKey key, std::span<const std::uint8_t> field) {
    const std::uint16_t loc = add_location(field);
    header_.fns.push_back(
        FnTriple::router(loc, static_cast<std::uint16_t>(field.size() * 8), key));
    return *this;
  }

  /// Validate (fn count, location bounds, 10-bit length) and return the header.
  [[nodiscard]] bytes::Result<DipHeader> build() const;

 private:
  DipHeader header_;
};

}  // namespace dip::core
