// Single-producer/single-consumer ring buffer.
//
// The ingress queue between the RouterPool's dispatcher thread and one
// worker: bounded, allocation-free after construction, and lock-free on the
// fast path (one release store per side). Classic Lamport queue with
// cached indices so each side usually touches only its own cache line.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace dip::core {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2 slots).
  explicit SpscRing(std::size_t capacity) {
    std::size_t p = 2;
    while (p < capacity) p <<= 1;
    slots_.resize(p);
    mask_ = p - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false when full.
  [[nodiscard]] bool try_push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pop up to out.size() items; returns the count. One
  /// acquire load amortized over the whole burst.
  [[nodiscard]] std::size_t pop_bulk(std::span<T> out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t available = tail_cache_ - head;
    if (available == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      available = tail_cache_ - head;
      if (available == 0) return 0;
    }
    const std::size_t n = available < out.size() ? available : out.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Either side: a (possibly stale) emptiness check.
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Either side: a (possibly stale) occupancy estimate.
  [[nodiscard]] std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer index
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer index
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head_
};

}  // namespace dip::core
