// Exact-match flow cache in front of F_32_match / F_128_match.
//
// LPM dominates per-packet cost once FIBs grow (CRAM's observation), but
// real traffic is heavy-tailed: a small set of destination addresses covers
// most packets. The cache memoizes the FIB's egress verdict for a sliced
// match field so repeat flows skip the trie walk entirely.
//
// Design:
//   * fixed-size, open-addressed (linear probe, bounded probe run) — no
//     allocation on the hot path, cache-line friendly;
//   * keyed by the FN's sliced field bytes (4 for F_32_match, 16 for
//     F_128_match) plus the field width, so DIP-32 and DIP-128 flows never
//     alias;
//   * generation-stamped: every entry records the FIB generation it was
//     filled under (fib::LpmTable::generation()). Any route change bumps
//     the generation, so stale entries die on their next probe — route
//     updates need no cache flush;
//   * negative caching: a kNoRoute verdict is memoized too (a flood of
//     unroutable packets would otherwise bypass the cache entirely).
//
// One cache per router/worker; it is deliberately NOT thread-safe. Sharding
// in RouterPool gives every worker its own cache (and flow affinity makes
// per-worker caches as effective as a shared one).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "dip/core/fn.hpp"

namespace dip::core {

class FlowCache {
 public:
  static constexpr std::size_t kMaxKeyBytes = 16;
  static constexpr std::size_t kProbeLimit = 8;
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The memoized verdict of one match-FN execution.
  struct Verdict {
    FaceId egress = 0;
    bool no_route = false;  ///< negative entry: the FIB had no route
  };

  /// `capacity` is rounded up to a power of two (minimum 16 slots).
  explicit FlowCache(std::size_t capacity = kDefaultCapacity);

  /// Probe for `key` (the sliced match field) filled under `generation`.
  /// Returns nullptr on miss or stale hit.
  [[nodiscard]] const Verdict* find(std::span<const std::uint8_t> key,
                                    std::uint64_t generation) noexcept;

  /// Hash a key exactly as find/insert do (never 0). The burst pipeline
  /// hashes a whole wave up front so slot prefetches overlap the probes.
  [[nodiscard]] static std::uint64_t hash(std::span<const std::uint8_t> key) noexcept {
    return hash_key(key);
  }

  /// Prefetch the slot a hash-`h` probe run starts at.
  void prefetch(std::uint64_t h) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[static_cast<std::size_t>(h) & mask_], 0, 3);
#else
    (void)h;
#endif
  }

  /// find() with the hash already computed (h must equal hash(key)).
  /// Inline: this is the per-packet probe on the burst fast path.
  [[nodiscard]] const Verdict* find_hashed(std::span<const std::uint8_t> key,
                                           std::uint64_t h,
                                           std::uint64_t generation) noexcept {
    std::size_t at = static_cast<std::size_t>(h) & mask_;
    for (std::size_t probe = 0; probe < kProbeLimit; ++probe, at = (at + 1) & mask_) {
      Slot& slot = slots_[at];
      if (slot.hash == 0) return nullptr;  // empty slot ends the probe run
      if (slot.hash != h || !key_equals(slot, key)) continue;
      if (slot.generation != generation) {
        // Route table changed since this verdict was memoized: the entry
        // is dead. Erase it so the slot can be refilled (and so a
        // subsequent insert of the same key does not create a duplicate
        // further along the run).
        slot.hash = 0;
        --entries_;
        return nullptr;
      }
      return &slot.verdict;
    }
    return nullptr;
  }

  /// Memoize a verdict computed under `generation`. Overwrites the first
  /// empty/stale slot in the probe run, else evicts the last probed slot.
  void insert(std::span<const std::uint8_t> key, std::uint64_t generation,
              Verdict verdict) noexcept;

  /// Drop every entry (operator action; generation stamping makes this
  /// unnecessary for route changes).
  void clear() noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

  /// Whether a sliced field of `len_bytes` is cacheable (match-FN widths).
  [[nodiscard]] static constexpr bool cacheable_len(std::size_t len_bytes) noexcept {
    return len_bytes == 4 || len_bytes == 16;
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;        ///< full hash; 0 means "empty"
    std::uint64_t generation = 0;  ///< FIB generation the verdict was filled under
    Verdict verdict{};
    std::uint8_t key_len = 0;
    std::array<std::uint8_t, kMaxKeyBytes> key{};
  };

  [[nodiscard]] static std::uint64_t hash_key(
      std::span<const std::uint8_t> key) noexcept;

  [[nodiscard]] bool key_equals(const Slot& slot,
                                std::span<const std::uint8_t> key) const noexcept {
    return slot.key_len == key.size() &&
           std::memcmp(slot.key.data(), key.data(), key.size()) == 0;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t entries_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dip::core
