#include "dip/core/verdict.hpp"

namespace dip::core {

std::string_view to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kNoRoute: return "no-route";
    case DropReason::kPitMiss: return "pit-miss";
    case DropReason::kHopLimitExceeded: return "hop-limit-exceeded";
    case DropReason::kAuthFailed: return "auth-failed";
    case DropReason::kBudgetExhausted: return "budget-exhausted";
    case DropReason::kUnsupportedFn: return "unsupported-fn";
    case DropReason::kMalformed: return "malformed";
    case DropReason::kDuplicate: return "duplicate";
    case DropReason::kPolicyDenied: return "policy-denied";
    case DropReason::kAggregated: return "aggregated";
    case DropReason::kRateExceeded: return "rate-exceeded";
    case DropReason::kOverloadShed: return "overload-shed";
    case DropReason::kCorruptQuarantine: return "corrupt-quarantine";
  }
  return "unknown";
}

}  // namespace dip::core
