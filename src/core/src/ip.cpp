#include "dip/core/ip.hpp"

namespace dip::core {

bytes::Status Match32Op::execute(OpContext& ctx) {
  if (ctx.field.bit_length != 32) return bytes::Unexpected{bytes::Error::kMalformed};
  const fib::Ipv4Lpm* fib = ctx.env->fib32_view();
  if (fib == nullptr) {
    ctx.result->drop(DropReason::kNoRoute);
    return {};
  }
  const auto value = ctx.target_uint();
  if (!value) return bytes::Unexpected{value.error()};

  const auto nh = fib->lookup(
      fib::ipv4_from_u32(static_cast<std::uint32_t>(*value)));
  if (!nh) {
    ctx.result->drop(DropReason::kNoRoute);
    return {};
  }
  ctx.result->egress.assign(1, *nh);
  return {};
}

bytes::Status Match128Op::execute(OpContext& ctx) {
  if (ctx.field.bit_length != 128) return bytes::Unexpected{bytes::Error::kMalformed};
  const fib::Ipv6Lpm* fib = ctx.env->fib128_view();
  if (fib == nullptr) {
    ctx.result->drop(DropReason::kNoRoute);
    return {};
  }

  fib::Ipv6Addr addr;
  if (const auto target = ctx.target_bytes(); !target.empty()) {
    std::copy(target.begin(), target.end(), addr.bytes.begin());
  } else {
    // Non-byte-aligned 128-bit field: take the slow extraction path.
    if (auto st = bytes::extract_bits(ctx.locations, ctx.field, addr.bytes); !st) {
      return st;
    }
  }

  const auto nh = fib->lookup(addr);
  if (!nh) {
    ctx.result->drop(DropReason::kNoRoute);
    return {};
  }
  ctx.result->egress.assign(1, *nh);
  return {};
}

bytes::Result<DipHeader> make_dip32_header(const fib::Ipv4Addr& dst,
                                           const fib::Ipv4Addr& src, NextHeader next,
                                           std::uint8_t hop_limit) {
  HeaderBuilder b;
  b.next_header(next).hop_limit(hop_limit);
  b.add_router_fn(OpKey::kMatch32, dst.bytes);   // (loc 0,  len 32, key 1)
  b.add_router_fn(OpKey::kSource, src.bytes);    // (loc 32, len 32, key 3)
  return b.build();
}

bytes::Result<DipHeader> make_dip128_header(const fib::Ipv6Addr& dst,
                                            const fib::Ipv6Addr& src, NextHeader next,
                                            std::uint8_t hop_limit) {
  HeaderBuilder b;
  b.next_header(next).hop_limit(hop_limit);
  b.add_router_fn(OpKey::kMatch128, dst.bytes);  // (loc 0,   len 128, key 2)
  b.add_router_fn(OpKey::kSource, src.bytes);    // (loc 128, len 128, key 3)
  return b.build();
}

std::optional<bytes::BitRange> find_source_field(std::span<const FnTriple> fns) noexcept {
  for (const FnTriple& fn : fns) {
    if (fn.key() == OpKey::kSource) return fn.range();
  }
  return std::nullopt;
}

}  // namespace dip::core
