#include "dip/core/registry.hpp"

namespace dip::core {

void OpRegistry::add(std::unique_ptr<OpModule> module) {
  const auto key = static_cast<std::uint16_t>(module->key());
  modules_[key] = std::move(module);
  ++epoch_;
}

std::unique_ptr<OpModule> OpRegistry::remove(OpKey key) {
  const auto it = modules_.find(static_cast<std::uint16_t>(key));
  if (it == modules_.end()) return nullptr;
  std::unique_ptr<OpModule> out = std::move(it->second);
  modules_.erase(it);
  ++epoch_;
  return out;
}

OpModule* OpRegistry::find(OpKey key) const noexcept {
  const auto it = modules_.find(static_cast<std::uint16_t>(key));
  return it == modules_.end() ? nullptr : it->second.get();
}

std::vector<OpKey> OpRegistry::keys() const {
  std::vector<OpKey> out;
  out.reserve(modules_.size());
  for (const auto& [key, module] : modules_) out.push_back(static_cast<OpKey>(key));
  return out;
}

}  // namespace dip::core
