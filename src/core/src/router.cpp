#include "dip/core/router.hpp"

namespace dip::core {

ProcessResult Router::process(std::span<std::uint8_t> packet, FaceId ingress,
                              SimTime now) {
  ++env_.counters.processed;
  ProcessResult result;

  auto view = HeaderView::bind(packet);
  if (!view) {
    result.drop(DropReason::kMalformed);
    ++env_.counters.dropped;
    return result;
  }
  if (view->fns().size() > env_.limits.max_fn_per_packet) {
    result.drop(DropReason::kBudgetExhausted);
    ++env_.counters.dropped;
    return result;
  }
  if (!view->decrement_hop_limit()) {
    result.drop(DropReason::kHopLimitExceeded);
    ++env_.counters.dropped;
    return result;
  }

  if (strategy_ == DispatchStrategy::kLoop) {
    dispatch_loop(*view, ingress, now, result);
  } else {
    dispatch_unrolled(*view, ingress, now, result);
  }

  // No match FN decided an egress: fall back to the wired default port
  // (the paper's one-hop eval setup), else drop.
  if (result.action == Action::kForward && result.egress.empty()) {
    if (env_.default_egress) {
      result.egress.push_back(*env_.default_egress);
    } else {
      result.drop(DropReason::kNoRoute);
    }
  }

  switch (result.action) {
    case Action::kForward: ++env_.counters.forwarded; break;
    case Action::kDrop: ++env_.counters.dropped; break;
    case Action::kError: ++env_.counters.errors; break;
  }
  return result;
}

bool Router::run_fn(const FnTriple& fn, HeaderView& view, FaceId ingress, SimTime now,
                    FnRunState& state, ProcessResult& result) {
  // Algorithm 1, line 5: host-tagged operations are skipped by routers.
  if (fn.host_tagged()) {
    ++env_.counters.fn_skipped_host;
    return true;
  }

  OpModule* module = registry_ ? registry_->find(fn.key()) : nullptr;
  if (module == nullptr || !env_.supports(fn.key())) {
    // §2.4 heterogeneous configuration: a path-critical FN that this node
    // cannot honor triggers an ICMP-like notification; others are skipped.
    const auto info = fn_info(fn.key());
    if (info && info->requires_full_path) {
      result.fail_unsupported(fn.key());
      return false;
    }
    ++env_.counters.fn_skipped_optional;
    return true;
  }

  const std::uint32_t cost = module->cost();
  if (cost > state.budget) {
    // §2.4: hard per-packet processing limit.
    result.drop(DropReason::kBudgetExhausted);
    return false;
  }
  state.budget -= cost;

  OpContext ctx;
  ctx.locations = view.locations();
  ctx.field = fn.range();
  ctx.fn = fn;
  ctx.payload = view.payload();
  ctx.ingress = ingress;
  ctx.now = now;
  ctx.env = &env_;
  ctx.result = &result;
  ctx.scratch = &state.scratch;

  ++env_.counters.fn_executed;
  ++env_.counters.fn_by_key[static_cast<std::size_t>(fn.key()) %
                            env_.counters.fn_by_key.size()];
  if (const auto st = module->execute(ctx); !st) {
    result.drop(DropReason::kMalformed);
    return false;
  }
  return result.action == Action::kForward;
}

void Router::dispatch_loop(HeaderView& view, FaceId ingress, SimTime now,
                           ProcessResult& result) {
  FnRunState state{env_.limits.per_packet_budget, {}};
  for (const FnTriple& fn : view.fns()) {
    if (!run_fn(fn, view, ingress, now, state, result)) return;
  }
}

void Router::dispatch_unrolled(HeaderView& view, FaceId ingress, SimTime now,
                               ProcessResult& result) {
  // Mirrors the Tofino compromise: a fixed ladder testing FN_Num, with the
  // per-position FN handling fully written out (no data-dependent loop).
  // Functionally identical to dispatch_loop for fn_num <= kMaxFns.
  FnRunState state{env_.limits.per_packet_budget, {}};
  const auto fns = view.fns();
  const std::size_t n = fns.size();

#define DIP_STAGE(i)                                                            \
  do {                                                                          \
    if (n <= (i)) return;                                                       \
    if (!run_fn(fns[(i)], view, ingress, now, state, result)) return;           \
  } while (0)

  DIP_STAGE(0);
  DIP_STAGE(1);
  DIP_STAGE(2);
  DIP_STAGE(3);
  DIP_STAGE(4);
  DIP_STAGE(5);
  DIP_STAGE(6);
  DIP_STAGE(7);
  DIP_STAGE(8);
  DIP_STAGE(9);
  DIP_STAGE(10);
  DIP_STAGE(11);
  DIP_STAGE(12);
  DIP_STAGE(13);
  DIP_STAGE(14);
  DIP_STAGE(15);
#undef DIP_STAGE
}

}  // namespace dip::core
