#include "dip/core/router.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "dip/crypto/mac.hpp"

// Read-intent prefetch hint; no-op off GCC/Clang.
#if defined(__GNUC__) || defined(__clang__)
#define DIP_PREFETCH_R(p) __builtin_prefetch((p), 0, 3)
#else
#define DIP_PREFETCH_R(p) ((void)0)
#endif

namespace dip::core {

bool Router::env_flag(const char* name, bool dflt) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return dflt;
  return !(v[0] == '0' && v[1] == '\0');
}

ProcessResult Router::process(std::span<std::uint8_t> packet, FaceId ingress,
                              SimTime now) {
  const PacketRef ref(packet);
  ProcessResult result;
  process_batch({&ref, 1}, ingress, now, {&result, 1});
  return result;
}

std::vector<ProcessResult> Router::process_batch(std::span<const PacketRef> packets,
                                                 FaceId ingress, SimTime now) {
  std::vector<ProcessResult> results(packets.size());
  process_batch(packets, ingress, now, results);
  return results;
}

void Router::process_batch(std::span<const PacketRef> packets, FaceId ingress,
                           SimTime now, std::span<ProcessResult> results) {
  assert(results.size() >= packets.size());
  ++env_.counters.batches;
  if (registry_ != nullptr && registry_->epoch() != module_epoch_) {
    refresh_module_table();
  }

  const std::size_t n = packets.size();
  views_.resize(n);
  bound_.resize(n);  // every slot is written by phase 1 below

  // Phase timing is burst-sampled: the three histograms cost six clock
  // reads per *sampled* burst, nothing on the rest.
  telemetry::RouterStats* stats = env_.stats.get();
  const bool burst_timed = stats != nullptr && stats->burst_sampler.tick();
  std::uint64_t t_phase = burst_timed ? telemetry::now_ns() : 0;

  if (stats != nullptr) stats->burst_packets += n;

  // Waves pay per-burst setup (classification, group lists) that a batch
  // of one cannot amortize, so singletons keep the per-packet engine; work
  // items index packets in 16 bits, bounding the burst at 64k.
  const bool waves_allowed = vector_dispatch_ &&
                             strategy_ == DispatchStrategy::kLoop && n >= 2 &&
                             n <= 0xFFFF;

  // Uniform-program detection rides phase 1: line-rate traffic is
  // overwhelmingly homogeneous (every packet carries the same FN triples;
  // only the field *contents* differ flow to flow), and spotting that here
  // lets dispatch_burst classify the program once for the whole burst.
  // `exemplar` is the first bound packet; `uniform` stays true while every
  // later bound packet matches its program.
  std::size_t exemplar = n;
  bool uniform = waves_allowed;
  const auto track_uniform = [&](std::size_t i) {
    if (!uniform) return;
    if (exemplar == n) {
      exemplar = i;
      return;
    }
    const auto a = views_[exemplar].fns();
    const auto b = views_[i].fns();
    if (b.size() != a.size() ||
        views_[i].basic().parallel != views_[exemplar].basic().parallel) {
      uniform = false;
      return;
    }
    for (std::size_t f = 0; f < a.size(); ++f) {
      if (a[f] != b[f]) {
        uniform = false;
        return;
      }
    }
  };

  // Phase 1: bind every header in place (bind_into writes the batch
  // scratch slot directly — no by-value HeaderView copy), then the
  // structural checks + hop-limit decrement. Headers are prefetched one
  // packet ahead: the basic header and FN triples of packet i+1 land in L1
  // while packet i decodes. Untimed bursts take one merged pass; timed
  // bursts split it so the bind/validate histograms stay separable.
  std::uint64_t dropped = 0;
  const bool lenient = validation_ == ValidationMode::kLenient;
  if (!burst_timed) {
    for (std::size_t i = 0; i < n; ++i) {
      if (prefetch_ && i + 1 < n && !packets[i + 1].bytes.empty()) {
        DIP_PREFETCH_R(packets[i + 1].bytes.data());
        if (packets[i + 1].bytes.size() > 64) {
          DIP_PREFETCH_R(packets[i + 1].bytes.data() + 64);
        }
      }
      results[i].reset();
      bound_[i] = 0;
      if (auto st = HeaderView::bind_into(packets[i].bytes, views_[i]); !st) {
        if (lenient) {
          quarantine(nullptr, ingress, now, results[i]);
        } else {
          results[i].drop(DropReason::kMalformed);
        }
        ++dropped;
        continue;
      }
      if (lenient && !fns_fit(views_[i])) {
        // A bindable header whose FN slices overrun the locations block is
        // byte damage, not a protocol violation: quarantine it.
        quarantine(&views_[i], ingress, now, results[i]);
        ++dropped;
        continue;
      }
      if (views_[i].fns().size() > env_.limits.max_fn_per_packet) {
        results[i].drop(DropReason::kBudgetExhausted);
        ++dropped;
        continue;
      }
      if (!views_[i].decrement_hop_limit()) {
        results[i].drop(DropReason::kHopLimitExceeded);
        ++dropped;
        continue;
      }
      bound_[i] = 1;
      track_uniform(i);
    }
  } else {
    // Phase 1a: bind.
    for (std::size_t i = 0; i < n; ++i) {
      if (prefetch_ && i + 1 < n && !packets[i + 1].bytes.empty()) {
        DIP_PREFETCH_R(packets[i + 1].bytes.data());
        if (packets[i + 1].bytes.size() > 64) {
          DIP_PREFETCH_R(packets[i + 1].bytes.data() + 64);
        }
      }
      results[i].reset();
      bound_[i] = 0;
      if (auto st = HeaderView::bind_into(packets[i].bytes, views_[i]); !st) {
        if (lenient) {
          quarantine(nullptr, ingress, now, results[i]);
        } else {
          results[i].drop(DropReason::kMalformed);
        }
        continue;
      }
      bound_[i] = 1;
    }
    {
      const std::uint64_t t = telemetry::now_ns();
      stats->phase_bind.record(t - t_phase);
      t_phase = t;
    }

    // Phase 1b: structural checks + hop-limit decrement for every bound
    // packet.
    for (std::size_t i = 0; i < n; ++i) {
      if (!bound_[i]) {
        ++dropped;
        continue;
      }
      if (lenient && !fns_fit(views_[i])) {
        quarantine(&views_[i], ingress, now, results[i]);
        bound_[i] = 0;
        ++dropped;
        continue;
      }
      if (views_[i].fns().size() > env_.limits.max_fn_per_packet) {
        results[i].drop(DropReason::kBudgetExhausted);
        bound_[i] = 0;
        ++dropped;
        continue;
      }
      if (!views_[i].decrement_hop_limit()) {
        results[i].drop(DropReason::kHopLimitExceeded);
        bound_[i] = 0;
        ++dropped;
        continue;
      }
      track_uniform(i);
    }
    {
      const std::uint64_t t = telemetry::now_ns();
      stats->phase_validate.record(t - t_phase);
      t_phase = t;
    }
  }

  if (stats != nullptr) stats->burst_bound += n - dropped;

  // Phase 2: dispatch FNs. Eligible packets go through position-major
  // waves (module-major within a wave); the rest take the legacy
  // per-packet path. See dispatch_burst for the eligibility contract.
  std::uint64_t forwarded = 0;
  std::uint64_t errors = 0;
  dispatch_burst(packets, ingress, now, results, stats, waves_allowed, exemplar,
                 uniform, forwarded, dropped, errors);
  if (burst_timed) {
    stats->phase_dispatch.record(telemetry::now_ns() - t_phase);
  }

  env_.counters.processed += packets.size();
  if (forwarded != 0) env_.counters.forwarded += forwarded;
  if (dropped != 0) env_.counters.dropped += dropped;
  if (errors != 0) env_.counters.errors += errors;

  // Burst boundary: no snapshot pointers survive past here, so announce a
  // quiescent state to the control plane (no-op without one).
  env_.ctrl_quiesce();
}

void Router::dispatch_burst(std::span<const PacketRef> packets, FaceId ingress,
                            SimTime now, std::span<ProcessResult> results,
                            telemetry::RouterStats* stats, bool waves_allowed,
                            std::size_t exemplar, bool uniform,
                            std::uint64_t& forwarded, std::uint64_t& dropped,
                            std::uint64_t& errors) {
  const std::size_t n = packets.size();
  arena_.reset();

  // Per-packet phase-2 state, arena-backed (rewound wholesale next burst).
  constexpr std::uint8_t kDead = 0, kWave = 1, kLegacy = 2;
  std::uint8_t* alive = arena_.alloc<std::uint8_t>(n);
  std::uint8_t* smp = arena_.alloc<std::uint8_t>(n);
  FnRunState* states = arena_.alloc<FnRunState>(n);

  // Deterministic sampling: one tick per bound packet in arrival order —
  // the identical tick sequence the per-packet engine produced, so a
  // replayed stream samples the same packets whatever the dispatch shape.
  if (stats == nullptr) {
    std::memset(smp, 0, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      smp[i] = bound_[i] != 0 && stats->packet_sampler.tick() ? 1 : 0;
    }
  }

  // ---- uniform-burst fast plan -------------------------------------------
  // Phase 1 already proved every bound packet carries the identical FN
  // program (see track_uniform in process_batch), so classify the program
  // once: each wave is a single same-key group already in arrival order,
  // and the per-packet classification and counting sort below are skipped
  // entirely. Mixed bursts fall through to the general plan.
  if (uniform && exemplar != n && !views_[exemplar].basic().parallel) {
    std::uint8_t stateful = 0;
    for (const FnTriple& fn : views_[exemplar].fns()) {
      if (fn.host_tagged()) continue;
      if (find_module(fn.key()) != nullptr && !op_burst_commutes(fn.key())) {
        ++stateful;
      }
    }
    if (stateful <= 1) {
      dispatch_burst_uniform(n, ingress, now, results, stats, exemplar, smp,
                             alive, states, forwarded, dropped, errors);
      return;
    }
  }

  // ---- classification ---------------------------------------------------
  // A packet rides the wave path iff it has no parallel bit (the §2.2
  // relax path and its counters stay per-packet) and at most one stateful
  // (non-burst_commutes) router-side FN. All stateful FNs across the burst
  // must sit at the same FN position: waves preserve arrival order within
  // one position, so that is exactly the condition under which cross-packet
  // state (PIT, DPS buckets, CC estimators) observes the legacy order.
  std::uint8_t* mode = arena_.alloc<std::uint8_t>(n);
  std::uint8_t* sfn = arena_.alloc<std::uint8_t>(n);  // stateful-FN count (capped at 2)
  bool stateful_ok = true;
  std::size_t stateful_pos = static_cast<std::size_t>(-1);
  std::size_t max_fns = 0;
  std::size_t wave_n = 0;
  std::size_t legacy_n = 0;

  for (std::size_t i = 0; i < n; ++i) {
    sfn[i] = 0;
    if (!bound_[i]) {
      mode[i] = kDead;
      continue;
    }
    if (!waves_allowed) {
      mode[i] = kLegacy;
      ++legacy_n;
      continue;
    }
    const auto fns = views_[i].fns();
    std::uint8_t stateful = 0;
    std::uint8_t pos = 0;
    for (std::size_t f = 0; f < fns.size(); ++f) {
      const FnTriple& fn = fns[f];
      if (fn.host_tagged()) continue;
      if (find_module(fn.key()) != nullptr && !op_burst_commutes(fn.key())) {
        if (stateful == 0) pos = static_cast<std::uint8_t>(f);
        if (stateful < 2) ++stateful;
      }
    }
    sfn[i] = stateful;
    if (views_[i].basic().parallel) {
      mode[i] = kLegacy;
      ++legacy_n;
      if (stateful != 0) stateful_ok = false;
      continue;
    }
    if (stateful > 1) {
      mode[i] = kLegacy;
      ++legacy_n;
      stateful_ok = false;
      continue;
    }
    if (stateful == 1) {
      if (stateful_pos == static_cast<std::size_t>(-1)) {
        stateful_pos = pos;
      } else if (stateful_pos != pos) {
        stateful_ok = false;
      }
    }
    mode[i] = kWave;
    ++wave_n;
    if (fns.size() > max_fns) max_fns = fns.size();
  }

  // Stateful FNs must execute in arrival order across the *whole* burst:
  // if any stateful packet fell off the wave path, or they disagree on
  // position, demote every stateful packet so one engine owns their order.
  if (!stateful_ok) {
    for (std::size_t i = 0; i < n; ++i) {
      if (mode[i] == kWave && sfn[i] != 0) {
        mode[i] = kLegacy;
        --wave_n;
        ++legacy_n;
      }
    }
  }

  if (stats != nullptr) {
    stats->burst_wave += wave_n;
    stats->burst_legacy += legacy_n;
  }

  // ---- wave (module-major) dispatch -------------------------------------
  if (wave_n != 0) {
    std::uint64_t t_wave = 0;
    for (std::size_t i = 0; i < n; ++i) {
      alive[i] = mode[i] == kWave ? 1 : 0;
      if (alive[i]) {
        new (&states[i]) FnRunState{env_.limits.per_packet_budget, {}};
        if (smp[i] && t_wave == 0) t_wave = telemetry::now_ns();
      }
    }

    // Group buckets: one per dense commuting key, plus the shared stateful
    // bucket (kept in arrival order), the host-tag bucket, and a generic
    // bucket for keys without a module (run_fn's skip/unsupported path).
    constexpr std::size_t kStatefulBucket = kModuleTableSize;
    constexpr std::size_t kHostBucket = kModuleTableSize + 1;
    constexpr std::size_t kMiscBucket = kModuleTableSize + 2;
    constexpr std::size_t kBuckets = kModuleTableSize + 3;

    std::uint16_t* order = arena_.alloc<std::uint16_t>(n);
    std::uint8_t* bucket_of = arena_.alloc<std::uint8_t>(n);

    // Wave i executes FN position i of every still-alive wave packet, so
    // per-packet sequencing (early exit, budget, scratch chaining) is
    // exactly the per-packet engine's; only cross-packet interleaving at
    // one position changes, and grouping made that safe.
    for (std::size_t pos = 0; pos < max_fns; ++pos) {
      std::array<std::uint16_t, kBuckets> counts{};
      std::size_t wave_items = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        const auto fns = views_[i].fns();
        if (pos >= fns.size()) continue;
        const FnTriple& fn = fns[pos];
        std::size_t b;
        if (fn.host_tagged()) {
          b = kHostBucket;
        } else {
          const auto key_idx = static_cast<std::size_t>(fn.key());
          if (key_idx < kModuleTableSize && module_table_[key_idx] != nullptr) {
            b = op_burst_commutes(fn.key()) ? key_idx : kStatefulBucket;
          } else if (find_module(fn.key()) != nullptr) {
            b = kStatefulBucket;  // out-of-table module: assume stateful
          } else {
            b = kMiscBucket;
          }
        }
        bucket_of[i] = static_cast<std::uint8_t>(b);
        ++counts[b];
        ++wave_items;
      }
      if (wave_items == 0) continue;

      // Stable counting sort: groups are contiguous in `order`, each in
      // arrival order.
      std::array<std::uint16_t, kBuckets> start{};
      std::uint16_t acc = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        start[b] = acc;
        acc = static_cast<std::uint16_t>(acc + counts[b]);
      }
      std::array<std::uint16_t, kBuckets> fill = start;
      for (std::size_t i = 0; i < n; ++i) {
        if (!alive[i] || pos >= views_[i].fns().size()) continue;
        order[fill[bucket_of[i]]++] = static_cast<std::uint16_t>(i);
      }

      for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::size_t cnt = counts[b];
        if (cnt == 0) continue;
        const std::uint16_t* items = order + start[b];
        if (b == kHostBucket) {
          // Algorithm 1 line 5, for the whole group at once.
          env_.counters.fn_skipped_host += cnt;
          continue;
        }
        if (b == kStatefulBucket || b == kMiscBucket) {
          wave_run_items(pos, items, cnt, ingress, now, states, alive, smp, results);
          continue;
        }
        const OpKey key = static_cast<OpKey>(b);
        wave_group(key, module_table_[b], pos, items, cnt, ingress, now, states,
                   alive, smp, results);
      }
    }

    // Finalize wave packets: default-egress fallback, trace records, action
    // tallies — the per-packet engine's epilogue, verbatim.
    for (std::size_t i = 0; i < n; ++i) {
      if (mode[i] != kWave) continue;
      ProcessResult& result = results[i];
      if (result.action == Action::kForward && result.egress.empty()) {
        if (env_.default_egress) {
          result.egress.push_back(*env_.default_egress);
        } else {
          result.drop(DropReason::kNoRoute);
        }
      }
      if (smp[i]) record_trace(views_[i], ingress, now, t_wave, result);
      switch (result.action) {
        case Action::kForward: ++forwarded; break;
        case Action::kDrop: ++dropped; break;
        case Action::kError: ++errors; break;
      }
    }
  }

  // ---- legacy per-packet dispatch ----------------------------------------
  // Runs after the waves; safe because by construction either the wave set
  // or the legacy set holds all the burst's stateful FNs, never both, and
  // commuting FNs are order-free across packets.
  for (std::size_t i = 0; i < n; ++i) {
    if (mode[i] != kLegacy) continue;
    ProcessResult& result = results[i];
    const std::uint64_t t_dispatch = smp[i] ? telemetry::now_ns() : 0;
    sample_this_packet_ = smp[i] != 0;
    dispatch(views_[i], ingress, now, result);
    sample_this_packet_ = false;

    // No match FN decided an egress: fall back to the wired default port
    // (the paper's one-hop eval setup), else drop.
    if (result.action == Action::kForward && result.egress.empty()) {
      if (env_.default_egress) {
        result.egress.push_back(*env_.default_egress);
      } else {
        result.drop(DropReason::kNoRoute);
      }
    }

    if (smp[i]) record_trace(views_[i], ingress, now, t_dispatch, result);

    switch (result.action) {
      case Action::kForward: ++forwarded; break;
      case Action::kDrop: ++dropped; break;
      case Action::kError: ++errors; break;
    }
  }

  if (stats != nullptr) {
    stats->arena_high_water.record(arena_.high_water());
    stats->arena_capacity.record(arena_.capacity());
  }
}

void Router::dispatch_burst_uniform(std::size_t n, FaceId ingress, SimTime now,
                                    std::span<ProcessResult> results,
                                    telemetry::RouterStats* stats,
                                    std::size_t exemplar, std::uint8_t* smp,
                                    std::uint8_t* alive, FnRunState* states,
                                    std::uint64_t& forwarded, std::uint64_t& dropped,
                                    std::uint64_t& errors) {
  // The whole burst is one wave group per FN position: `live` lists the
  // still-running packets in arrival order and is compacted in place after
  // each wave, so group order is always arrival order (the stateful-FN
  // ordering contract holds trivially).
  std::uint16_t* live = arena_.alloc<std::uint16_t>(n);
  std::size_t live_n = 0;
  std::uint64_t t_wave = 0;
  for (std::size_t i = 0; i < n; ++i) {
    alive[i] = bound_[i];
    if (!bound_[i]) continue;
    new (&states[i]) FnRunState{env_.limits.per_packet_budget, {}};
    live[live_n++] = static_cast<std::uint16_t>(i);
    if (smp[i] && t_wave == 0) t_wave = telemetry::now_ns();
  }
  if (stats != nullptr) stats->burst_wave += live_n;

  const auto fns = views_[exemplar].fns();
  for (std::size_t pos = 0; pos < fns.size() && live_n != 0; ++pos) {
    const FnTriple& fn = fns[pos];
    if (fn.host_tagged()) {
      // Algorithm 1 line 5, for the whole burst at once.
      env_.counters.fn_skipped_host += live_n;
      continue;
    }
    const OpKey key = fn.key();
    wave_group(key, find_module(key), pos, live, live_n, ingress, now, states,
               alive, smp, results);
    std::size_t w = 0;
    for (std::size_t k = 0; k < live_n; ++k) {
      if (alive[live[k]]) live[w++] = live[k];
    }
    live_n = w;
  }

  // Epilogue: default-egress fallback, trace records, action tallies —
  // identical to the per-packet engine's.
  for (std::size_t i = 0; i < n; ++i) {
    if (!bound_[i]) continue;
    ProcessResult& result = results[i];
    if (result.action == Action::kForward && result.egress.empty()) {
      if (env_.default_egress) {
        result.egress.push_back(*env_.default_egress);
      } else {
        result.drop(DropReason::kNoRoute);
      }
    }
    if (smp[i]) record_trace(views_[i], ingress, now, t_wave, result);
    switch (result.action) {
      case Action::kForward: ++forwarded; break;
      case Action::kDrop: ++dropped; break;
      case Action::kError: ++errors; break;
    }
  }

  if (stats != nullptr) {
    stats->arena_high_water.record(arena_.high_water());
    stats->arena_capacity.record(arena_.capacity());
  }
}

void Router::wave_group(OpKey key, OpModule* module, std::size_t pos,
                        const std::uint16_t* items, std::size_t count,
                        FaceId ingress, SimTime now, FnRunState* states,
                        std::uint8_t* alive, const std::uint8_t* sampled,
                        std::span<ProcessResult> results) {
  if (module == nullptr || !env_.supports(key)) {
    // run_fn's §2.4 heterogeneous-configuration path, once per group.
    const auto info = fn_info(key);
    if (info && info->requires_full_path) {
      for (std::size_t k = 0; k < count; ++k) {
        results[items[k]].fail_unsupported(key);
        alive[items[k]] = 0;
      }
    } else {
      env_.counters.fn_skipped_optional += count;
    }
    return;
  }
  switch (key) {
    case OpKey::kMatch32:
    case OpKey::kMatch128:
      if (env_.flow_cache != nullptr) {
        wave_match(key, module, pos, items, count, ingress, now, states, alive,
                   sampled, results);
        return;
      }
      break;
    case OpKey::kParm:
      wave_parm(module, pos, items, count, states, alive, sampled, results,
                ingress, now);
      return;
    case OpKey::kMac:
      if (env_.mac_kind == crypto::MacKind::kEm2) {
        wave_mac(module, pos, items, count, states, alive, sampled, results,
                 ingress, now);
        return;
      }
      break;
    default:
      break;
  }
  wave_run_items(pos, items, count, ingress, now, states, alive, sampled, results);
}

void Router::wave_run_items(std::size_t pos, const std::uint16_t* items,
                            std::size_t count, FaceId ingress, SimTime now,
                            FnRunState* states, std::uint8_t* alive,
                            const std::uint8_t* sampled,
                            std::span<ProcessResult> results) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t p = items[k];
    sample_this_packet_ = sampled[p] != 0;
    if (!run_fn(views_[p].fns()[pos], views_[p], ingress, now, states[p],
                results[p])) {
      alive[p] = 0;
    }
  }
  sample_this_packet_ = false;
}

void Router::wave_match(OpKey key, OpModule* module, std::size_t pos,
                        const std::uint16_t* items, std::size_t count,
                        FaceId ingress, SimTime now, FnRunState* states,
                        std::uint8_t* alive, const std::uint8_t* sampled,
                        std::span<ProcessResult> results) {
  FlowCache* cache = env_.flow_cache.get();
  const std::size_t want_bytes = key == OpKey::kMatch32 ? 4 : 16;
  const fib::Ipv4Lpm* f32 = key == OpKey::kMatch32 ? env_.fib32_view() : nullptr;
  const fib::Ipv6Lpm* f128 =
      key == OpKey::kMatch128 ? env_.fib128_view() : nullptr;
  const bool view_ok = key == OpKey::kMatch32 ? f32 != nullptr : f128 != nullptr;
  const std::uint64_t generation =
      view_ok ? (f32 != nullptr ? f32->generation() : f128->generation()) : 0;
  const std::uint32_t cost = module->cost();
  const std::size_t key_slot =
      static_cast<std::size_t>(key) % env_.counters.fn_by_key.size();

  // Pass A: hash every cacheable slice and prefetch its cache slot so the
  // pass-B probes hit warm lines. Sampled packets keep the exact run_fn
  // timing path; uncacheable slices keep run_fn's uncached module path.
  const std::uint8_t** slices = arena_.alloc<const std::uint8_t*>(count);
  std::uint64_t* hashes = arena_.alloc<std::uint64_t>(count);
  std::uint8_t* fast = arena_.alloc<std::uint8_t>(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t p = items[k];
    fast[k] = 0;
    if (sampled[p] || !view_ok) continue;
    const bytes::BitRange range = views_[p].fns()[pos].range();
    if (!range.byte_aligned() || range.bit_length / 8 != want_bytes) continue;
    const std::uint8_t* slice =
        views_[p].locations().data() + range.bit_offset / 8;
    slices[k] = slice;
    hashes[k] = FlowCache::hash({slice, want_bytes});
    fast[k] = 1;
    if (prefetch_) cache->prefetch(hashes[k]);
  }

  // Pass B, in arrival order (a miss's insert must be visible to the next
  // identical flow, exactly as the per-packet engine fills the cache).
  // Counter deltas stay local and flush once per group: the relaxed
  // fetch_adds were the single largest per-packet cost on this path.
  std::uint64_t executed = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t p = items[k];
    ProcessResult& result = results[p];
    FnRunState& state = states[p];
    if (!fast[k]) {
      sample_this_packet_ = sampled[p] != 0;
      if (!run_fn(views_[p].fns()[pos], views_[p], ingress, now, state, result)) {
        alive[p] = 0;
      }
      sample_this_packet_ = false;
      continue;
    }
    if (cost > state.budget) {
      result.drop(DropReason::kBudgetExhausted);
      alive[p] = 0;
      continue;
    }
    state.budget -= cost;
    const std::span<const std::uint8_t> slice{slices[k], want_bytes};
    ++executed;
    if (const FlowCache::Verdict* v =
            cache->find_hashed(slice, hashes[k], generation)) {
      ++hits;
      if (v->no_route) {
        result.drop(DropReason::kNoRoute);
        alive[p] = 0;
        continue;
      }
      result.egress.assign(1, v->egress);
      if (result.action != Action::kForward) alive[p] = 0;
      continue;
    }
    ++misses;
    if (prefetch_ && f32 != nullptr) {
      // Pull the FIB's first dependent load (DIR-24-8 base slab) while the
      // module sets up its walk.
      fib::Ipv4Addr addr{};
      std::memcpy(addr.bytes.data(), slices[k], 4);
      f32->prefetch(addr);
    }
    const FnTriple& fn = views_[p].fns()[pos];
    OpContext ctx;
    ctx.locations = views_[p].locations();
    ctx.field = fn.range();
    ctx.fn = fn;
    ctx.payload = views_[p].payload();
    ctx.ingress = ingress;
    ctx.now = now;
    ctx.env = &env_;
    ctx.result = &result;
    ctx.scratch = &state.scratch;
    const bool egress_was_empty = result.egress.empty();
    if (const auto st = module->execute(ctx); !st) {
      result.drop(DropReason::kMalformed);
      alive[p] = 0;
      continue;
    }
    if (result.action == Action::kForward && egress_was_empty &&
        result.egress.size() == 1) {
      cache->insert(slice, generation, {result.egress[0], false});
    } else if (result.action == Action::kDrop &&
               result.reason == DropReason::kNoRoute) {
      cache->insert(slice, generation, {0, true});
    }
    if (result.action != Action::kForward) alive[p] = 0;
  }
  env_.counters.fn_executed += executed;
  env_.counters.fn_by_key[key_slot] += executed;
  if (hits != 0) env_.counters.flow_cache_hits += hits;
  if (misses != 0) env_.counters.flow_cache_misses += misses;
}

void Router::wave_parm(OpModule* module, std::size_t pos,
                       const std::uint16_t* items, std::size_t count,
                       FnRunState* states, std::uint8_t* alive,
                       const std::uint8_t* sampled,
                       std::span<ProcessResult> results, FaceId ingress,
                       SimTime now) {
  // One AES key schedule for the whole group: K_i = AES_{node_secret}(sid_i)
  // is multi-block under the router's cached schedule (rebuilt only when
  // the node secret changes).
  if (!drkey_ ||
      std::memcmp(drkey_secret_.data(), env_.node_secret.data(),
                  drkey_secret_.size()) != 0) {
    drkey_.emplace(env_.node_secret);
    drkey_secret_ = env_.node_secret;
  }
  const std::uint32_t cost = module->cost();
  const std::size_t key_slot =
      static_cast<std::size_t>(OpKey::kParm) % env_.counters.fn_by_key.size();

  crypto::SessionId* sids = arena_.alloc<crypto::SessionId>(count);
  crypto::Block* keys = arena_.alloc<crypto::Block>(count);
  std::uint16_t* lanes = arena_.alloc<std::uint16_t>(count);
  std::size_t lane_n = 0;
  std::uint64_t executed = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t p = items[k];
    FnRunState& state = states[p];
    const FnTriple& fn = views_[p].fns()[pos];
    const bytes::BitRange range = fn.range();
    if (sampled[p] || range.bit_length != 128 || !range.byte_aligned()) {
      // ParmOp's malformed-field errors (and sampled timing) keep the
      // exact run_fn path.
      sample_this_packet_ = sampled[p] != 0;
      if (!run_fn(fn, views_[p], ingress, now, state, results[p])) alive[p] = 0;
      sample_this_packet_ = false;
      continue;
    }
    if (cost > state.budget) {
      results[p].drop(DropReason::kBudgetExhausted);
      alive[p] = 0;
      continue;
    }
    state.budget -= cost;
    ++executed;
    sids[lane_n] = crypto::block_from(
        views_[p].locations().subspan(range.bit_offset / 8, 16));
    lanes[lane_n] = static_cast<std::uint16_t>(p);
    ++lane_n;
  }
  if (lane_n != 0) {
    drkey_->derive_blocks(sids, keys, lane_n);
    for (std::size_t k = 0; k < lane_n; ++k) {
      states[lanes[k]].scratch.dynamic_key = keys[k];
    }
  }
  env_.counters.fn_executed += executed;
  env_.counters.fn_by_key[key_slot] += executed;
}

void Router::wave_mac(OpModule* module, std::size_t pos,
                      const std::uint16_t* items, std::size_t count,
                      FnRunState* states, std::uint8_t* alive,
                      const std::uint8_t* sampled,
                      std::span<ProcessResult> results, FaceId ingress,
                      SimTime now) {
  // Batch 2EM CMAC: every packet's tag chains in lockstep through the
  // shared P1/P2 permutations (two_em_mac_blocks), instead of one serial
  // CMAC per packet. kEm2 only — the dispatcher routes kAesCmac nodes to
  // the per-item path.
  const std::uint32_t cost = module->cost();
  const std::size_t key_slot =
      static_cast<std::size_t>(OpKey::kMac) % env_.counters.fn_by_key.size();
  crypto::MacBatchItem* batch = arena_.alloc<crypto::MacBatchItem>(count);
  std::size_t batch_n = 0;
  std::uint64_t executed = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t p = items[k];
    FnRunState& state = states[p];
    const FnTriple& fn = views_[p].fns()[pos];
    const bytes::BitRange range = fn.range();
    const bool batchable = !sampled[p] && state.scratch.dynamic_key.has_value() &&
                           range.byte_aligned() && range.bit_length != 0;
    if (!batchable) {
      // Missing F_parm (kState error), unaligned/empty coverage, or a
      // sampled packet: exact run_fn semantics.
      sample_this_packet_ = sampled[p] != 0;
      if (!run_fn(fn, views_[p], ingress, now, state, results[p])) alive[p] = 0;
      sample_this_packet_ = false;
      continue;
    }
    if (cost > state.budget) {
      results[p].drop(DropReason::kBudgetExhausted);
      alive[p] = 0;
      continue;
    }
    state.budget -= cost;
    ++executed;
    state.scratch.mac.emplace();
    new (&batch[batch_n]) crypto::MacBatchItem{
        *state.scratch.dynamic_key,
        std::span<const std::uint8_t>(
            views_[p].locations().data() + range.bit_offset / 8,
            range.bit_length / 8),
        &*state.scratch.mac};
    ++batch_n;
  }
  if (batch_n != 0) crypto::two_em_mac_blocks({batch, batch_n});
  env_.counters.fn_executed += executed;
  env_.counters.fn_by_key[key_slot] += executed;
}

void Router::record_trace(const HeaderView& view, FaceId ingress, SimTime now,
                          std::uint64_t t_start, const ProcessResult& result) {
  static_assert(telemetry::TraceRecord::kMaxFns == HeaderView::kMaxFns);
  telemetry::TraceRecord rec;
  rec.start_ns = t_start;
  rec.sim_now = now;
  rec.duration_ns =
      static_cast<std::uint32_t>(telemetry::now_ns() - t_start);
  rec.ingress = ingress;
  const auto fns = view.fns();
  rec.fn_count = static_cast<std::uint8_t>(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    rec.fns[i] = {fns[i].field_loc, fns[i].field_len, fns[i].op};
  }
  rec.action = static_cast<std::uint8_t>(result.action);
  rec.reason = static_cast<std::uint8_t>(result.reason);
  rec.egress_count = static_cast<std::uint8_t>(
      result.egress.size() < 255 ? result.egress.size() : 255);
  env_.stats->trace.push(rec);
}

bool Router::fns_fit(const HeaderView& view) noexcept {
  const std::size_t loc_bits = view.locations().size() * 8;
  for (const FnTriple& fn : view.fns()) {
    if (fn.host_tagged()) continue;  // routers never slice host-tagged fields
    if (static_cast<std::size_t>(fn.field_loc) + fn.field_len > loc_bits) {
      return false;
    }
  }
  return true;
}

void Router::quarantine(const HeaderView* view, FaceId ingress, SimTime now,
                        ProcessResult& result) {
  result.drop(DropReason::kCorruptQuarantine);
  ++env_.counters.quarantined;
  telemetry::RouterStats* stats = env_.stats.get();
  if (stats == nullptr) return;
  // Forced trace record — quarantines bypass the sampler so the TraceRing
  // holds evidence for every corrupt packet (bounded by ring overwrite).
  telemetry::TraceRecord rec;
  rec.start_ns = 0;
  rec.sim_now = now;
  rec.duration_ns = 0;
  rec.ingress = ingress;
  rec.fn_count = 0;
  if (view != nullptr) {
    const auto fns = view->fns();
    rec.fn_count = static_cast<std::uint8_t>(fns.size());
    for (std::size_t i = 0; i < fns.size(); ++i) {
      rec.fns[i] = {fns[i].field_loc, fns[i].field_len, fns[i].op};
    }
  }
  rec.action = static_cast<std::uint8_t>(result.action);
  rec.reason = static_cast<std::uint8_t>(result.reason);
  rec.egress_count = 0;
  stats->trace.push(rec);
}

void Router::dispatch(HeaderView& view, FaceId ingress, SimTime now,
                      ProcessResult& result) {
  if (view.basic().parallel) {
    // §2.2 modular parallelism: the sender asserts the FNs are independent;
    // the router verifies (order-independent keys, disjoint fields) before
    // relaxing the schedule, and falls back to sequential order otherwise.
    if (relax_eligible(view)) {
      ++env_.counters.parallel_relaxed;
      dispatch_relaxed(view, ingress, now, result);
      return;
    }
    ++env_.counters.parallel_fallback;
  }
  if (strategy_ == DispatchStrategy::kLoop) {
    dispatch_loop(view, ingress, now, result);
  } else {
    dispatch_unrolled(view, ingress, now, result);
  }
}

bool Router::relax_eligible(const HeaderView& view) noexcept {
  const auto fns = view.fns();
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].host_tagged()) continue;  // skipped by routers in any order
    const auto info = fn_info(fns[i].key());
    if (!info || !info->order_independent) return false;
    const std::uint32_t a_lo = fns[i].field_loc;
    const std::uint32_t a_hi = a_lo + fns[i].field_len;
    for (std::size_t j = i + 1; j < fns.size(); ++j) {
      if (fns[j].host_tagged()) continue;
      const std::uint32_t b_lo = fns[j].field_loc;
      const std::uint32_t b_hi = b_lo + fns[j].field_len;
      if (a_lo < b_hi && b_lo < a_hi) return false;  // overlapping slices
    }
  }
  return true;
}

OpModule* Router::find_module(OpKey key) const noexcept {
  const auto idx = static_cast<std::size_t>(key);
  if (idx < kModuleTableSize) return module_table_[idx];
  return registry_ != nullptr ? registry_->find(key) : nullptr;
}

void Router::refresh_module_table() {
  for (std::size_t k = 0; k < kModuleTableSize; ++k) {
    module_table_[k] = registry_->find(static_cast<OpKey>(k));
  }
  module_epoch_ = registry_->epoch();
}

bool Router::run_fn(const FnTriple& fn, HeaderView& view, FaceId ingress, SimTime now,
                    FnRunState& state, ProcessResult& result) {
  // Algorithm 1, line 5: host-tagged operations are skipped by routers.
  if (fn.host_tagged()) {
    ++env_.counters.fn_skipped_host;
    return true;
  }

  OpModule* module = find_module(fn.key());
  if (module == nullptr || !env_.supports(fn.key())) {
    // §2.4 heterogeneous configuration: a path-critical FN that this node
    // cannot honor triggers an ICMP-like notification; others are skipped.
    const auto info = fn_info(fn.key());
    if (info && info->requires_full_path) {
      result.fail_unsupported(fn.key());
      return false;
    }
    ++env_.counters.fn_skipped_optional;
    return true;
  }

  const std::uint32_t cost = module->cost();
  if (cost > state.budget) {
    // §2.4: hard per-packet processing limit.
    result.drop(DropReason::kBudgetExhausted);
    return false;
  }
  state.budget -= cost;

  const OpKey key = fn.key();
  const std::size_t key_idx =
      static_cast<std::size_t>(key) % env_.counters.fn_by_key.size();
  // Per-FN latency, recorded only for packets the stats sampler picked
  // (sample_this_packet_ is always false with stats disabled).
  const std::uint64_t t0 = sample_this_packet_ ? telemetry::now_ns() : 0;

  bool ok;
  if (env_.flow_cache != nullptr &&
      (key == OpKey::kMatch32 || key == OpKey::kMatch128)) {
    ok = run_match(fn, module, view, ingress, now, state, result);
  } else {
    OpContext ctx;
    ctx.locations = view.locations();
    ctx.field = fn.range();
    ctx.fn = fn;
    ctx.payload = view.payload();
    ctx.ingress = ingress;
    ctx.now = now;
    ctx.env = &env_;
    ctx.result = &result;
    ctx.scratch = &state.scratch;

    ++env_.counters.fn_executed;
    ++env_.counters.fn_by_key[key_idx];
    if (const auto st = module->execute(ctx); !st) {
      result.drop(DropReason::kMalformed);
      ok = false;
    } else {
      ok = result.action == Action::kForward;
    }
  }

  if (sample_this_packet_) {
    env_.stats->fn_ns[key_idx].record(telemetry::now_ns() - t0);
  }
  return ok;
}

bool Router::run_match(const FnTriple& fn, OpModule* module, HeaderView& view,
                       FaceId ingress, SimTime now, FnRunState& state,
                       ProcessResult& result) {
  const OpKey key = fn.key();
  const auto key_idx = static_cast<std::size_t>(key) % env_.counters.fn_by_key.size();
  const bytes::BitRange range = fn.range();

  // The cache key is the sliced match field. Only the canonical byte-aligned
  // widths are memoized; anything else takes the module path untouched.
  std::span<const std::uint8_t> slice;
  std::uint64_t generation = 0;
  bool cacheable = false;
  if (range.byte_aligned()) {
    const std::size_t len_bytes = range.bit_length / 8;
    const bool width_ok = (key == OpKey::kMatch32 && len_bytes == 4) ||
                          (key == OpKey::kMatch128 && len_bytes == 16);
    const fib::Ipv4Lpm* f32 = env_.fib32_view();
    const fib::Ipv6Lpm* f128 = env_.fib128_view();
    if (width_ok && (key == OpKey::kMatch32 ? f32 != nullptr : f128 != nullptr)) {
      slice = view.locations().subspan(range.bit_offset / 8, len_bytes);
      generation = key == OpKey::kMatch32 ? f32->generation() : f128->generation();
      cacheable = true;
    }
  }

  if (cacheable) {
    if (const FlowCache::Verdict* v = env_.flow_cache->find(slice, generation)) {
      // The memoized verdict is exactly what the module would compute under
      // this FIB generation; counters advance as if it had run.
      ++env_.counters.flow_cache_hits;
      ++env_.counters.fn_executed;
      ++env_.counters.fn_by_key[key_idx];
      if (v->no_route) {
        result.drop(DropReason::kNoRoute);
        return false;
      }
      result.egress.assign(1, v->egress);
      return result.action == Action::kForward;
    }
    ++env_.counters.flow_cache_misses;
  }

  OpContext ctx;
  ctx.locations = view.locations();
  ctx.field = range;
  ctx.fn = fn;
  ctx.payload = view.payload();
  ctx.ingress = ingress;
  ctx.now = now;
  ctx.env = &env_;
  ctx.result = &result;
  ctx.scratch = &state.scratch;

  ++env_.counters.fn_executed;
  ++env_.counters.fn_by_key[key_idx];
  const bool egress_was_empty = result.egress.empty();
  if (const auto st = module->execute(ctx); !st) {
    result.drop(DropReason::kMalformed);
    return false;
  }

  if (cacheable) {
    if (result.action == Action::kForward && egress_was_empty &&
        result.egress.size() == 1) {
      env_.flow_cache->insert(slice, generation, {result.egress[0], false});
    } else if (result.action == Action::kDrop &&
               result.reason == DropReason::kNoRoute) {
      env_.flow_cache->insert(slice, generation, {0, true});
    }
  }
  return result.action == Action::kForward;
}

void Router::dispatch_loop(HeaderView& view, FaceId ingress, SimTime now,
                           ProcessResult& result) {
  FnRunState state{env_.limits.per_packet_budget, {}};
  for (const FnTriple& fn : view.fns()) {
    if (!run_fn(fn, view, ingress, now, state, result)) return;
  }
}

void Router::dispatch_relaxed(HeaderView& view, FaceId ingress, SimTime now,
                              ProcessResult& result) {
  // Relaxed ordering: any schedule is legal for independent FNs. Running
  // back to front is the cheapest observably different one — it keeps the
  // relaxation honest (a dependence bug shows up as a verdict difference in
  // the batch-equivalence property test).
  FnRunState state{env_.limits.per_packet_budget, {}};
  const auto fns = view.fns();
  for (std::size_t i = fns.size(); i-- > 0;) {
    if (!run_fn(fns[i], view, ingress, now, state, result)) return;
  }
}

void Router::dispatch_unrolled(HeaderView& view, FaceId ingress, SimTime now,
                               ProcessResult& result) {
  // Mirrors the Tofino compromise: a fixed ladder testing FN_Num, with the
  // per-position FN handling fully written out (no data-dependent loop).
  // Functionally identical to dispatch_loop for fn_num <= kMaxFns.
  FnRunState state{env_.limits.per_packet_budget, {}};
  const auto fns = view.fns();
  const std::size_t n = fns.size();

#define DIP_STAGE(i)                                                            \
  do {                                                                          \
    if (n <= (i)) return;                                                       \
    if (!run_fn(fns[(i)], view, ingress, now, state, result)) return;           \
  } while (0)

  DIP_STAGE(0);
  DIP_STAGE(1);
  DIP_STAGE(2);
  DIP_STAGE(3);
  DIP_STAGE(4);
  DIP_STAGE(5);
  DIP_STAGE(6);
  DIP_STAGE(7);
  DIP_STAGE(8);
  DIP_STAGE(9);
  DIP_STAGE(10);
  DIP_STAGE(11);
  DIP_STAGE(12);
  DIP_STAGE(13);
  DIP_STAGE(14);
  DIP_STAGE(15);
#undef DIP_STAGE
}

}  // namespace dip::core
