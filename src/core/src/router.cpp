#include "dip/core/router.hpp"

#include <cassert>

namespace dip::core {

ProcessResult Router::process(std::span<std::uint8_t> packet, FaceId ingress,
                              SimTime now) {
  const PacketRef ref(packet);
  ProcessResult result;
  process_batch({&ref, 1}, ingress, now, {&result, 1});
  return result;
}

std::vector<ProcessResult> Router::process_batch(std::span<const PacketRef> packets,
                                                 FaceId ingress, SimTime now) {
  std::vector<ProcessResult> results(packets.size());
  process_batch(packets, ingress, now, results);
  return results;
}

void Router::process_batch(std::span<const PacketRef> packets, FaceId ingress,
                           SimTime now, std::span<ProcessResult> results) {
  assert(results.size() >= packets.size());
  ++env_.counters.batches;
  if (registry_ != nullptr && registry_->epoch() != module_epoch_) {
    refresh_module_table();
  }

  views_.resize(packets.size());
  bound_.assign(packets.size(), 0);

  // Phase timing is burst-sampled: the three histograms cost six clock
  // reads per *sampled* burst, nothing on the rest.
  telemetry::RouterStats* stats = env_.stats.get();
  const bool burst_timed = stats != nullptr && stats->burst_sampler.tick();
  std::uint64_t t_phase = burst_timed ? telemetry::now_ns() : 0;

  // Phase 1a: bind every header for the whole burst.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    results[i].reset();
    auto view = HeaderView::bind(packets[i].bytes);
    if (!view) {
      if (validation_ == ValidationMode::kLenient) {
        quarantine(nullptr, ingress, now, results[i]);
      } else {
        results[i].drop(DropReason::kMalformed);
      }
      continue;
    }
    views_[i] = *view;
    bound_[i] = 1;
  }
  if (burst_timed) {
    const std::uint64_t t = telemetry::now_ns();
    stats->phase_bind.record(t - t_phase);
    t_phase = t;
  }

  // Phase 1b: structural checks + hop-limit decrement for every bound
  // packet. Counter deltas are accumulated locally and flushed once.
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (!bound_[i]) {
      ++dropped;
      continue;
    }
    if (validation_ == ValidationMode::kLenient && !fns_fit(views_[i])) {
      // A bindable header whose FN slices overrun the locations block is
      // byte damage, not a protocol violation: quarantine it.
      quarantine(&views_[i], ingress, now, results[i]);
      bound_[i] = 0;
      ++dropped;
      continue;
    }
    if (views_[i].fns().size() > env_.limits.max_fn_per_packet) {
      results[i].drop(DropReason::kBudgetExhausted);
      bound_[i] = 0;
      ++dropped;
      continue;
    }
    if (!views_[i].decrement_hop_limit()) {
      results[i].drop(DropReason::kHopLimitExceeded);
      bound_[i] = 0;
      ++dropped;
    }
  }
  if (burst_timed) {
    const std::uint64_t t = telemetry::now_ns();
    stats->phase_validate.record(t - t_phase);
    t_phase = t;
  }

  // Phase 2: dispatch FNs packet by packet. The packet sampler ticks once
  // per dispatched packet; sampled packets get per-FN timing (run_fn reads
  // sample_this_packet_) and a trace-ring record.
  std::uint64_t forwarded = 0;
  std::uint64_t errors = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (!bound_[i]) continue;
    ProcessResult& result = results[i];
    const bool sampled = stats != nullptr && stats->packet_sampler.tick();
    const std::uint64_t t_dispatch = sampled ? telemetry::now_ns() : 0;
    sample_this_packet_ = sampled;
    dispatch(views_[i], ingress, now, result);
    sample_this_packet_ = false;

    // No match FN decided an egress: fall back to the wired default port
    // (the paper's one-hop eval setup), else drop.
    if (result.action == Action::kForward && result.egress.empty()) {
      if (env_.default_egress) {
        result.egress.push_back(*env_.default_egress);
      } else {
        result.drop(DropReason::kNoRoute);
      }
    }

    if (sampled) record_trace(views_[i], ingress, now, t_dispatch, result);

    switch (result.action) {
      case Action::kForward: ++forwarded; break;
      case Action::kDrop: ++dropped; break;
      case Action::kError: ++errors; break;
    }
  }
  if (burst_timed) {
    stats->phase_dispatch.record(telemetry::now_ns() - t_phase);
  }

  env_.counters.processed += packets.size();
  if (forwarded != 0) env_.counters.forwarded += forwarded;
  if (dropped != 0) env_.counters.dropped += dropped;
  if (errors != 0) env_.counters.errors += errors;

  // Burst boundary: no snapshot pointers survive past here, so announce a
  // quiescent state to the control plane (no-op without one).
  env_.ctrl_quiesce();
}

void Router::record_trace(const HeaderView& view, FaceId ingress, SimTime now,
                          std::uint64_t t_start, const ProcessResult& result) {
  static_assert(telemetry::TraceRecord::kMaxFns == HeaderView::kMaxFns);
  telemetry::TraceRecord rec;
  rec.start_ns = t_start;
  rec.sim_now = now;
  rec.duration_ns =
      static_cast<std::uint32_t>(telemetry::now_ns() - t_start);
  rec.ingress = ingress;
  const auto fns = view.fns();
  rec.fn_count = static_cast<std::uint8_t>(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    rec.fns[i] = {fns[i].field_loc, fns[i].field_len, fns[i].op};
  }
  rec.action = static_cast<std::uint8_t>(result.action);
  rec.reason = static_cast<std::uint8_t>(result.reason);
  rec.egress_count = static_cast<std::uint8_t>(
      result.egress.size() < 255 ? result.egress.size() : 255);
  env_.stats->trace.push(rec);
}

bool Router::fns_fit(const HeaderView& view) noexcept {
  const std::size_t loc_bits = view.locations().size() * 8;
  for (const FnTriple& fn : view.fns()) {
    if (fn.host_tagged()) continue;  // routers never slice host-tagged fields
    if (static_cast<std::size_t>(fn.field_loc) + fn.field_len > loc_bits) {
      return false;
    }
  }
  return true;
}

void Router::quarantine(const HeaderView* view, FaceId ingress, SimTime now,
                        ProcessResult& result) {
  result.drop(DropReason::kCorruptQuarantine);
  ++env_.counters.quarantined;
  telemetry::RouterStats* stats = env_.stats.get();
  if (stats == nullptr) return;
  // Forced trace record — quarantines bypass the sampler so the TraceRing
  // holds evidence for every corrupt packet (bounded by ring overwrite).
  telemetry::TraceRecord rec;
  rec.start_ns = 0;
  rec.sim_now = now;
  rec.duration_ns = 0;
  rec.ingress = ingress;
  rec.fn_count = 0;
  if (view != nullptr) {
    const auto fns = view->fns();
    rec.fn_count = static_cast<std::uint8_t>(fns.size());
    for (std::size_t i = 0; i < fns.size(); ++i) {
      rec.fns[i] = {fns[i].field_loc, fns[i].field_len, fns[i].op};
    }
  }
  rec.action = static_cast<std::uint8_t>(result.action);
  rec.reason = static_cast<std::uint8_t>(result.reason);
  rec.egress_count = 0;
  stats->trace.push(rec);
}

void Router::dispatch(HeaderView& view, FaceId ingress, SimTime now,
                      ProcessResult& result) {
  if (view.basic().parallel) {
    // §2.2 modular parallelism: the sender asserts the FNs are independent;
    // the router verifies (order-independent keys, disjoint fields) before
    // relaxing the schedule, and falls back to sequential order otherwise.
    if (relax_eligible(view)) {
      ++env_.counters.parallel_relaxed;
      dispatch_relaxed(view, ingress, now, result);
      return;
    }
    ++env_.counters.parallel_fallback;
  }
  if (strategy_ == DispatchStrategy::kLoop) {
    dispatch_loop(view, ingress, now, result);
  } else {
    dispatch_unrolled(view, ingress, now, result);
  }
}

bool Router::relax_eligible(const HeaderView& view) noexcept {
  const auto fns = view.fns();
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].host_tagged()) continue;  // skipped by routers in any order
    const auto info = fn_info(fns[i].key());
    if (!info || !info->order_independent) return false;
    const std::uint32_t a_lo = fns[i].field_loc;
    const std::uint32_t a_hi = a_lo + fns[i].field_len;
    for (std::size_t j = i + 1; j < fns.size(); ++j) {
      if (fns[j].host_tagged()) continue;
      const std::uint32_t b_lo = fns[j].field_loc;
      const std::uint32_t b_hi = b_lo + fns[j].field_len;
      if (a_lo < b_hi && b_lo < a_hi) return false;  // overlapping slices
    }
  }
  return true;
}

OpModule* Router::find_module(OpKey key) const noexcept {
  const auto idx = static_cast<std::size_t>(key);
  if (idx < kModuleTableSize) return module_table_[idx];
  return registry_ != nullptr ? registry_->find(key) : nullptr;
}

void Router::refresh_module_table() {
  for (std::size_t k = 0; k < kModuleTableSize; ++k) {
    module_table_[k] = registry_->find(static_cast<OpKey>(k));
  }
  module_epoch_ = registry_->epoch();
}

bool Router::run_fn(const FnTriple& fn, HeaderView& view, FaceId ingress, SimTime now,
                    FnRunState& state, ProcessResult& result) {
  // Algorithm 1, line 5: host-tagged operations are skipped by routers.
  if (fn.host_tagged()) {
    ++env_.counters.fn_skipped_host;
    return true;
  }

  OpModule* module = find_module(fn.key());
  if (module == nullptr || !env_.supports(fn.key())) {
    // §2.4 heterogeneous configuration: a path-critical FN that this node
    // cannot honor triggers an ICMP-like notification; others are skipped.
    const auto info = fn_info(fn.key());
    if (info && info->requires_full_path) {
      result.fail_unsupported(fn.key());
      return false;
    }
    ++env_.counters.fn_skipped_optional;
    return true;
  }

  const std::uint32_t cost = module->cost();
  if (cost > state.budget) {
    // §2.4: hard per-packet processing limit.
    result.drop(DropReason::kBudgetExhausted);
    return false;
  }
  state.budget -= cost;

  const OpKey key = fn.key();
  const std::size_t key_idx =
      static_cast<std::size_t>(key) % env_.counters.fn_by_key.size();
  // Per-FN latency, recorded only for packets the stats sampler picked
  // (sample_this_packet_ is always false with stats disabled).
  const std::uint64_t t0 = sample_this_packet_ ? telemetry::now_ns() : 0;

  bool ok;
  if (env_.flow_cache != nullptr &&
      (key == OpKey::kMatch32 || key == OpKey::kMatch128)) {
    ok = run_match(fn, module, view, ingress, now, state, result);
  } else {
    OpContext ctx;
    ctx.locations = view.locations();
    ctx.field = fn.range();
    ctx.fn = fn;
    ctx.payload = view.payload();
    ctx.ingress = ingress;
    ctx.now = now;
    ctx.env = &env_;
    ctx.result = &result;
    ctx.scratch = &state.scratch;

    ++env_.counters.fn_executed;
    ++env_.counters.fn_by_key[key_idx];
    if (const auto st = module->execute(ctx); !st) {
      result.drop(DropReason::kMalformed);
      ok = false;
    } else {
      ok = result.action == Action::kForward;
    }
  }

  if (sample_this_packet_) {
    env_.stats->fn_ns[key_idx].record(telemetry::now_ns() - t0);
  }
  return ok;
}

bool Router::run_match(const FnTriple& fn, OpModule* module, HeaderView& view,
                       FaceId ingress, SimTime now, FnRunState& state,
                       ProcessResult& result) {
  const OpKey key = fn.key();
  const auto key_idx = static_cast<std::size_t>(key) % env_.counters.fn_by_key.size();
  const bytes::BitRange range = fn.range();

  // The cache key is the sliced match field. Only the canonical byte-aligned
  // widths are memoized; anything else takes the module path untouched.
  std::span<const std::uint8_t> slice;
  std::uint64_t generation = 0;
  bool cacheable = false;
  if (range.byte_aligned()) {
    const std::size_t len_bytes = range.bit_length / 8;
    const bool width_ok = (key == OpKey::kMatch32 && len_bytes == 4) ||
                          (key == OpKey::kMatch128 && len_bytes == 16);
    const fib::Ipv4Lpm* f32 = env_.fib32_view();
    const fib::Ipv6Lpm* f128 = env_.fib128_view();
    if (width_ok && (key == OpKey::kMatch32 ? f32 != nullptr : f128 != nullptr)) {
      slice = view.locations().subspan(range.bit_offset / 8, len_bytes);
      generation = key == OpKey::kMatch32 ? f32->generation() : f128->generation();
      cacheable = true;
    }
  }

  if (cacheable) {
    if (const FlowCache::Verdict* v = env_.flow_cache->find(slice, generation)) {
      // The memoized verdict is exactly what the module would compute under
      // this FIB generation; counters advance as if it had run.
      ++env_.counters.flow_cache_hits;
      ++env_.counters.fn_executed;
      ++env_.counters.fn_by_key[key_idx];
      if (v->no_route) {
        result.drop(DropReason::kNoRoute);
        return false;
      }
      result.egress.assign(1, v->egress);
      return result.action == Action::kForward;
    }
    ++env_.counters.flow_cache_misses;
  }

  OpContext ctx;
  ctx.locations = view.locations();
  ctx.field = range;
  ctx.fn = fn;
  ctx.payload = view.payload();
  ctx.ingress = ingress;
  ctx.now = now;
  ctx.env = &env_;
  ctx.result = &result;
  ctx.scratch = &state.scratch;

  ++env_.counters.fn_executed;
  ++env_.counters.fn_by_key[key_idx];
  const bool egress_was_empty = result.egress.empty();
  if (const auto st = module->execute(ctx); !st) {
    result.drop(DropReason::kMalformed);
    return false;
  }

  if (cacheable) {
    if (result.action == Action::kForward && egress_was_empty &&
        result.egress.size() == 1) {
      env_.flow_cache->insert(slice, generation, {result.egress[0], false});
    } else if (result.action == Action::kDrop &&
               result.reason == DropReason::kNoRoute) {
      env_.flow_cache->insert(slice, generation, {0, true});
    }
  }
  return result.action == Action::kForward;
}

void Router::dispatch_loop(HeaderView& view, FaceId ingress, SimTime now,
                           ProcessResult& result) {
  FnRunState state{env_.limits.per_packet_budget, {}};
  for (const FnTriple& fn : view.fns()) {
    if (!run_fn(fn, view, ingress, now, state, result)) return;
  }
}

void Router::dispatch_relaxed(HeaderView& view, FaceId ingress, SimTime now,
                              ProcessResult& result) {
  // Relaxed ordering: any schedule is legal for independent FNs. Running
  // back to front is the cheapest observably different one — it keeps the
  // relaxation honest (a dependence bug shows up as a verdict difference in
  // the batch-equivalence property test).
  FnRunState state{env_.limits.per_packet_budget, {}};
  const auto fns = view.fns();
  for (std::size_t i = fns.size(); i-- > 0;) {
    if (!run_fn(fns[i], view, ingress, now, state, result)) return;
  }
}

void Router::dispatch_unrolled(HeaderView& view, FaceId ingress, SimTime now,
                               ProcessResult& result) {
  // Mirrors the Tofino compromise: a fixed ladder testing FN_Num, with the
  // per-position FN handling fully written out (no data-dependent loop).
  // Functionally identical to dispatch_loop for fn_num <= kMaxFns.
  FnRunState state{env_.limits.per_packet_budget, {}};
  const auto fns = view.fns();
  const std::size_t n = fns.size();

#define DIP_STAGE(i)                                                            \
  do {                                                                          \
    if (n <= (i)) return;                                                       \
    if (!run_fn(fns[(i)], view, ingress, now, state, result)) return;           \
  } while (0)

  DIP_STAGE(0);
  DIP_STAGE(1);
  DIP_STAGE(2);
  DIP_STAGE(3);
  DIP_STAGE(4);
  DIP_STAGE(5);
  DIP_STAGE(6);
  DIP_STAGE(7);
  DIP_STAGE(8);
  DIP_STAGE(9);
  DIP_STAGE(10);
  DIP_STAGE(11);
  DIP_STAGE(12);
  DIP_STAGE(13);
  DIP_STAGE(14);
  DIP_STAGE(15);
#undef DIP_STAGE
}

}  // namespace dip::core
