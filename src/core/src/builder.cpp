#include "dip/core/builder.hpp"

namespace dip::core {

bytes::Result<DipHeader> HeaderBuilder::build() const {
  if (header_.fns.size() > HeaderView::kMaxFns) {
    return bytes::Err(bytes::Error::kOverflow);
  }
  if (header_.locations.size() > BasicHeader::kMaxLocLen) {
    return bytes::Err(bytes::Error::kOverflow);
  }
  for (const FnTriple& fn : header_.fns) {
    if (!bytes::fits(fn.range(), header_.locations.size())) {
      return bytes::Err(bytes::Error::kOutOfRange);
    }
  }
  DipHeader out = header_;
  out.basic.fn_num = static_cast<std::uint8_t>(out.fns.size());
  out.basic.loc_len = static_cast<std::uint16_t>(out.locations.size());
  return out;
}

}  // namespace dip::core
