#include "dip/core/router_pool.hpp"

#include <algorithm>
#include <thread>

namespace dip::core {

namespace {

// FNV-1a 64 over a byte span (matches the spirit of the flow-cache hash; a
// different function is fine — sharding and caching never compare hashes).
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

// The bytes that identify the packet's flow: the first router-side FN's
// sliced field. Decoded straight off the wire — sharding must not require a
// full (checksum-validated) bind, and malformed packets just need *some*
// deterministic shard.
std::span<const std::uint8_t> flow_bytes(std::span<const std::uint8_t> p) noexcept {
  if (p.size() < BasicHeader::kWireSize) return p;
  const std::uint8_t fn_num = p[1];
  const std::uint16_t param =
      static_cast<std::uint16_t>((p[3] << 8) | p[4]);
  const std::size_t loc_len = (param >> 1) & 0x3ff;  // reserved:5|loc_len:10|parallel:1
  const std::size_t locs_off =
      BasicHeader::kWireSize + std::size_t{fn_num} * FnTriple::kWireSize;
  if (p.size() < locs_off + loc_len) return p;

  for (std::size_t i = 0; i < fn_num; ++i) {
    const std::size_t off = BasicHeader::kWireSize + i * FnTriple::kWireSize;
    FnTriple fn;
    fn.field_loc = static_cast<std::uint16_t>((p[off] << 8) | p[off + 1]);
    fn.field_len = static_cast<std::uint16_t>((p[off + 2] << 8) | p[off + 3]);
    fn.op = static_cast<std::uint16_t>((p[off + 4] << 8) | p[off + 5]);
    if (fn.host_tagged()) continue;  // host FNs don't define router flow state
    const std::size_t byte_lo = fn.field_loc / 8;
    const std::size_t byte_hi = (std::size_t{fn.field_loc} + fn.field_len + 7) / 8;
    if (fn.field_len == 0 || byte_hi > loc_len) break;
    return p.subspan(locs_off + byte_lo, byte_hi - byte_lo);
  }
  return p;  // no usable field: hash the whole packet
}

}  // namespace

RouterPool::RouterPool(const OpRegistry* registry,
                       const std::function<RouterEnv(std::size_t)>& env_factory,
                       RouterPoolConfig config, Completion on_complete)
    : config_(config), on_complete_(std::move(on_complete)) {
  std::size_t n = config_.workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (config_.max_batch == 0) config_.max_batch = 1;

  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>(config_.ring_capacity);
    w->index = i;
    const std::size_t batch =
        config_.wake_batch != 0 ? config_.wake_batch : config_.max_batch;
    w->wake_threshold = std::max<std::size_t>(1, std::min(batch, w->ring.capacity()));
    w->router = std::make_unique<Router>(env_factory(i), registry, config_.strategy);
    workers_.push_back(std::move(w));
  }
  // Start threads only after the vector is fully built.
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_main(*worker); });
  }
}

RouterPool::~RouterPool() { stop(); }

std::size_t RouterPool::shard_of(std::span<const std::uint8_t> packet,
                                 std::size_t workers) noexcept {
  if (workers <= 1) return 0;
  return static_cast<std::size_t>(fnv1a(flow_bytes(packet)) % workers);
}

std::size_t RouterPool::submit(std::vector<std::uint8_t> packet, FaceId ingress,
                               SimTime now) {
  const std::size_t idx = shard_of(packet, workers_.size());
  Worker& w = *workers_[idx];
  Item item{std::move(packet), ingress, now};
  while (!w.ring.try_push(std::move(item))) {
    if (config_.overload == OverloadPolicy::kShed) {
      shed(idx, item);
      return idx;
    }
    // Ring full: make sure the worker is draining it, then yield.
    if (w.parked.exchange(false, std::memory_order_seq_cst)) wake(w);
    std::this_thread::yield();
  }
  ++w.submitted;
  // Dekker handshake with the worker's park sequence (store parked; fence;
  // check ring): after our release push, a seq_cst fence and a parked read
  // guarantee we either see parked==true here or the worker sees the item.
  // The wake_threshold batches wakeups (drain() flushes any sub-threshold
  // tail), and exchange() claims the wake, so a parked worker costs one
  // notify per park, not one per submit.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (w.ring.size() >= w.wake_threshold &&
      w.parked.load(std::memory_order_relaxed) &&
      w.parked.exchange(false, std::memory_order_seq_cst)) {
    wake(w);
  }
  return idx;
}

std::optional<std::size_t> RouterPool::try_submit(std::vector<std::uint8_t> packet,
                                                  FaceId ingress, SimTime now) {
  const std::size_t idx = shard_of(packet, workers_.size());
  Worker& w = *workers_[idx];
  Item item{std::move(packet), ingress, now};
  if (!w.ring.try_push(std::move(item))) {
    // Nudge the worker so the overload clears, then shed this packet.
    if (w.parked.exchange(false, std::memory_order_seq_cst)) wake(w);
    shed(idx, item);
    return std::nullopt;
  }
  ++w.submitted;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (w.ring.size() >= w.wake_threshold &&
      w.parked.load(std::memory_order_relaxed) &&
      w.parked.exchange(false, std::memory_order_seq_cst)) {
    wake(w);
  }
  return idx;
}

void RouterPool::shed(std::size_t worker, Item& item) {
  ++workers_[worker]->shed;
  if (on_complete_) {
    // The one completion that runs on the dispatcher thread, not the
    // worker's: the packet never reached a worker.
    ProcessResult result;
    result.drop(DropReason::kOverloadShed);
    on_complete_(worker, item, result);
  }
}

std::uint64_t RouterPool::shed_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->shed.load();
  return total;
}

void RouterPool::wake(Worker& w) {
  // Lock before notifying: serializes with the worker between its ring
  // re-check and cv.wait, so the notify cannot fall into that window.
  std::lock_guard<std::mutex> lk(w.m);
  w.cv.notify_one();
}

void RouterPool::worker_main(Worker& w) {
  std::vector<Item> items(config_.max_batch);
  std::vector<PacketRef> refs(config_.max_batch);
  std::vector<ProcessResult> results(config_.max_batch);

  // Join the reader protocol before the first table read: the slot starts
  // at kIdle, and min_seen_locked() skips kIdle slots, so without this a
  // first-iteration burst (ring already non-empty at thread start) would
  // read snapshots a concurrent publish+reclaim is free to delete.
  w.router->env().ctrl_resume();

  for (;;) {
    const std::size_t n = w.ring.pop_bulk({items.data(), items.size()});
    if (n == 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      {
        // About to block with no packets in flight: tell the control plane
        // this reader holds no snapshot pointers, so a parked worker never
        // stalls grace-period reclamation (no-op without a control plane).
        w.router->env().ctrl_park();
        std::unique_lock<std::mutex> lk(w.m);
        for (;;) {
          // Republish on every pass: the producer's exchange() may have
          // consumed the flag while we were (spuriously) awake.
          w.parked.store(true, std::memory_order_relaxed);
          std::atomic_thread_fence(std::memory_order_seq_cst);
          if (!w.ring.empty() || !running_.load(std::memory_order_acquire)) break;
          w.cv.wait(lk);
        }
        w.parked.store(false, std::memory_order_relaxed);
      }
      // Re-join the reader protocol before the next table read.
      w.router->env().ctrl_resume();
      continue;
    }

    // Process the burst in runs sharing (ingress, now) — process_batch takes
    // one of each; a steady trace produces full-length runs.
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && items[j].ingress == items[i].ingress &&
             items[j].now == items[i].now) {
        ++j;
      }
      for (std::size_t k = i; k < j; ++k) refs[k - i] = PacketRef(items[k].packet);
      w.router->process_batch({refs.data(), j - i}, items[i].ingress, items[i].now,
                              {results.data(), j - i});
      if (on_complete_) {
        for (std::size_t k = i; k < j; ++k) {
          on_complete_(w.index, items[k], results[k - i]);
        }
      }
      i = j;
    }
    w.completed.fetch_add(n, std::memory_order_release);
  }
}

void RouterPool::drain() {
  for (auto& w : workers_) {
    while (w->completed.load(std::memory_order_acquire) != w->submitted) {
      // Insurance against any transient park-with-work state.
      if (!w->ring.empty() && w->parked.exchange(false, std::memory_order_seq_cst)) {
        wake(*w);
      }
      std::this_thread::yield();
    }
  }
}

void RouterPool::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& w : workers_) wake(*w);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Workers drain their rings before exiting (pop_bulk hits empty before the
  // !running_ check), so stop() == drain + join for anything submitted
  // before the stop.
}

telemetry::CounterSnapshot RouterPool::counters() const {
  std::vector<const telemetry::RouterCounters*> all;
  all.reserve(workers_.size());
  for (const auto& w : workers_) all.push_back(&w->router->env().counters);
  return telemetry::aggregate(all);
}

namespace {

// KeyNamer over fn_by_key slots (slot = key % 32; live keys are 1..16, so
// the mapping is exact and unused slots never render).
std::string_view key_slot_name(std::size_t slot) {
  return op_key_name(static_cast<OpKey>(slot));
}

}  // namespace

void RouterPool::write_stats(telemetry::StatsWriter& w) const {
  // Fleet view: aggregated counters, then latency histograms merged across
  // every worker that has RouterEnv::stats installed.
  telemetry::write_counter_snapshot(w, counters(), {}, &key_slot_name);
  w.counter("dip_shed_total", {}, shed_total());

  telemetry::HistogramSnapshot bind, validate, dispatch;
  std::array<telemetry::HistogramSnapshot, telemetry::RouterStats::kOpKeySlots> fn{};
  std::uint64_t sampled = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t burst_packets = 0, burst_bound = 0, burst_wave = 0,
                burst_legacy = 0;
  std::uint64_t arena_high_water = 0, arena_capacity = 0;
  bool any_stats = false;
  for (const auto& worker : workers_) {
    const telemetry::RouterStats* stats = worker->router->env().stats.get();
    if (stats == nullptr) continue;
    any_stats = true;
    bind += stats->phase_bind.snapshot();
    validate += stats->phase_validate.snapshot();
    dispatch += stats->phase_dispatch.snapshot();
    for (std::size_t k = 0; k < fn.size(); ++k) fn[k] += stats->fn_ns[k].snapshot();
    sampled += stats->trace.pushed();
    trace_dropped += stats->trace.dropped();
    burst_packets += stats->burst_packets.load();
    burst_bound += stats->burst_bound.load();
    burst_wave += stats->burst_wave.load();
    burst_legacy += stats->burst_legacy.load();
    arena_high_water = std::max(arena_high_water, stats->arena_high_water.load());
    arena_capacity += stats->arena_capacity.load();
  }
  if (any_stats) {
    const telemetry::Label bind_l[] = {{"phase", "bind"}};
    const telemetry::Label validate_l[] = {{"phase", "validate"}};
    const telemetry::Label dispatch_l[] = {{"phase", "dispatch"}};
    telemetry::write_histogram(w, "dip_phase_latency_ns", bind_l, bind);
    telemetry::write_histogram(w, "dip_phase_latency_ns", validate_l, validate);
    telemetry::write_histogram(w, "dip_phase_latency_ns", dispatch_l, dispatch);
    for (std::size_t k = 0; k < fn.size(); ++k) {
      if (fn[k].count == 0) continue;
      const telemetry::Label fn_l[] = {{"fn", key_slot_name(k)}};
      telemetry::write_histogram(w, "dip_fn_latency_ns", fn_l, fn[k]);
    }
    w.counter("dip_trace_sampled_total", {}, sampled);
    w.counter("dip_trace_dropped_total", {}, trace_dropped);
    // Burst-pipeline occupancy and arena footprint (fleet: counters sum,
    // high-water takes the max across workers, capacity sums the retained
    // per-worker reserves).
    w.counter("dip_burst_packets_total", {}, burst_packets);
    w.counter("dip_burst_bound_total", {}, burst_bound);
    w.counter("dip_burst_wave_total", {}, burst_wave);
    w.counter("dip_burst_legacy_total", {}, burst_legacy);
    w.gauge("dip_arena_high_water_bytes", {},
            static_cast<double>(arena_high_water));
    w.gauge("dip_arena_capacity_bytes", {}, static_cast<double>(arena_capacity));
  }

  // Per-worker series: the fleet counters above are exactly the sum of
  // these (stats_test pins that invariant), plus live queue depths.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::string idx = std::to_string(i);
    const telemetry::Label labels[] = {{"worker", idx}};
    telemetry::write_counter_snapshot(
        w, workers_[i]->router->env().counters.snapshot(), labels,
        &key_slot_name);
    w.counter("dip_worker_shed_total", labels, workers_[i]->shed.load());
    w.counter("dip_worker_queue_depth", labels, queue_depth(i));
  }
}

void RouterPool::register_stats(telemetry::StatsRegistry& registry) const {
  registry.add("router_pool",
               [this](telemetry::StatsWriter& w) { write_stats(w); });
}

std::string RouterPool::dump_stats() const {
  telemetry::StatsWriter w;
  write_stats(w);
  return w.take();
}

}  // namespace dip::core
