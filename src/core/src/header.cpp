#include "dip/core/header.hpp"

#include <cassert>

namespace dip::core {

bytes::Status DipHeader::serialize(std::span<std::uint8_t> out) const {
  if (fns.size() > 255) return bytes::Unexpected{bytes::Error::kOverflow};
  if (locations.size() > BasicHeader::kMaxLocLen) {
    return bytes::Unexpected{bytes::Error::kOverflow};
  }

  bytes::Writer w(out);
  BasicHeader b = basic;
  b.fn_num = static_cast<std::uint8_t>(fns.size());
  b.loc_len = static_cast<std::uint16_t>(locations.size());

  if (auto st = w.u8(b.next_header); !st) return st;
  if (auto st = w.u8(b.fn_num); !st) return st;
  if (auto st = w.u8(b.hop_limit); !st) return st;
  if (auto st = w.u16(detail::encode_packet_param(b)); !st) return st;
  if (auto st = w.u8(basic_header_checksum(w.written())); !st) return st;

  for (const FnTriple& fn : fns) {
    if (auto st = w.u16(fn.field_loc); !st) return st;
    if (auto st = w.u16(fn.field_len); !st) return st;
    if (auto st = w.u16(fn.op); !st) return st;
  }
  return w.bytes(locations);
}

std::vector<std::uint8_t> DipHeader::serialize() const {
  std::vector<std::uint8_t> out(wire_size());
  const auto st = serialize(out);
  assert(st.has_value());
  (void)st;
  return out;
}

bytes::Result<DipHeader> DipHeader::parse(std::span<const std::uint8_t> data) {
  bytes::Reader r(data);
  DipHeader h;

  const auto next_header = r.u8();
  const auto fn_num = r.u8();
  const auto hop_limit = r.u8();
  const auto param = r.u16();
  const auto check = r.u8();
  if (!next_header || !fn_num || !hop_limit || !param || !check) {
    return bytes::Err(bytes::Error::kTruncated);
  }
  if (*check != basic_header_checksum(data.subspan(0, 5))) {
    return bytes::Err(bytes::Error::kChecksum);
  }

  h.basic.next_header = *next_header;
  h.basic.fn_num = *fn_num;
  h.basic.hop_limit = *hop_limit;
  detail::decode_packet_param(*param, h.basic);

  h.fns.reserve(h.basic.fn_num);
  for (std::uint8_t i = 0; i < h.basic.fn_num; ++i) {
    const auto loc = r.u16();
    const auto len = r.u16();
    const auto op = r.u16();
    if (!loc || !len || !op) return bytes::Err(bytes::Error::kTruncated);
    h.fns.push_back(FnTriple{*loc, *len, *op});
  }

  const auto locs = r.bytes(h.basic.loc_len);
  if (!locs) return bytes::Err(bytes::Error::kTruncated);
  h.locations.assign(locs->begin(), locs->end());

  // Every FN must address bits inside the locations block.
  for (const FnTriple& fn : h.fns) {
    if (!bytes::fits(fn.range(), h.locations.size())) {
      return bytes::Err(bytes::Error::kMalformed);
    }
  }
  return h;
}

bytes::Result<HeaderView> HeaderView::bind(std::span<std::uint8_t> packet) {
  HeaderView v;
  if (auto st = bind_into(packet, v); !st) return bytes::Err(st.error());
  return v;
}

}  // namespace dip::core
