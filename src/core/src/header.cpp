#include "dip/core/header.hpp"

#include <cassert>

namespace dip::core {

namespace {

constexpr std::uint16_t kParallelBit = 0x0001;
constexpr std::uint16_t kLocLenShift = 1;
constexpr std::uint16_t kLocLenMask = 0x03ff;

[[nodiscard]] std::uint16_t encode_param(const BasicHeader& b) noexcept {
  return static_cast<std::uint16_t>((b.parallel ? kParallelBit : 0) |
                                    ((b.loc_len & kLocLenMask) << kLocLenShift));
}

void decode_param(std::uint16_t param, BasicHeader& b) noexcept {
  b.parallel = (param & kParallelBit) != 0;
  b.loc_len = static_cast<std::uint16_t>((param >> kLocLenShift) & kLocLenMask);
}

}  // namespace

std::uint8_t basic_header_checksum(std::span<const std::uint8_t> first5) noexcept {
  std::uint8_t x = 0xDB;  // domain separator so all-zero headers don't verify
  for (std::size_t i = 0; i < 5 && i < first5.size(); ++i) x ^= first5[i];
  return x;
}

bytes::Status DipHeader::serialize(std::span<std::uint8_t> out) const {
  if (fns.size() > 255) return bytes::Unexpected{bytes::Error::kOverflow};
  if (locations.size() > BasicHeader::kMaxLocLen) {
    return bytes::Unexpected{bytes::Error::kOverflow};
  }

  bytes::Writer w(out);
  BasicHeader b = basic;
  b.fn_num = static_cast<std::uint8_t>(fns.size());
  b.loc_len = static_cast<std::uint16_t>(locations.size());

  if (auto st = w.u8(b.next_header); !st) return st;
  if (auto st = w.u8(b.fn_num); !st) return st;
  if (auto st = w.u8(b.hop_limit); !st) return st;
  if (auto st = w.u16(encode_param(b)); !st) return st;
  if (auto st = w.u8(basic_header_checksum(w.written())); !st) return st;

  for (const FnTriple& fn : fns) {
    if (auto st = w.u16(fn.field_loc); !st) return st;
    if (auto st = w.u16(fn.field_len); !st) return st;
    if (auto st = w.u16(fn.op); !st) return st;
  }
  return w.bytes(locations);
}

std::vector<std::uint8_t> DipHeader::serialize() const {
  std::vector<std::uint8_t> out(wire_size());
  const auto st = serialize(out);
  assert(st.has_value());
  (void)st;
  return out;
}

bytes::Result<DipHeader> DipHeader::parse(std::span<const std::uint8_t> data) {
  bytes::Reader r(data);
  DipHeader h;

  const auto next_header = r.u8();
  const auto fn_num = r.u8();
  const auto hop_limit = r.u8();
  const auto param = r.u16();
  const auto check = r.u8();
  if (!next_header || !fn_num || !hop_limit || !param || !check) {
    return bytes::Err(bytes::Error::kTruncated);
  }
  if (*check != basic_header_checksum(data.subspan(0, 5))) {
    return bytes::Err(bytes::Error::kChecksum);
  }

  h.basic.next_header = *next_header;
  h.basic.fn_num = *fn_num;
  h.basic.hop_limit = *hop_limit;
  decode_param(*param, h.basic);

  h.fns.reserve(h.basic.fn_num);
  for (std::uint8_t i = 0; i < h.basic.fn_num; ++i) {
    const auto loc = r.u16();
    const auto len = r.u16();
    const auto op = r.u16();
    if (!loc || !len || !op) return bytes::Err(bytes::Error::kTruncated);
    h.fns.push_back(FnTriple{*loc, *len, *op});
  }

  const auto locs = r.bytes(h.basic.loc_len);
  if (!locs) return bytes::Err(bytes::Error::kTruncated);
  h.locations.assign(locs->begin(), locs->end());

  // Every FN must address bits inside the locations block.
  for (const FnTriple& fn : h.fns) {
    if (!bytes::fits(fn.range(), h.locations.size())) {
      return bytes::Err(bytes::Error::kMalformed);
    }
  }
  return h;
}

bytes::Result<HeaderView> HeaderView::bind(std::span<std::uint8_t> packet) {
  HeaderView v;
  v.raw_ = packet;

  if (packet.size() < BasicHeader::kWireSize) return bytes::Err(bytes::Error::kTruncated);
  if (packet[5] != basic_header_checksum(packet.subspan(0, 5))) {
    return bytes::Err(bytes::Error::kChecksum);
  }
  v.basic_.next_header = packet[0];
  v.basic_.fn_num = packet[1];
  v.basic_.hop_limit = packet[2];
  decode_param(static_cast<std::uint16_t>((packet[3] << 8) | packet[4]), v.basic_);

  if (v.basic_.fn_num > kMaxFns) return bytes::Err(bytes::Error::kUnsupported);
  const std::size_t fns_bytes = v.basic_.fn_num * FnTriple::kWireSize;
  const std::size_t header_size = BasicHeader::kWireSize + fns_bytes + v.basic_.loc_len;
  if (packet.size() < header_size) return bytes::Err(bytes::Error::kTruncated);

  for (std::size_t i = 0; i < v.basic_.fn_num; ++i) {
    const std::size_t off = BasicHeader::kWireSize + i * FnTriple::kWireSize;
    FnTriple fn;
    fn.field_loc = static_cast<std::uint16_t>((packet[off] << 8) | packet[off + 1]);
    fn.field_len = static_cast<std::uint16_t>((packet[off + 2] << 8) | packet[off + 3]);
    fn.op = static_cast<std::uint16_t>((packet[off + 4] << 8) | packet[off + 5]);
    if (!bytes::fits(fn.range(), v.basic_.loc_len)) {
      return bytes::Err(bytes::Error::kMalformed);
    }
    v.fns_[i] = fn;
  }
  v.fn_count_ = v.basic_.fn_num;
  v.locations_ = packet.subspan(BasicHeader::kWireSize + fns_bytes, v.basic_.loc_len);
  v.payload_ = packet.subspan(header_size);
  return v;
}

bool HeaderView::decrement_hop_limit() noexcept {
  if (basic_.hop_limit == 0) return false;
  --basic_.hop_limit;
  raw_[2] = basic_.hop_limit;
  raw_[5] = basic_header_checksum(raw_.subspan(0, 5));
  return basic_.hop_limit > 0;
}

}  // namespace dip::core
