#include "dip/core/engine.hpp"

#include <cassert>
#include <deque>
#include <mutex>
#include <utility>

#include "dip/core/router_pool.hpp"

namespace dip::core {

namespace {

class ScalarEngine final : public RouterEngine {
 public:
  ScalarEngine(const OpRegistry* registry, const EnvFactory& env_factory,
               EngineConfig config)
      : router_(env_factory(0), registry, config.strategy) {
    router_.set_validation(config.validation);
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "scalar"; }

  std::vector<ProcessResult> run(std::span<std::vector<std::uint8_t>> packets,
                                 std::span<const SimTime> nows,
                                 std::span<const FaceId> ingresses) override {
    assert(nows.size() == packets.size() && ingresses.size() == packets.size());
    std::vector<ProcessResult> results;
    results.reserve(packets.size());
    for (std::size_t i = 0; i < packets.size(); ++i) {
      results.push_back(router_.process(packets[i], ingresses[i], nows[i]));
    }
    return results;
  }

 private:
  Router router_;
};

class BatchEngine final : public RouterEngine {
 public:
  BatchEngine(const OpRegistry* registry, const EnvFactory& env_factory,
              EngineConfig config)
      : router_(env_factory(0), registry, config.strategy),
        batch_size_(config.batch_size == 0 ? 1 : config.batch_size) {
    router_.set_validation(config.validation);
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "batch"; }

  std::vector<ProcessResult> run(std::span<std::vector<std::uint8_t>> packets,
                                 std::span<const SimTime> nows,
                                 std::span<const FaceId> ingresses) override {
    assert(nows.size() == packets.size() && ingresses.size() == packets.size());
    std::vector<ProcessResult> results(packets.size());
    std::vector<PacketRef> refs;
    for (std::size_t pos = 0; pos < packets.size(); pos += batch_size_) {
      const std::size_t n = std::min(batch_size_, packets.size() - pos);
      refs.assign(packets.begin() + static_cast<std::ptrdiff_t>(pos),
                  packets.begin() + static_cast<std::ptrdiff_t>(pos + n));
      // Burst semantics: the whole burst shares its first packet's clock
      // and ingress face (see EngineConfig::batch_size contract).
      router_.process_batch(refs, ingresses[pos], nows[pos],
                            std::span<ProcessResult>(results).subspan(pos, n));
    }
    return results;
  }

 private:
  Router router_;
  std::size_t batch_size_;
};

class PoolEngine final : public RouterEngine {
 public:
  PoolEngine(const OpRegistry* registry, const EnvFactory& env_factory,
             EngineConfig config)
      : registry_(registry), env_factory_(env_factory), config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "pool"; }

  std::vector<ProcessResult> run(std::span<std::vector<std::uint8_t>> packets,
                                 std::span<const SimTime> nows,
                                 std::span<const FaceId> ingresses) override {
    assert(nows.size() == packets.size() && ingresses.size() == packets.size());
    const std::size_t workers = config_.pool_workers == 0 ? 1 : config_.pool_workers;

    // Flow-affine sharding is a pure function of the submitted bytes, and
    // each worker completes its packets in submission order (SPSC ring), so
    // the stream index of every completion is known up front.
    std::vector<std::deque<std::size_t>> expected(workers);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      expected[RouterPool::shard_of(packets[i], workers)].push_back(i);
    }

    std::vector<ProcessResult> results(packets.size());
    std::mutex mu;
    RouterPoolConfig pool_config;
    pool_config.workers = workers;
    pool_config.ring_capacity = config_.pool_ring_capacity;
    pool_config.max_batch = config_.batch_size;
    pool_config.strategy = config_.strategy;
    RouterPool pool(
        registry_, env_factory_, pool_config,
        [&](std::size_t worker, RouterPool::Item& item, ProcessResult& result) {
          const std::lock_guard<std::mutex> lock(mu);
          const std::size_t idx = expected[worker].front();
          expected[worker].pop_front();
          results[idx] = result;
          // Hand the rewritten bytes back so the harness can compare them.
          packets[idx] = std::move(item.packet);
        });
    for (std::size_t w = 0; w < workers; ++w) {
      pool.router(w).set_validation(config_.validation);
    }
    for (std::size_t i = 0; i < packets.size(); ++i) {
      pool.submit(packets[i], ingresses[i], nows[i]);
    }
    pool.stop();
    return results;
  }

 private:
  const OpRegistry* registry_;
  EnvFactory env_factory_;
  EngineConfig config_;
};

}  // namespace

std::unique_ptr<RouterEngine> make_scalar_engine(const OpRegistry* registry,
                                                 const EnvFactory& env_factory,
                                                 EngineConfig config) {
  return std::make_unique<ScalarEngine>(registry, env_factory, config);
}

std::unique_ptr<RouterEngine> make_batch_engine(const OpRegistry* registry,
                                                const EnvFactory& env_factory,
                                                EngineConfig config) {
  return std::make_unique<BatchEngine>(registry, env_factory, config);
}

std::unique_ptr<RouterEngine> make_pool_engine(const OpRegistry* registry,
                                               const EnvFactory& env_factory,
                                               EngineConfig config) {
  return std::make_unique<PoolEngine>(registry, env_factory, config);
}

}  // namespace dip::core
