#include "dip/core/fn.hpp"

namespace dip::core {

namespace {

// Table 1 of the paper plus the §2.4/§5 extension FNs. `requires_full_path`
// follows the §2.4 rule: FNs that need every on-path AS to participate (the
// path-authentication chain) trigger an FN-unsupported notification when a
// node cannot honor them; the rest may simply be ignored.
// The last column marks order-independent FNs (§2.2 parallel bit): pure
// functions of their own field and read-mostly tables. Everything that
// composes through OpScratch (the OPT chain, EPIC), mutates per-flow state
// (PIT, DPS buckets), or feeds a later FN's verdict stays order-dependent.
constexpr FnInfo kFnTable[] = {
    {OpKey::kMatch32, "F_32_match", false, 2, true},
    {OpKey::kMatch128, "F_128_match", false, 3, true},
    {OpKey::kSource, "F_source", false, 1, true},
    {OpKey::kFib, "F_FIB", false, 2, false},
    {OpKey::kPit, "F_PIT", false, 2, false},
    {OpKey::kParm, "F_parm", true, 2, false},
    {OpKey::kMac, "F_MAC", true, 8, false},
    {OpKey::kMark, "F_mark", true, 2, false},
    {OpKey::kVer, "F_ver", true, 10, false},
    {OpKey::kDag, "F_DAG", false, 4, false},
    {OpKey::kIntent, "F_intent", false, 2, false},
    {OpKey::kPass, "F_pass", false, 6, false},
    {OpKey::kTelemetry, "F_int", false, 2, true},
    {OpKey::kCc, "F_cc", false, 4, false},
    {OpKey::kDps, "F_dps", false, 3, false},
    // Per-hop verification needs every on-path node, like the OPT chain.
    {OpKey::kHvf, "F_hvf", true, 6, false},
};

}  // namespace

std::string_view op_key_name(OpKey key) noexcept {
  for (const FnInfo& info : kFnTable) {
    if (info.key == key) return info.notation;
  }
  return "F_?";
}

std::optional<FnInfo> fn_info(OpKey key) noexcept {
  for (const FnInfo& info : kFnTable) {
    if (info.key == key) return info;
  }
  return std::nullopt;
}

}  // namespace dip::core
