#include "dip/core/fn.hpp"

namespace dip::core {

namespace {

// Table 1 of the paper plus the §2.4/§5 extension FNs. `requires_full_path`
// follows the §2.4 rule: FNs that need every on-path AS to participate (the
// path-authentication chain) trigger an FN-unsupported notification when a
// node cannot honor them; the rest may simply be ignored.
constexpr FnInfo kFnTable[] = {
    {OpKey::kMatch32, "F_32_match", false, 2},
    {OpKey::kMatch128, "F_128_match", false, 3},
    {OpKey::kSource, "F_source", false, 1},
    {OpKey::kFib, "F_FIB", false, 2},
    {OpKey::kPit, "F_PIT", false, 2},
    {OpKey::kParm, "F_parm", true, 2},
    {OpKey::kMac, "F_MAC", true, 8},
    {OpKey::kMark, "F_mark", true, 2},
    {OpKey::kVer, "F_ver", true, 10},
    {OpKey::kDag, "F_DAG", false, 4},
    {OpKey::kIntent, "F_intent", false, 2},
    {OpKey::kPass, "F_pass", false, 6},
    {OpKey::kTelemetry, "F_int", false, 2},
    {OpKey::kCc, "F_cc", false, 4},
    {OpKey::kDps, "F_dps", false, 3},
    // Per-hop verification needs every on-path node, like the OPT chain.
    {OpKey::kHvf, "F_hvf", true, 6},
};

}  // namespace

std::string_view op_key_name(OpKey key) noexcept {
  for (const FnInfo& info : kFnTable) {
    if (info.key == key) return info.notation;
  }
  return "F_?";
}

std::optional<FnInfo> fn_info(OpKey key) noexcept {
  for (const FnInfo& info : kFnTable) {
    if (info.key == key) return info;
  }
  return std::nullopt;
}

}  // namespace dip::core
