#include "dip/core/fn.hpp"

namespace dip::core {

namespace {

// Table 1 of the paper plus the §2.4/§5 extension FNs. `requires_full_path`
// follows the §2.4 rule: FNs that need every on-path AS to participate (the
// path-authentication chain) trigger an FN-unsupported notification when a
// node cannot honor them; the rest may simply be ignored.
// The last column marks order-independent FNs (§2.2 parallel bit): pure
// functions of their own field and read-mostly tables. Everything that
// composes through OpScratch (the OPT chain, EPIC), mutates per-flow state
// (PIT, DPS buckets), or feeds a later FN's verdict stays order-dependent.
// The last column is burst_commutes (cross-packet commutation, the wave-
// dispatch license): true for FNs that touch only their own packet or
// memoized read-mostly tables (matches, the OPT chain — whose scratch is
// per-packet even though it is order-dependent *within* the packet, EPIC).
// False for anything whose shared state a later packet observes: PIT and
// content store (kFib/kPit, and kDag/kIntent which read the CS), DPS
// buckets, CC estimators.
constexpr FnInfo kFnTable[] = {
    {OpKey::kMatch32, "F_32_match", false, 2, true, true},
    {OpKey::kMatch128, "F_128_match", false, 3, true, true},
    {OpKey::kSource, "F_source", false, 1, true, true},
    {OpKey::kFib, "F_FIB", false, 2, false, false},
    {OpKey::kPit, "F_PIT", false, 2, false, false},
    {OpKey::kParm, "F_parm", true, 2, false, true},
    {OpKey::kMac, "F_MAC", true, 8, false, true},
    {OpKey::kMark, "F_mark", true, 2, false, true},
    {OpKey::kVer, "F_ver", true, 10, false, true},
    {OpKey::kDag, "F_DAG", false, 4, false, false},
    {OpKey::kIntent, "F_intent", false, 2, false, false},
    {OpKey::kPass, "F_pass", false, 6, false, true},
    {OpKey::kTelemetry, "F_int", false, 2, true, true},
    {OpKey::kCc, "F_cc", false, 4, false, false},
    {OpKey::kDps, "F_dps", false, 3, false, false},
    // Per-hop verification needs every on-path node, like the OPT chain.
    {OpKey::kHvf, "F_hvf", true, 6, false, true},
    // Custody transfer mutates the tag in place (accept stamps the local
    // node as custodian) and its verdict depends on per-node custody state,
    // so neither FN-order nor cross-packet commutation is licensed. A
    // non-DTN router may skip it (requires_full_path=false): custody is an
    // overlay over whichever nodes opt in.
    {OpKey::kCustody, "F_custody", false, 5, false, false},
    // Fragment metadata is carried for the receiving host's reassembly; the
    // router only bounds-checks it.
    {OpKey::kBundleFrag, "F_frag", false, 1, true, true},
};

}  // namespace

std::string_view op_key_name(OpKey key) noexcept {
  for (const FnInfo& info : kFnTable) {
    if (info.key == key) return info.notation;
  }
  return "F_?";
}

std::span<const FnInfo> fn_table() noexcept { return kFnTable; }

std::optional<FnInfo> fn_info(OpKey key) noexcept {
  for (const FnInfo& info : kFnTable) {
    if (info.key == key) return info;
  }
  return std::nullopt;
}

bool op_burst_commutes(OpKey key) noexcept {
  static constexpr auto kCommutes = [] {
    std::array<bool, 64> t{};
    for (const FnInfo& info : kFnTable) {
      const auto idx = static_cast<std::size_t>(info.key);
      if (idx < t.size()) t[idx] = info.burst_commutes;
    }
    return t;
  }();
  const auto idx = static_cast<std::size_t>(key);
  return idx < kCommutes.size() && kCommutes[idx];
}

}  // namespace dip::core
