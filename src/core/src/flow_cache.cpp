#include "dip/core/flow_cache.hpp"

namespace dip::core {

namespace {

[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlowCache::FlowCache(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

std::uint64_t FlowCache::hash_key(std::span<const std::uint8_t> key) noexcept {
  if (key.size() == 4) {
    // IPv4 match fields: one 32-bit load through a splitmix64 finalizer
    // beats the byte-serial FNV rounds below (four dependent multiplies).
    std::uint32_t w;
    std::memcpy(&w, key.data(), 4);
    std::uint64_t h = w + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h == 0 ? 1 : h;
  }
  // FNV-1a 64, finalized with a xor-shift mix so sequential addresses
  // spread across the table. Never returns 0 (0 marks an empty slot).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : key) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h == 0 ? 1 : h;
}

const FlowCache::Verdict* FlowCache::find(std::span<const std::uint8_t> key,
                                          std::uint64_t generation) noexcept {
  if (key.size() > kMaxKeyBytes) return nullptr;
  return find_hashed(key, hash_key(key), generation);
}

void FlowCache::insert(std::span<const std::uint8_t> key, std::uint64_t generation,
                       Verdict verdict) noexcept {
  if (key.size() > kMaxKeyBytes) return;
  const std::uint64_t h = hash_key(key);
  std::size_t at = static_cast<std::size_t>(h) & mask_;
  Slot* victim = nullptr;
  for (std::size_t probe = 0; probe < kProbeLimit; ++probe, at = (at + 1) & mask_) {
    Slot& slot = slots_[at];
    if (slot.hash == 0) {
      victim = &slot;
      ++entries_;
      break;
    }
    if (slot.hash == h && key_equals(slot, key)) {
      victim = &slot;  // refresh in place
      break;
    }
    if (slot.generation != generation) {
      victim = &slot;  // stale entry: reuse without growing the run
      ++evictions_;
      break;
    }
    if (probe + 1 == kProbeLimit) {
      victim = &slot;  // probe run full: clobber the tail slot
      ++evictions_;
    }
  }
  if (victim == nullptr) return;
  victim->hash = h;
  victim->generation = generation;
  victim->verdict = verdict;
  victim->key_len = static_cast<std::uint8_t>(key.size());
  std::memcpy(victim->key.data(), key.data(), key.size());
}

void FlowCache::clear() noexcept {
  for (Slot& slot : slots_) slot.hash = 0;
  entries_ = 0;
}

}  // namespace dip::core
