// EPIC-style per-hop packet authentication as a Field Operation.
//
// §1 of the paper: "OPT and EPIC, designed based on SCION, requires on-path
// routers to verify and update the cryptographically generated code carried
// [in] customized packet headers to achieve source validation and path
// authentication." OPT (see dip/opt) has routers *update* a chain the
// destination verifies; EPIC's distinguishing property is that every router
// *verifies its own hop field first* and drops forged traffic in the
// network — per-packet source authentication at every hop.
//
// Realization as one FN, F_hvf (key 16), over this locations block:
//
//   [0,16)   DataHash   — CMAC over payload keyed by session id
//   [16,32)  SessionID
//   [32,36)  Timestamp
//   [36]     hop_index  — which HVF the next router checks (cursor)
//   [37]     hop_count  — path length (≤ kMaxHops)
//   [38,40)  reserved
//   [40,40+4*hop_count) HVF array — 4-byte per-hop validation fields
//
// Source computes HVF_i = trunc4(MAC_{K_i}(DataHash|SessionID|Timestamp|i))
// for every hop from the negotiated hop keys. Router i recomputes and
// compares; on success it overwrites HVF_i with the proof-of-transit tag
// trunc4(MAC_{K_i}(DataHash|SessionID|Timestamp|i|0xP0T)) and advances
// hop_index; on mismatch the packet dies right there (kAuthFailed).
// The destination replays both computations to confirm every hop was
// visited in order.
#pragma once

#include <span>
#include <vector>

#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/opt/session.hpp"  // Session/negotiate_session are shared

namespace dip::epic {

inline constexpr std::size_t kMaxHops = 8;
inline constexpr std::size_t kHvfBytes = 4;
inline constexpr std::size_t kFixedBytes = 40;  // up to the HVF array

[[nodiscard]] constexpr std::size_t block_bytes(std::size_t hops) noexcept {
  return kFixedBytes + hops * kHvfBytes;
}

/// F_hvf (key 16): verify-then-update, per hop.
class HvfOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kHvf; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 5; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// Source side: build the locations block with one HVF per hop key.
[[nodiscard]] std::vector<std::uint8_t> make_source_block(
    const opt::Session& session, std::span<const std::uint8_t> payload,
    std::uint32_t timestamp);

/// Compose a standalone EPIC header (F_hvf covering the block, host-tagged
/// F_ver-style verification happens via verify_packet).
[[nodiscard]] bytes::Result<core::DipHeader> make_epic_header(
    const opt::Session& session, std::span<const std::uint8_t> payload,
    std::uint32_t timestamp, core::NextHeader next = core::NextHeader::kNone,
    std::uint8_t hop_limit = 64);

enum class VerifyResult : std::uint8_t {
  kOk,
  kBadDataHash,
  kBadSession,
  kIncompletePath,  ///< hop_index != hop_count: some hop was skipped
  kBadProof,        ///< a proof-of-transit tag is wrong
  kMalformed,
};

[[nodiscard]] std::string_view to_string(VerifyResult r) noexcept;

/// Destination side: confirm every hop verified-and-stamped in order.
[[nodiscard]] VerifyResult verify_packet(const opt::Session& session,
                                         std::span<const std::uint8_t> locations,
                                         std::span<const std::uint8_t> payload,
                                         std::size_t block_offset = 0);

}  // namespace dip::epic
