#include "dip/epic/epic.hpp"

#include <cstring>

#include "dip/crypto/drkey.hpp"

namespace dip::epic {

namespace {

constexpr std::size_t kDataHashOffset = 0;
constexpr std::size_t kSessionOffset = 16;
constexpr std::size_t kTimestampOffset = 32;
constexpr std::size_t kHopIndexOffset = 36;
constexpr std::size_t kHopCountOffset = 37;
constexpr std::size_t kHvfArrayOffset = kFixedBytes;

// Domain separators for the two tag flavors.
constexpr std::uint8_t kTagValidate = 0x00;
constexpr std::uint8_t kTagProof = 0x50;  // "P0T"

/// trunc4(MAC_{key}(DataHash|SessionID|Timestamp|hop|flavor)).
std::array<std::uint8_t, kHvfBytes> hop_tag(const crypto::Block& key,
                                            std::span<const std::uint8_t> block,
                                            std::uint8_t hop, std::uint8_t flavor,
                                            crypto::MacKind kind) {
  std::array<std::uint8_t, 38> input{};
  std::memcpy(input.data(), block.data(), 36);  // hash | session | ts
  input[36] = hop;
  input[37] = flavor;
  // Stack-constructed MAC: F_hvf runs twice per packet on the router fast
  // path, so the make_mac heap allocation is avoided.
  const crypto::Block mac = kind == crypto::MacKind::kEm2
                                ? crypto::Em2Mac(key).compute(input)
                                : crypto::AesCmac(key).compute(input);
  std::array<std::uint8_t, kHvfBytes> out{};
  std::memcpy(out.data(), mac.data(), kHvfBytes);
  return out;
}

bool tag_equal(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kHvfBytes; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace

bytes::Status HvfOp::execute(core::OpContext& ctx) {
  auto block = ctx.target_bytes();
  if (block.size() < kFixedBytes) return bytes::Unexpected{bytes::Error::kMalformed};

  const std::uint8_t hop_index = block[kHopIndexOffset];
  const std::uint8_t hop_count = block[kHopCountOffset];
  if (hop_count > kMaxHops || block.size() < block_bytes(hop_count)) {
    return bytes::Unexpected{bytes::Error::kMalformed};
  }
  if (hop_index >= hop_count) {
    // More routers on the path than hop fields: the source lied about the
    // path length — EPIC drops.
    ctx.result->drop(core::DropReason::kAuthFailed);
    return {};
  }

  // Derive this hop's key from the session id, exactly as OPT's F_parm.
  const crypto::SessionId sid =
      crypto::block_from(block.subspan(kSessionOffset, 16));
  const crypto::Block key = crypto::DrKey(ctx.env->node_secret).derive(sid);

  auto hvf = block.subspan(kHvfArrayOffset + hop_index * kHvfBytes, kHvfBytes);
  const auto expected = hop_tag(key, block, hop_index, kTagValidate, ctx.env->mac_kind);
  if (!tag_equal(hvf, expected)) {
    // THE EPIC property: forged traffic dies here, not at the destination.
    ctx.result->drop(core::DropReason::kAuthFailed);
    return {};
  }

  const auto proof = hop_tag(key, block, hop_index, kTagProof, ctx.env->mac_kind);
  std::memcpy(hvf.data(), proof.data(), kHvfBytes);
  block[kHopIndexOffset] = static_cast<std::uint8_t>(hop_index + 1);
  return {};
}

std::vector<std::uint8_t> make_source_block(const opt::Session& session,
                                            std::span<const std::uint8_t> payload,
                                            std::uint32_t timestamp) {
  const std::size_t hops = std::min(session.router_keys.size(), kMaxHops);
  std::vector<std::uint8_t> block(block_bytes(hops));

  const crypto::Block dh = opt::data_hash(session.id, payload, session.mac_kind);
  std::memcpy(block.data() + kDataHashOffset, dh.data(), 16);
  std::memcpy(block.data() + kSessionOffset, session.id.data(), 16);
  for (int i = 0; i < 4; ++i) {
    block[kTimestampOffset + i] = static_cast<std::uint8_t>(timestamp >> (8 * (3 - i)));
  }
  block[kHopIndexOffset] = 0;
  block[kHopCountOffset] = static_cast<std::uint8_t>(hops);

  for (std::size_t i = 0; i < hops; ++i) {
    const auto tag = hop_tag(session.router_keys[i], block,
                             static_cast<std::uint8_t>(i), kTagValidate,
                             session.mac_kind);
    std::memcpy(block.data() + kHvfArrayOffset + i * kHvfBytes, tag.data(), kHvfBytes);
  }
  return block;
}

bytes::Result<core::DipHeader> make_epic_header(const opt::Session& session,
                                                std::span<const std::uint8_t> payload,
                                                std::uint32_t timestamp,
                                                core::NextHeader next,
                                                std::uint8_t hop_limit) {
  const auto block = make_source_block(session, payload, timestamp);
  core::HeaderBuilder b;
  b.next_header(next).hop_limit(hop_limit);
  b.add_router_fn(core::OpKey::kHvf, block);
  return b.build();
}

std::string_view to_string(VerifyResult r) noexcept {
  switch (r) {
    case VerifyResult::kOk: return "ok";
    case VerifyResult::kBadDataHash: return "bad-data-hash";
    case VerifyResult::kBadSession: return "bad-session";
    case VerifyResult::kIncompletePath: return "incomplete-path";
    case VerifyResult::kBadProof: return "bad-proof";
    case VerifyResult::kMalformed: return "malformed";
  }
  return "unknown";
}

VerifyResult verify_packet(const opt::Session& session,
                           std::span<const std::uint8_t> locations,
                           std::span<const std::uint8_t> payload,
                           std::size_t block_offset) {
  if (locations.size() < block_offset + kFixedBytes) return VerifyResult::kMalformed;
  const auto block = locations.subspan(block_offset);
  const std::uint8_t hop_index = block[kHopIndexOffset];
  const std::uint8_t hop_count = block[kHopCountOffset];
  if (hop_count > kMaxHops || block.size() < block_bytes(hop_count)) {
    return VerifyResult::kMalformed;
  }

  if (std::memcmp(block.data() + kSessionOffset, session.id.data(), 16) != 0) {
    return VerifyResult::kBadSession;
  }
  const crypto::Block dh = opt::data_hash(session.id, payload, session.mac_kind);
  if (!crypto::block_equal_ct(
          dh, crypto::block_from(block.subspan(kDataHashOffset, 16)))) {
    return VerifyResult::kBadDataHash;
  }
  if (hop_index != hop_count ||
      hop_count != std::min(session.router_keys.size(), kMaxHops)) {
    return VerifyResult::kIncompletePath;
  }

  for (std::size_t i = 0; i < hop_count; ++i) {
    const auto expected = hop_tag(session.router_keys[i], block,
                                  static_cast<std::uint8_t>(i), kTagProof,
                                  session.mac_kind);
    if (!tag_equal(block.subspan(kHvfArrayOffset + i * kHvfBytes, kHvfBytes),
                   expected)) {
      return VerifyResult::kBadProof;
    }
  }
  return VerifyResult::kOk;
}

}  // namespace dip::epic
